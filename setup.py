"""Setuptools shim.

Kept alongside pyproject.toml so `pip install -e .` works even on
environments without the `wheel` package (PEP 660 editable installs need
it; the legacy `setup.py develop` path does not).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "RegionWiz: conditional correlation analysis for safe region-based"
        " memory management (PLDI 2008 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["regionwiz=repro.tool.cli:main"]},
)
