"""Region event tracing: a versioned JSONL record of one execution.

The :class:`RegionTracer` is the bridge between the region runtime and
the observability stack.  :class:`~repro.runtime.pool.RegionRuntime`
calls :meth:`RegionTracer.emit` at every mutating entry point; the
tracer keeps the events in memory (for the trace-replay simulator),
optionally appends them to a PR 5 :class:`~repro.obs.events.EventLog`
JSONL file (``--trace-out``), and mirrors lifecycle events onto the
Chrome-trace instant lane so runtime events render alongside analysis
spans in ``chrome://tracing``.

Event kinds (all prefixed ``region.``):

* ``create`` / ``subregion`` -- region created (under root / a parent);
* ``alloc`` -- object allocated (region, size, site, ``file:line``);
* ``access`` -- a slot load/store (obj, offset, pointee target);
* ``delete`` / ``clear`` -- a destroy/clear request entered;
* ``reclaim`` -- one region's reclamation began (carries the RC
  external-reference count at that instant);
* ``cleanup`` -- one cleanup callback is about to run (APR semantics:
  *during* reclamation, so cleanups can re-enter the runtime);
* ``free`` -- one object's storage died;
* ``dead`` -- a region was marked dead;
* ``reclaimed`` -- the whole delete/clear request finished;
* ``fault`` -- the runtime logged a :class:`~repro.runtime.pool.Fault`.

``region.access`` is deliberately kept off the Chrome lane: accesses
dominate event volume and the instant lane is for lifecycle shape, not
per-access firehose.  The JSONL stream gets everything.

Trace files start with a ``trace.open`` header carrying
:data:`TRACE_SCHEMA_VERSION`; bump it when the record shape changes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.trace import trace_instant

__all__ = ["RegionTracer", "TRACE_SCHEMA_VERSION", "load_trace"]

#: Bump when the event record shape changes (replay keys on this).
TRACE_SCHEMA_VERSION = 1

#: Kinds mirrored to the Chrome-trace instant lane (lifecycle only).
_CHROME_KINDS = frozenset(
    {
        "region.create",
        "region.subregion",
        "region.delete",
        "region.clear",
        "region.reclaimed",
        "region.fault",
    }
)


class RegionTracer:
    """Collects region events in memory and/or streams them to a log.

    ``log`` is an optional :class:`~repro.obs.events.EventLog` sink;
    ``keep=False`` disables the in-memory list for pure streaming runs
    (the replay simulator needs ``keep=True``, the default).
    """

    def __init__(self, log: Optional[object] = None, keep: bool = True) -> None:
        self.log = log
        self.keep = keep
        self.records: List[Dict[str, Any]] = []
        self.emit("trace.open", schema=TRACE_SCHEMA_VERSION)

    def emit(self, kind: str, **fields: Any) -> None:
        record: Dict[str, Any] = {"kind": kind}
        record.update(fields)
        if self.keep:
            self.records.append(record)
        if self.log is not None:
            self.log.emit(kind, **fields)
        if kind in _CHROME_KINDS:
            # "name" is trace_instant's positional; remap the region name.
            attrs = {
                ("region_name" if key == "name" else key): value
                for key, value in fields.items()
            }
            trace_instant(kind, **attrs)

    def __len__(self) -> int:
        return len(self.records)


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file back into replayable event records.

    Keeps ``region.*`` and ``trace.*`` records (EventLog bookkeeping
    such as ``log.open`` is dropped) in file order, which — because the
    tracer is single-threaded per execution — is event order.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind", "")
            if kind.startswith("region.") or kind.startswith("trace."):
                records.append(record)
    return records
