"""A C-subset interpreter over the region runtime.

Executes the sema-annotated AST directly (the IR is the static analysis'
food; execution wants scoping and short-circuit semantics).  Region
interface calls -- creation, allocation, deletion, cleanup registration --
are intercepted and routed to a :class:`~repro.runtime.pool.RegionRuntime`,
so running a program yields the ground-truth dynamic behaviour: dangling
pointers actually created/dereferenced, RC refusals, cleanup execution
order, leak candidates.

This is the reproduction's stand-in for the dynamic approaches the paper
compares against (C@ and RC maintain region reference counts at runtime):
the ``bench_dynamic_vs_static`` benchmark runs seeded-buggy programs under
this interpreter to show dynamic detection misses rarely-executed paths
that RegionWiz flags statically.

Value model: ints are Python ints; pointers are ``(MemObject, offset)``
pairs; regions are :class:`Region` handles; functions are
``("func", name)``; null is ``None``.  Every local lives in a memory cell
(a 1-slot object in the frame's stack region), so ``&x`` works uniformly
and stack lifetimes are enforced by region deletion at return.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.interfaces import RegionInterface
from repro.lang import nodes
from repro.lang.sema import SemaResult, Symbol
from repro.lang.types import ArrayType, CType, StructType
from repro.runtime.pool import MemObject, Region, RegionRuntime, RuntimeError_
from repro.util.errors import BudgetExceeded

__all__ = ["ExecutionResult", "Interpreter", "run_program", "InterpError"]


class InterpError(Exception):
    """Execution errors: calling unknown values, bad dereferences, etc.

    Budget exhaustion (steps, heap bytes) raises the structured
    :class:`~repro.util.errors.BudgetExceeded` instead, so ``--validate``
    composes with the error taxonomy and the batch severity fold.
    """


class _ReturnSignal(Exception):
    def __init__(self, value) -> None:
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


@dataclass
class ExecutionResult:
    runtime: RegionRuntime
    return_value: object
    steps: int
    external_calls: List[str] = field(default_factory=list)

    @property
    def faults(self):
        return self.runtime.faults

    def fault_kinds(self):
        return self.runtime.fault_kinds()


class _Frame:
    def __init__(self, function: str, stack_region: Region) -> None:
        self.function = function
        self.stack_region = stack_region
        self.cells: Dict[str, MemObject] = {}


class Interpreter:
    def __init__(
        self,
        sema: SemaResult,
        interface: RegionInterface,
        max_steps: int = 200_000,
        max_heap_bytes: Optional[int] = None,
        tracer: Optional[object] = None,
    ) -> None:
        self.sema = sema
        self.interface = interface
        self.max_steps = max_steps
        self.runtime = RegionRuntime(tracer=tracer, max_heap_bytes=max_heap_bytes)
        self.globals: Dict[str, MemObject] = {}
        self.external_calls: List[str] = []
        self._steps = 0
        self._strings: Dict[int, MemObject] = {}

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(
        self,
        entry: str = "main",
        args: Tuple = (),
        globals_init: Optional[Dict[str, object]] = None,
    ) -> ExecutionResult:
        self._init_globals(globals_init or {})
        value = self.call_function(entry, list(args))
        return ExecutionResult(
            runtime=self.runtime,
            return_value=value,
            steps=self._steps,
            external_calls=self.external_calls,
        )

    def _init_globals(self, overrides: Dict[str, object]) -> None:
        frame = _Frame("<globals>", self.runtime.root)
        for decl in self.sema.unit.decls:
            if not isinstance(decl, nodes.VarDecl):
                continue
            cell = self.runtime.alloc(
                self.runtime.root, max(self._sizeof(decl.type), 8),
                site=f"global {decl.name}",
            )
            self.globals[decl.name] = cell
            if decl.name in overrides:
                self.runtime.store(cell, 0, overrides[decl.name])
            elif decl.init is not None:
                self.runtime.store(cell, 0, self._eval(decl.init, frame))
            else:
                self.runtime.store(cell, 0, 0)

    def call_function(self, name: str, args: List[object]) -> object:
        info = self.sema.functions.get(name)
        if info is None:
            return self._call_external(name, args, loc=None)
        stack = self.runtime.create_region(name=f"<stack:{name}>", internal=True)
        frame = _Frame(name, stack)
        for symbol, value in zip(info.params, args):
            cell = self._cell(frame, symbol)
            self.runtime.store(cell, 0, value)
        try:
            assert info.decl.body is not None
            self._exec_block(info.decl.body, frame)
            result: object = None
        except _ReturnSignal as signal:
            result = signal.value
        finally:
            self.runtime.destroy_region(stack)
        return result

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise BudgetExceeded(
                "interp_steps",
                limit=float(self.max_steps),
                used=float(self._steps),
                phase="interp",
            )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _exec_block(self, block: nodes.Block, frame: _Frame) -> None:
        for stmt in block.stmts:
            self._exec(stmt, frame)

    def _exec(self, stmt: nodes.Stmt, frame: _Frame) -> None:
        self._tick()
        if isinstance(stmt, nodes.Block):
            self._exec_block(stmt, frame)
        elif isinstance(stmt, nodes.DeclStmt):
            self._exec_decl(stmt.decl, frame)
        elif isinstance(stmt, nodes.ExprStmt):
            self._eval(stmt.expr, frame)
        elif isinstance(stmt, nodes.If):
            if self._truthy(self._eval(stmt.cond, frame)):
                self._exec(stmt.then, frame)
            elif stmt.other is not None:
                self._exec(stmt.other, frame)
        elif isinstance(stmt, nodes.While):
            while self._truthy(self._eval(stmt.cond, frame)):
                self._tick()
                try:
                    self._exec(stmt.body, frame)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(stmt, nodes.DoWhile):
            while True:
                self._tick()
                try:
                    self._exec(stmt.body, frame)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if not self._truthy(self._eval(stmt.cond, frame)):
                    break
        elif isinstance(stmt, nodes.For):
            if isinstance(stmt.init, nodes.VarDecl):
                self._exec_decl(stmt.init, frame)
            elif stmt.init is not None:
                self._eval(stmt.init, frame)
            while stmt.cond is None or self._truthy(self._eval(stmt.cond, frame)):
                self._tick()
                try:
                    self._exec(stmt.body, frame)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if stmt.step is not None:
                    self._eval(stmt.step, frame)
        elif isinstance(stmt, nodes.Return):
            value = None if stmt.value is None else self._eval(stmt.value, frame)
            raise _ReturnSignal(value)
        elif isinstance(stmt, nodes.Break):
            raise _BreakSignal()
        elif isinstance(stmt, nodes.Continue):
            raise _ContinueSignal()
        else:
            raise InterpError(f"cannot execute {type(stmt).__name__}")

    def _exec_decl(self, decl: nodes.VarDecl, frame: _Frame) -> None:
        symbol: Symbol = decl.symbol  # type: ignore[attr-defined]
        cell = self._cell(frame, symbol)
        if decl.init is not None:
            self.runtime.store(cell, 0, self._eval(decl.init, frame))

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _eval(self, expr: nodes.Expr, frame: _Frame) -> object:
        self._tick()
        # Keep the runtime's provenance cursor on the node being
        # evaluated, so faults and trace events carry its file:line.
        self.runtime.current_loc = expr.loc
        if isinstance(expr, nodes.IntLit):
            return expr.value
        if isinstance(expr, nodes.NullLit):
            return None
        if isinstance(expr, nodes.StrLit):
            return self._string_object(expr)
        if isinstance(expr, nodes.Ident):
            symbol: Symbol = expr.symbol  # type: ignore[attr-defined]
            if symbol.kind == "func":
                return ("func", symbol.name)
            cell = self._lookup_cell(frame, symbol)
            if isinstance(symbol.ctype, ArrayType):
                return (cell, 0)  # arrays decay to their storage address
            return self.runtime.load(cell, 0)
        if isinstance(expr, nodes.Unary):
            return self._eval_unary(expr, frame)
        if isinstance(expr, nodes.Binary):
            return self._eval_binary(expr, frame)
        if isinstance(expr, nodes.Assign):
            value = self._eval(expr.value, frame)
            self._assign(expr.target, value, frame)
            return value
        if isinstance(expr, nodes.Cond):
            if self._truthy(self._eval(expr.cond, frame)):
                return self._eval(expr.then, frame)
            return self._eval(expr.other, frame)
        if isinstance(expr, nodes.Call):
            return self._eval_call(expr, frame)
        if isinstance(expr, nodes.Member):
            obj, offset = self._address_of(expr, frame)
            self.runtime.current_loc = expr.loc
            return self.runtime.load(obj, offset)
        if isinstance(expr, nodes.Index):
            obj, offset = self._address_of(expr, frame)
            self.runtime.current_loc = expr.loc
            return self.runtime.load(obj, offset)
        if isinstance(expr, nodes.Cast):
            return self._eval(expr.operand, frame)
        if isinstance(expr, nodes.SizeOf):
            target = expr.target
            ctype = target if isinstance(target, CType) else target.ctype
            return self._sizeof(ctype)
        raise InterpError(f"cannot evaluate {type(expr).__name__}")

    def _eval_unary(self, expr: nodes.Unary, frame: _Frame) -> object:
        if expr.op == "&":
            return self._address_of(expr.operand, frame)
        if expr.op == "*":
            pointer = self._eval(expr.operand, frame)
            obj, offset = self._as_pointer(pointer, expr)
            self.runtime.current_loc = expr.loc
            return self.runtime.load(obj, offset)
        value = self._eval(expr.operand, frame)
        if expr.op == "!":
            return 0 if self._truthy(value) else 1
        if expr.op == "-":
            return -self._as_int(value)
        if expr.op == "~":
            return ~self._as_int(value)
        return value  # unary +

    def _eval_binary(self, expr: nodes.Binary, frame: _Frame) -> object:
        op = expr.op
        if op == "&&":
            left = self._eval(expr.left, frame)
            if not self._truthy(left):
                return 0
            return 1 if self._truthy(self._eval(expr.right, frame)) else 0
        if op == "||":
            left = self._eval(expr.left, frame)
            if self._truthy(left):
                return 1
            return 1 if self._truthy(self._eval(expr.right, frame)) else 0
        if op == ",":
            self._eval(expr.left, frame)
            return self._eval(expr.right, frame)
        left = self._eval(expr.left, frame)
        right = self._eval(expr.right, frame)
        if op in ("==", "!="):
            equal = self._values_equal(left, right)
            return int(equal if op == "==" else not equal)
        # Pointer arithmetic.
        if isinstance(left, tuple) and left and isinstance(left[0], MemObject):
            element = 1
            if expr.left.ctype is not None and expr.left.ctype.is_pointerlike:
                try:
                    element = expr.left.ctype.pointee().size()
                except Exception:
                    element = 1
            delta = self._as_int(right) * element
            return (left[0], left[1] + (delta if op == "+" else -delta))
        lhs, rhs = self._as_int(left), self._as_int(right)
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            if rhs == 0:
                raise InterpError("division by zero")
            return int(lhs / rhs)
        if op == "%":
            if rhs == 0:
                raise InterpError("modulo by zero")
            return lhs - int(lhs / rhs) * rhs
        if op == "<":
            return int(lhs < rhs)
        if op == ">":
            return int(lhs > rhs)
        if op == "<=":
            return int(lhs <= rhs)
        if op == ">=":
            return int(lhs >= rhs)
        if op == "<<":
            return lhs << rhs
        if op == ">>":
            return lhs >> rhs
        if op == "&":
            return lhs & rhs
        if op == "|":
            return lhs | rhs
        if op == "^":
            return lhs ^ rhs
        raise InterpError(f"unknown operator {op}")

    # ------------------------------------------------------------------
    # Lvalues
    # ------------------------------------------------------------------

    def _assign(self, target: nodes.Expr, value: object, frame: _Frame) -> None:
        if isinstance(target, nodes.Ident):
            symbol: Symbol = target.symbol  # type: ignore[attr-defined]
            cell = self._lookup_cell(frame, symbol)
            self.runtime.current_loc = target.loc
            self.runtime.store(cell, 0, value)
            return
        if isinstance(target, nodes.Cast):
            self._assign(target.operand, value, frame)
            return
        obj, offset = self._address_of(target, frame)
        self.runtime.current_loc = target.loc
        self.runtime.store(obj, offset, value)

    def _address_of(self, expr: nodes.Expr, frame: _Frame) -> Tuple[MemObject, int]:
        if isinstance(expr, nodes.Ident):
            symbol: Symbol = expr.symbol  # type: ignore[attr-defined]
            return (self._lookup_cell(frame, symbol), 0)
        if isinstance(expr, nodes.Unary) and expr.op == "*":
            return self._as_pointer(self._eval(expr.operand, frame), expr)
        if isinstance(expr, nodes.Member):
            if expr.arrow:
                base = self._as_pointer(self._eval(expr.base, frame), expr)
            else:
                base = self._address_of(expr.base, frame)
            struct = self._member_struct(expr)
            return (base[0], base[1] + struct.field(expr.name).offset)
        if isinstance(expr, nodes.Index):
            base = self._as_pointer(self._eval(expr.base, frame), expr)
            index = self._as_int(self._eval(expr.index, frame))
            assert expr.base.ctype is not None
            try:
                element = expr.base.ctype.pointee().size()
            except Exception:
                element = 1
            return (base[0], base[1] + index * element)
        if isinstance(expr, nodes.Cast):
            return self._address_of(expr.operand, frame)
        raise InterpError(f"cannot take address of {type(expr).__name__}")

    def _member_struct(self, expr: nodes.Member) -> StructType:
        assert expr.base.ctype is not None
        base_type = expr.base.ctype
        if expr.arrow:
            base_type = base_type.pointee()
        assert isinstance(base_type, StructType)
        return base_type

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _eval_call(self, expr: nodes.Call, frame: _Frame) -> object:
        callee = expr.func
        name: Optional[str] = None
        if isinstance(callee, nodes.Ident):
            symbol: Symbol = callee.symbol  # type: ignore[attr-defined]
            if symbol.kind == "func":
                name = symbol.name
        if name is None:
            value = self._eval(callee, frame)
            if isinstance(value, tuple) and len(value) == 2 and value[0] == "func":
                name = value[1]
            else:
                raise InterpError(f"call through non-function value {value!r}")
        args = [self._eval(arg, frame) for arg in expr.args]
        self.runtime.current_loc = expr.loc
        intercepted = self._interface_call(name, args, expr)
        if intercepted is not NotImplemented:
            return intercepted
        if name in self.sema.functions:
            return self.call_function(name, args)
        return self._call_external(name, args, expr.loc)

    def _call_external(self, name: str, args, loc) -> object:
        self.external_calls.append(name)
        return 0

    def _interface_call(self, name: str, args: List[object], expr) -> object:
        interface = self.interface
        if name in interface.creates:
            spec = interface.creates[name]
            parent: Optional[Region] = None
            if spec.parent_arg is not None and spec.parent_arg < len(args):
                value = args[spec.parent_arg]
                if isinstance(value, Region):
                    parent = value
            region = self.runtime.create_region(
                parent, name=f"{name}@{expr.loc.line}"
            )
            if spec.out_arg is None:
                return region
            out = args[spec.out_arg]
            obj, offset = self._as_pointer(out, expr)
            self.runtime.store(obj, offset, region)
            return 0
        if name in interface.allocs:
            spec = interface.allocs[name]
            region = None
            if spec.region_arg < len(args) and isinstance(
                args[spec.region_arg], Region
            ):
                region = args[spec.region_arg]
            size = 8
            if len(args) > spec.region_arg + 1:
                try:
                    size = self._as_int(args[spec.region_arg + 1])
                except InterpError:
                    size = 8
            obj = self.runtime.alloc(
                region, max(size, 1), site=f"{name}@{expr.loc.line}"
            )
            return (obj, 0)
        if name in interface.deletes:
            spec = interface.deletes[name]
            value = args[spec.region_arg] if spec.region_arg < len(args) else None
            if isinstance(value, Region):
                if spec.clears_only:
                    self.runtime.clear_region(value)
                else:
                    self.runtime.destroy_region(value)
            return 0
        if name in interface.cleanups:
            spec = interface.cleanups[name]
            region = args[spec.region_arg] if spec.region_arg < len(args) else None
            data = args[spec.data_arg] if spec.data_arg < len(args) else None
            if isinstance(region, Region):
                for position in spec.fn_args:
                    if position >= len(args):
                        continue
                    fn = args[position]
                    if (
                        isinstance(fn, tuple)
                        and len(fn) == 2
                        and fn[0] == "func"
                        and fn[1] in self.sema.functions
                    ):
                        fn_name = fn[1]
                        self.runtime.register_cleanup(
                            region,
                            data,
                            lambda d, _n=fn_name: self.call_function(_n, [d]),
                        )
            return 0
        return NotImplemented

    # ------------------------------------------------------------------
    # Values
    # ------------------------------------------------------------------

    def _cell(self, frame: _Frame, symbol: Symbol) -> MemObject:
        cell = frame.cells.get(symbol.ir_name)
        if cell is None:
            size = max(self._sizeof(symbol.ctype), 8)
            cell = self.runtime.alloc(
                frame.stack_region, size, site=f"stack {symbol.ir_name}"
            )
            frame.cells[symbol.ir_name] = cell
        return cell

    def _lookup_cell(self, frame: _Frame, symbol: Symbol) -> MemObject:
        if symbol.kind in ("local", "param"):
            return self._cell(frame, symbol)
        cell = self.globals.get(symbol.name)
        if cell is None:
            cell = self.runtime.alloc(
                self.runtime.root, 8, site=f"global {symbol.name}"
            )
            self.globals[symbol.name] = cell
            self.runtime.store(cell, 0, 0)
        return cell

    def _string_object(self, expr: nodes.StrLit) -> Tuple[MemObject, int]:
        key = id(expr)
        obj = self._strings.get(key)
        if obj is None:
            obj = self.runtime.alloc(
                self.runtime.root, len(expr.value) + 1, site=f"string {expr.value!r}"
            )
            for index, char in enumerate(expr.value):
                obj.slots[index] = ord(char)
            obj.slots[len(expr.value)] = 0
            self._strings[key] = obj
        return (obj, 0)

    def _sizeof(self, ctype: Optional[CType]) -> int:
        if ctype is None:
            return 8
        try:
            return ctype.size()
        except Exception:
            return 8

    @staticmethod
    def _truthy(value: object) -> bool:
        if value is None:
            return False
        if isinstance(value, int):
            return value != 0
        return True  # pointers, regions, functions

    @staticmethod
    def _as_int(value: object) -> int:
        if isinstance(value, int):
            return value
        if value is None:
            return 0
        raise InterpError(f"expected an integer, got {value!r}")

    def _as_pointer(self, value: object, expr) -> Tuple[MemObject, int]:
        if (
            isinstance(value, tuple)
            and len(value) == 2
            and isinstance(value[0], MemObject)
        ):
            return value
        if value is None:
            raise InterpError(f"null dereference at {expr.loc}")
        raise InterpError(f"expected a pointer, got {value!r} at {expr.loc}")

    def _values_equal(self, left: object, right: object) -> bool:
        if left is None or right is None:
            return left is None and right is None or (
                (left is None and right == 0) or (right is None and left == 0)
            )
        return left == right


def run_program(
    sema: SemaResult,
    interface: RegionInterface,
    entry: str = "main",
    args: Tuple = (),
    globals_init: Optional[Dict[str, object]] = None,
    max_steps: int = 200_000,
    max_heap_bytes: Optional[int] = None,
    tracer: Optional[object] = None,
) -> ExecutionResult:
    """Execute an analyzed program and return the runtime observations."""
    interpreter = Interpreter(
        sema,
        interface,
        max_steps=max_steps,
        max_heap_bytes=max_heap_bytes,
        tracer=tracer,
    )
    return interpreter.run(entry=entry, args=args, globals_init=globals_init)
