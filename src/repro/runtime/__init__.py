"""Executable region runtime and C-subset interpreter (dynamic baseline)."""

from repro.runtime.interp import (
    ExecutionResult,
    InterpError,
    Interpreter,
    run_program,
)
from repro.runtime.pool import Fault, MemObject, Region, RegionRuntime, RuntimeError_
from repro.runtime.trace import TRACE_SCHEMA_VERSION, RegionTracer, load_trace

__all__ = [
    "ExecutionResult",
    "Fault",
    "InterpError",
    "Interpreter",
    "MemObject",
    "Region",
    "RegionRuntime",
    "RegionTracer",
    "RuntimeError_",
    "TRACE_SCHEMA_VERSION",
    "load_trace",
    "run_program",
]
