"""Executable region runtime and C-subset interpreter (dynamic baseline)."""

from repro.runtime.interp import (
    ExecutionResult,
    InterpError,
    Interpreter,
    run_program,
)
from repro.runtime.pool import Fault, MemObject, Region, RegionRuntime, RuntimeError_

__all__ = [
    "ExecutionResult",
    "Fault",
    "InterpError",
    "Interpreter",
    "MemObject",
    "Region",
    "RegionRuntime",
    "RuntimeError_",
    "run_program",
]
