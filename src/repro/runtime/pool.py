"""An executable region runtime: the dynamic side of the paper.

Implements the semantics both region interfaces share: a hierarchy of
regions, object allocation, recursive deletion (children first), cleanup
callbacks (registered LIFO, run on clear/destroy, APR-style), and --
because the paper contrasts RegionWiz with the *dynamic* safe-region
techniques of C@/RC [16, 17] -- per-region reference counts of incoming
external pointers, so that deleting a region that is still referenced can
be detected at runtime exactly as RC would.

The runtime also keeps a fault log (:class:`Fault`) of dangling-pointer
creations and dereferences, and byte-accounting for the paper's notion of
*leaks*: objects with longer-than-necessary lifetime.

Every mutating entry point optionally notifies a *tracer* (see
:mod:`repro.runtime.trace`): region creation, allocation, slot access,
reclamation, cleanup execution and faults each emit one structured event,
giving downstream consumers (the trace-replay simulator, the warning
validator) a complete record of the run.  The interpreter keeps
``current_loc`` pointed at the AST node being evaluated, so faults and
trace events carry ``file:line`` provenance that can be matched against
static warning fingerprints.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.util.errors import BudgetExceeded

__all__ = ["Region", "MemObject", "Fault", "RegionRuntime", "RuntimeError_"]


class RuntimeError_(Exception):
    """Hard runtime misuse (allocating in a dead region, etc.)."""


@dataclass
class MemObject:
    """An object allocated in a region.  Storage is a byte-offset-indexed
    slot map; slots hold arbitrary runtime values (ints, pointers...)."""

    uid: int
    region: "Region"
    size: int
    site: str  # description of the allocation site
    slots: Dict[int, object] = field(default_factory=dict)
    live: bool = True
    loc: Optional[str] = None  # "file:line" of the allocation, if known

    def __str__(self) -> str:
        return f"obj#{self.uid}({self.site})"


@dataclass
class Fault:
    """A detected memory-safety event, with source provenance.

    ``loc`` is the ``file:line`` of the access (or delete) that triggered
    the fault; ``source_span``/``target_span`` are the allocation sites of
    the holder and target objects (or the creation site of the deleted
    region for rc-violations).  The spans use the same ``file:line``
    format as warning fingerprints, so dynamic faults can be matched
    against static warnings directly.
    """

    kind: str  # 'dangling-created' | 'dangling-deref' | 'rc-violation'
    detail: str
    loc: Optional[str] = None
    source_span: Optional[str] = None
    target_span: Optional[str] = None
    obj_uid: Optional[int] = None
    target_uid: Optional[int] = None

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"

    def __repr__(self) -> str:
        parts = [f"kind={self.kind!r}", f"detail={self.detail!r}"]
        if self.loc:
            parts.append(f"loc={self.loc!r}")
        if self.source_span:
            parts.append(f"source={self.source_span!r}")
        if self.target_span:
            parts.append(f"target={self.target_span!r}")
        return f"Fault({', '.join(parts)})"


@dataclass
class Region:
    uid: int
    parent: Optional["Region"]
    runtime: "RegionRuntime"
    name: str = ""
    children: List["Region"] = field(default_factory=list)
    objects: List[MemObject] = field(default_factory=list)
    cleanups: List[Tuple[object, Callable[[object], None]]] = field(
        default_factory=list
    )
    live: bool = True
    # RC-style count of pointers into this region from outside it.
    external_refs: int = 0
    # Internal regions (interpreter stack frames) are bookkeeping only:
    # their cells neither contribute RC references nor count as leakable.
    internal: bool = False
    loc: Optional[str] = None  # "file:line" of the creation site, if known

    def __str__(self) -> str:
        return self.name or f"region#{self.uid}"

    def is_ancestor_of(self, other: "Region") -> bool:
        current: Optional[Region] = other
        while current is not None:
            if current is self:
                return True
            current = current.parent
        return False

    @property
    def bytes_allocated(self) -> int:
        return sum(obj.size for obj in self.objects)


class RegionRuntime:
    """Owns the region tree rooted at the immortal root region."""

    def __init__(
        self,
        tracer: Optional[object] = None,
        max_heap_bytes: Optional[int] = None,
    ) -> None:
        self._uids = itertools.count(1)
        self.root = Region(0, None, self, name="<root>")
        self.faults: List[Fault] = []
        self.bytes_live = 0
        self.peak_bytes = 0
        self.total_allocated = 0
        self._all_objects: List[MemObject] = []
        # Set by the interpreter to the SourceLocation of the expression
        # being evaluated; faults and trace events read it for provenance.
        self.current_loc: Optional[object] = None
        self.tracer = tracer
        self.max_heap_bytes = max_heap_bytes

    # ------------------------------------------------------------------
    # Provenance and fault recording
    # ------------------------------------------------------------------

    def _span(self) -> Optional[str]:
        loc = self.current_loc
        if loc is None:
            return None
        return f"{loc.filename}:{loc.line}"

    def _fault(
        self,
        kind: str,
        detail: str,
        holder: Optional[MemObject] = None,
        target: Optional[MemObject] = None,
        region: Optional[Region] = None,
    ) -> None:
        """Record a fault, attaching allocation-site provenance.

        ``holder`` is the object whose slot holds (or received) the bad
        pointer; ``target`` is the dead object it points at.  For
        rc-violations, ``region`` is the region being deleted while still
        referenced.
        """
        fault = Fault(kind, detail, loc=self._span())
        if holder is not None:
            fault.source_span = holder.loc
            fault.obj_uid = holder.uid
        if target is not None:
            fault.target_span = target.loc
            fault.target_uid = target.uid
        if region is not None:
            fault.target_span = region.loc
            fault.target_uid = region.uid
        self.faults.append(fault)
        if self.tracer is not None:
            self.tracer.emit(
                "region.fault",
                fault=kind,
                detail=detail,
                loc=fault.loc,
                source_span=fault.source_span,
                target_span=fault.target_span,
                obj=fault.obj_uid,
                target=fault.target_uid,
            )

    # ------------------------------------------------------------------
    # Region lifecycle
    # ------------------------------------------------------------------

    def create_region(
        self, parent: Optional[Region] = None, name: str = "", internal: bool = False
    ) -> Region:
        parent = parent or self.root
        if not parent.live:
            raise RuntimeError_(f"creating subregion of dead region {parent}")
        region = Region(next(self._uids), parent, self, name=name, internal=internal)
        region.loc = self._span()
        parent.children.append(region)
        if self.tracer is not None:
            self.tracer.emit(
                "region.create" if parent is self.root else "region.subregion",
                region=region.uid,
                parent=parent.uid,
                name=name,
                internal=internal,
                loc=region.loc,
            )
        return region

    def destroy_region(self, region: Region) -> None:
        """Recursively delete children, run cleanups, reclaim objects."""
        if region is self.root:
            raise RuntimeError_("cannot destroy the root region")
        if self.tracer is not None:
            self.tracer.emit(
                "region.delete", region=region.uid, loc=self._span()
            )
        dying: List[MemObject] = []
        self._reclaim(region, keep_region=False, dying=dying)
        if region.parent is not None and region in region.parent.children:
            region.parent.children.remove(region)
        if self.tracer is not None:
            self.tracer.emit("region.reclaimed", region=region.uid, op="delete")
        self._flag_dangling_into(dying)

    def clear_region(self, region: Region) -> None:
        """APR's apr_pool_clear: reclaim descendants, keep the region."""
        if self.tracer is not None:
            self.tracer.emit(
                "region.clear", region=region.uid, loc=self._span()
            )
        dying: List[MemObject] = []
        self._reclaim(region, keep_region=True, dying=dying)
        if self.tracer is not None:
            self.tracer.emit("region.reclaimed", region=region.uid, op="clear")
        self._flag_dangling_into(dying)

    def _reclaim(
        self, region: Region, keep_region: bool, dying: List[MemObject]
    ) -> None:
        if not region.live:
            return
        if self.tracer is not None:
            self.tracer.emit(
                "region.reclaim", region=region.uid, refs=region.external_refs
            )
        # RC-style check: a still-referenced region may not be deleted.
        if region.external_refs > 0:
            self._fault(
                "rc-violation",
                f"{region} deleted with {region.external_refs} external"
                " reference(s); RC would refuse/trap here",
                region=region,
            )
        for child in list(region.children):
            self._reclaim(child, keep_region=False, dying=dying)
        region.children.clear()
        # Cleanups run LIFO, before the memory disappears (APR semantics).
        for data, callback in reversed(region.cleanups):
            if self.tracer is not None:
                self.tracer.emit("region.cleanup", region=region.uid)
            callback(data)
        region.cleanups.clear()
        for obj in region.objects:
            if obj.live:
                obj.live = False
                self.bytes_live -= obj.size
                # Release the dying object's own references.
                for value in obj.slots.values():
                    self._rc_adjust(obj, value, -1)
                if self.tracer is not None:
                    self.tracer.emit("region.free", obj=obj.uid)
                if not region.internal:
                    dying.append(obj)
        region.objects.clear()
        if not keep_region:
            region.live = False
            if self.tracer is not None:
                self.tracer.emit("region.dead", region=region.uid)

    def _flag_dangling_into(self, dying: List[MemObject]) -> None:
        """Any live object still holding a pointer to a just-reclaimed
        object now holds a dangling pointer: the inconsistency surfacing
        at runtime.  Scanned after the whole subtree is reclaimed so that
        pointers *among* the dying objects (intra-region cycles, safe
        child-to-parent-region pointers) do not fault."""
        if not dying:
            return
        dead_set = {id(obj) for obj in dying}
        for holder in self._all_objects:
            if not holder.live or holder.region.internal:
                continue
            for offset, value in holder.slots.items():
                target = self._pointee(value)
                if target is not None and id(target) in dead_set:
                    self._fault(
                        "dangling-created",
                        f"{holder}+{offset} -> {target}"
                        f" (holder in {holder.region},"
                        f" target was in {target.region})",
                        holder=holder,
                        target=target,
                    )

    # ------------------------------------------------------------------
    # Objects and slots
    # ------------------------------------------------------------------

    def alloc(self, region: Optional[Region], size: int, site: str = "") -> MemObject:
        region = region or self.root
        if not region.live:
            raise RuntimeError_(f"allocation in dead region {region}")
        obj = MemObject(next(self._uids), region, size, site)
        obj.loc = self._span()
        region.objects.append(obj)
        self._all_objects.append(obj)
        self.bytes_live += size
        self.total_allocated += size
        self.peak_bytes = max(self.peak_bytes, self.bytes_live)
        if self.tracer is not None:
            self.tracer.emit(
                "region.alloc",
                obj=obj.uid,
                region=region.uid,
                size=size,
                site=site,
                loc=obj.loc,
                internal=region.internal,
            )
        if self.max_heap_bytes is not None and self.bytes_live > self.max_heap_bytes:
            raise BudgetExceeded(
                "interp_heap_bytes",
                limit=float(self.max_heap_bytes),
                used=float(self.bytes_live),
                phase="interp",
            )
        return obj

    @staticmethod
    def _pointee(value: object) -> Optional[MemObject]:
        if isinstance(value, MemObject):
            return value
        if (
            isinstance(value, tuple)
            and len(value) == 2
            and isinstance(value[0], MemObject)
        ):
            return value[0]
        return None

    def store(self, obj: MemObject, offset: int, value: object) -> None:
        target = self._pointee(value)
        if self.tracer is not None:
            target_region = value.uid if isinstance(value, Region) else None
            self.tracer.emit(
                "region.access",
                op="store",
                obj=obj.uid,
                offset=offset,
                target=None if target is None else target.uid,
                target_region=target_region,
                loc=self._span(),
            )
        if not obj.live:
            self._fault(
                "dangling-deref",
                f"store through dead {obj}+{offset}",
                target=obj,
            )
            return
        # Storing a pointer to an already-reclaimed object creates a
        # dangling pointer on the spot.
        if (
            target is not None
            and not target.live
            and not obj.region.internal
        ):
            self._fault(
                "dangling-created",
                f"{obj}+{offset} stored stale pointer -> {target}",
                holder=obj,
                target=target,
            )
        # Maintain RC external-reference counts for region-valued and
        # object-valued slots.
        self._rc_adjust(obj, obj.slots.get(offset), -1)
        obj.slots[offset] = value
        self._rc_adjust(obj, value, +1)

    def load(self, obj: MemObject, offset: int) -> object:
        if not obj.live:
            if self.tracer is not None:
                self.tracer.emit(
                    "region.access",
                    op="load",
                    obj=obj.uid,
                    offset=offset,
                    target=None,
                    loc=self._span(),
                )
            self._fault(
                "dangling-deref",
                f"load through dead {obj}+{offset}",
                target=obj,
            )
            return None
        value = obj.slots.get(offset)
        target = self._pointee(value)
        if self.tracer is not None:
            self.tracer.emit(
                "region.access",
                op="load",
                obj=obj.uid,
                offset=offset,
                target=None if target is None else target.uid,
                loc=self._span(),
            )
        if target is not None and not target.live:
            self._fault(
                "dangling-deref",
                f"load of dangling pointer {obj}+{offset} -> {target}",
                holder=obj,
                target=target,
            )
        return value

    def _rc_adjust(self, holder: MemObject, value: object, delta: int) -> None:
        if holder.region.internal:
            return  # stack cells are not inter-region data pointers
        target_region: Optional[Region] = None
        target = self._pointee(value)
        if target is not None:
            target_region = target.region
        elif isinstance(value, Region):
            target_region = value
        if target_region is None or target_region is self.root:
            return
        if holder.region is not target_region and not target_region.is_ancestor_of(
            holder.region
        ):
            # An inter-region pointer not covered by the subregion order:
            # exactly what RC's reference counts track.
            target_region.external_refs += delta

    def register_cleanup(
        self, region: Region, data: object, callback: Callable[[object], None]
    ) -> None:
        if not region.live:
            raise RuntimeError_(f"cleanup registered on dead region {region}")
        region.cleanups.append((data, callback))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def fault_kinds(self) -> Set[str]:
        return {fault.kind for fault in self.faults}

    def live_objects(self) -> List[MemObject]:
        return [obj for obj in self._all_objects if obj.live]

    def leak_candidates(self) -> List[MemObject]:
        """Objects with longer-than-necessary lifetime (the paper's
        "leaks"): live objects that nothing live points to anymore, in
        regions other than the root."""
        pointed_to: Set[int] = set()
        for holder in self._all_objects:
            if not holder.live:
                continue
            for value in holder.slots.values():
                target = self._pointee(value)
                if target is not None:
                    pointed_to.add(target.uid)
        return [
            obj
            for obj in self.live_objects()
            if obj.uid not in pointed_to
            and obj.region is not self.root
            and not obj.region.internal
        ]
