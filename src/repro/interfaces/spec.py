"""Region-based memory management interface specifications.

RegionWiz "currently supports two region-based memory management
interfaces used in real-world C programs: RC regions and Apache Portable
Runtime (APR) pools" (Section 5).  An interface spec tells the analysis
and the runtime which functions play the ``rnew`` / ``ralloc`` /
region-delete / cleanup-register roles and where their region arguments
live, so the same analysis core serves any region library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

__all__ = [
    "RegionCreate",
    "RegionAlloc",
    "RegionDelete",
    "CleanupRegister",
    "RegionInterface",
]


@dataclass(frozen=True)
class RegionCreate:
    """An ``rnew``-style function creating a subregion.

    ``parent_arg`` is the argument index of the parent region (``None``
    when the function always creates a child of the root region);
    ``out_arg`` is the index of a ``region **`` out-parameter, or ``None``
    when the new region is returned.
    """

    name: str
    parent_arg: Optional[int] = None
    out_arg: Optional[int] = None


@dataclass(frozen=True)
class RegionAlloc:
    """A ``ralloc``-style function allocating an object in a region.

    The new object is returned; ``region_arg`` locates the owning region.
    """

    name: str
    region_arg: int = 0


@dataclass(frozen=True)
class RegionDelete:
    """Region deletion/clearing.  ``clears_only`` keeps the region itself
    alive (APR's ``apr_pool_clear``) while reclaiming its descendants."""

    name: str
    region_arg: int = 0
    clears_only: bool = False


@dataclass(frozen=True)
class CleanupRegister:
    """Cleanup registration: the runtime invokes ``fn_args`` functions with
    the ``data_arg`` value when the region is cleared or destroyed."""

    name: str
    region_arg: int = 0
    data_arg: int = 1
    fn_args: Tuple[int, ...] = (2,)


@dataclass
class RegionInterface:
    """A complete region API description."""

    name: str
    creates: Dict[str, RegionCreate] = field(default_factory=dict)
    allocs: Dict[str, RegionAlloc] = field(default_factory=dict)
    deletes: Dict[str, RegionDelete] = field(default_factory=dict)
    cleanups: Dict[str, CleanupRegister] = field(default_factory=dict)

    def add(self, *specs) -> "RegionInterface":
        for spec in specs:
            if isinstance(spec, RegionCreate):
                self.creates[spec.name] = spec
            elif isinstance(spec, RegionAlloc):
                self.allocs[spec.name] = spec
            elif isinstance(spec, RegionDelete):
                self.deletes[spec.name] = spec
            elif isinstance(spec, CleanupRegister):
                self.cleanups[spec.name] = spec
            else:
                raise TypeError(f"unknown interface spec {spec!r}")
        return self

    def is_interface_function(self, name: str) -> bool:
        return (
            name in self.creates
            or name in self.allocs
            or name in self.deletes
            or name in self.cleanups
        )

    def function_names(self) -> Iterable[str]:
        yield from self.creates
        yield from self.allocs
        yield from self.deletes
        yield from self.cleanups
