"""The RC regions interface (Gay & Aiken, PLDI 2001).

Used by the ``rcc`` compiler in the paper's evaluation.  RC's primitives
return the new region directly; ``newregion()`` creates a top-level region
(child of the implicit root), ``newsubregion(parent)`` creates a nested
one.  RC maintains runtime reference counts so deleting a still-referenced
region traps -- our runtime simulator reproduces that behaviour as the
dynamic baseline.
"""

from __future__ import annotations

from repro.interfaces.spec import (
    RegionAlloc,
    RegionCreate,
    RegionDelete,
    RegionInterface,
)

__all__ = ["rc_regions_interface", "RC_HEADER"]


def rc_regions_interface() -> RegionInterface:
    """Interface spec for RC regions."""
    interface = RegionInterface("rc")
    interface.add(
        RegionCreate("newregion", parent_arg=None, out_arg=None),
        RegionCreate("newsubregion", parent_arg=0, out_arg=None),
        RegionAlloc("ralloc", region_arg=0),
        RegionAlloc("rallocarray", region_arg=0),
        RegionAlloc("rstralloc", region_arg=0),
        RegionAlloc("rstrdup", region_arg=0),
        RegionDelete("deleteregion", region_arg=0),
    )
    return interface


# Shared prototypes for corpora written against RC regions.
RC_HEADER = """
typedef struct region_ *region;

region newregion(void);
region newsubregion(region parent);
void *ralloc(region r, unsigned long size);
void *rallocarray(region r, unsigned long n, unsigned long size);
char *rstralloc(region r, unsigned long size);
char *rstrdup(region r, char *s);
void deleteregion(region r);
"""
