"""Region-interface specs: APR pools and RC regions."""

from repro.interfaces.apr import APR_HEADER, apr_pools_interface
from repro.interfaces.rc import RC_HEADER, rc_regions_interface
from repro.interfaces.spec import (
    CleanupRegister,
    RegionAlloc,
    RegionCreate,
    RegionDelete,
    RegionInterface,
)

__all__ = [
    "APR_HEADER",
    "CleanupRegister",
    "RC_HEADER",
    "RegionAlloc",
    "RegionCreate",
    "RegionDelete",
    "RegionInterface",
    "apr_pools_interface",
    "rc_regions_interface",
]
