"""The Apache Portable Runtime (APR) pools interface (Figure 6).

Used by Apache httpd, Subversion, FreeSWITCH, jxta-c, and lklftpd in the
paper's evaluation.  ``apr_pool_create`` returns the new subregion through
a pointer-to-pointer out-parameter; a null parent means the root region.
Subversion wraps pool creation in ``svn_pool_create``, which the paper's
case studies use, so the spec includes it (in real builds it is a macro or
thin wrapper over ``apr_pool_create``).
"""

from __future__ import annotations

from repro.interfaces.spec import (
    CleanupRegister,
    RegionAlloc,
    RegionCreate,
    RegionDelete,
    RegionInterface,
)

__all__ = ["apr_pools_interface", "APR_HEADER"]


def apr_pools_interface() -> RegionInterface:
    """Interface spec for APR pools (plus Subversion's thin wrappers)."""
    interface = RegionInterface("apr")
    interface.add(
        # apr_pool_create(apr_pool_t **newp, apr_pool_t *parent)
        RegionCreate("apr_pool_create", parent_arg=1, out_arg=0),
        RegionCreate("apr_pool_create_ex", parent_arg=1, out_arg=0),
        # svn_pool_create(apr_pool_t *parent) -> apr_pool_t *
        RegionCreate("svn_pool_create", parent_arg=0, out_arg=None),
        RegionAlloc("apr_palloc", region_arg=0),
        RegionAlloc("apr_pcalloc", region_arg=0),
        RegionAlloc("apr_pstrdup", region_arg=0),
        RegionAlloc("apr_pstrndup", region_arg=0),
        RegionAlloc("apr_pmemdup", region_arg=0),
        RegionAlloc("apr_psprintf", region_arg=0),
        RegionDelete("apr_pool_destroy", region_arg=0),
        RegionDelete("apr_pool_clear", region_arg=0, clears_only=True),
        RegionDelete("svn_pool_destroy", region_arg=0),
        RegionDelete("svn_pool_clear", region_arg=0, clears_only=True),
        CleanupRegister(
            "apr_pool_cleanup_register",
            region_arg=0,
            data_arg=1,
            fn_args=(2, 3),
        ),
    )
    return interface


# Shared prototypes for corpora written against APR pools, in the C subset.
APR_HEADER = """
typedef struct apr_pool_t apr_pool_t;
typedef int apr_status_t;
typedef unsigned long apr_size_t;

apr_status_t apr_pool_create(apr_pool_t **newp, apr_pool_t *parent);
void *apr_palloc(apr_pool_t *p, apr_size_t size);
void *apr_pcalloc(apr_pool_t *p, apr_size_t size);
char *apr_pstrdup(apr_pool_t *p, char *s);
void apr_pool_clear(apr_pool_t *p);
void apr_pool_destroy(apr_pool_t *p);
apr_status_t apr_pool_cleanup_register(apr_pool_t *p, void *data,
                                       apr_status_t (*plain_cleanup)(void *),
                                       apr_status_t (*child_cleanup)(void *));

apr_pool_t *svn_pool_create(apr_pool_t *parent);
void svn_pool_destroy(apr_pool_t *p);
void svn_pool_clear(apr_pool_t *p);
"""
