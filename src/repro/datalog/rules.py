"""Datalog rule AST and a small textual rule parser.

bddbddb accepts analyses written as Datalog rules over finite-domain
relations; RegionWiz expresses call-graph construction and the
points-to/effect computation that way (Section 5).  This module provides the
rule representation shared by both solver backends and a parser for the
concrete syntax::

    vF(v2, f) :- assign(v2, v1), vF(v1, f).
    regionPair(x, y) :- region(x), region(y), !le(x, y), x != y.
    root(0).

Terms are variables (lowercase identifiers), named constants, or integer
literals.  ``!atom(...)`` is stratified negation; ``x != y`` is the built-in
disequality constraint.  A rule with an empty body (a *fact*) asserts its
constant head tuple.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple, Union

__all__ = [
    "Var",
    "Const",
    "Term",
    "Atom",
    "NotEqual",
    "Rule",
    "DatalogSyntaxError",
    "parse_rules",
    "parse_rule",
]


class DatalogSyntaxError(Exception):
    """Raised on malformed rule text."""


@dataclass(frozen=True)
class Var:
    """A rule variable (scoped to a single rule)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant term: an integer index into its domain."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


Term = Union[Var, Const]


@dataclass(frozen=True)
class Atom:
    """``relation(term, ...)``, possibly negated in a rule body."""

    relation: str
    terms: Tuple[Term, ...]
    negated: bool = False

    def __str__(self) -> str:
        bang = "!" if self.negated else ""
        args = ", ".join(str(t) for t in self.terms)
        return f"{bang}{self.relation}({args})"

    @property
    def variables(self) -> Tuple[Var, ...]:
        return tuple(t for t in self.terms if isinstance(t, Var))


@dataclass(frozen=True)
class NotEqual:
    """The built-in constraint ``left != right``."""

    left: Var
    right: Var

    def __str__(self) -> str:
        return f"{self.left} != {self.right}"


BodyItem = Union[Atom, NotEqual]


@dataclass(frozen=True)
class Rule:
    """``head :- body.``  An empty body makes the rule a fact."""

    head: Atom
    body: Tuple[BodyItem, ...]

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(str(b) for b in self.body)}."

    @property
    def is_fact(self) -> bool:
        return not self.body

    def positive_atoms(self) -> Iterator[Atom]:
        for item in self.body:
            if isinstance(item, Atom) and not item.negated:
                yield item

    def negative_atoms(self) -> Iterator[Atom]:
        for item in self.body:
            if isinstance(item, Atom) and item.negated:
                yield item

    def constraints(self) -> Iterator[NotEqual]:
        for item in self.body:
            if isinstance(item, NotEqual):
                yield item

    def validate(self) -> None:
        """Check range-restriction (safety) conditions.

        Every head variable, every negated-atom variable, and every
        disequality variable must occur in some positive body atom.
        """
        bound = {
            var for atom in self.positive_atoms() for var in atom.variables
        }
        if self.head.negated:
            raise DatalogSyntaxError(f"negated head in rule: {self}")
        for var in self.head.variables:
            if var not in bound:
                raise DatalogSyntaxError(
                    f"unsafe rule (head variable {var} unbound): {self}"
                )
        for atom in self.negative_atoms():
            for var in atom.variables:
                if var not in bound:
                    raise DatalogSyntaxError(
                        f"unsafe rule (negated variable {var} unbound): {self}"
                    )
        for constraint in self.constraints():
            for var in (constraint.left, constraint.right):
                if var not in bound:
                    raise DatalogSyntaxError(
                        f"unsafe rule (constraint variable {var} unbound):"
                        f" {self}"
                    )


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<turnstile>:-)
  | (?P<neq>!=)
  | (?P<bang>!)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<dot>\.)
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise DatalogSyntaxError(
                f"unexpected character {text[pos]!r} at offset {pos}"
            )
        kind = match.lastgroup
        assert kind is not None
        if kind not in ("ws", "comment"):
            tokens.append((kind, match.group()))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: Sequence[Tuple[str, str]]) -> None:
        self._tokens = tokens
        self._pos = 0

    def at_end(self) -> bool:
        return self._pos >= len(self._tokens)

    def _peek(self) -> Tuple[str, str]:
        if self.at_end():
            raise DatalogSyntaxError("unexpected end of input")
        return self._tokens[self._pos]

    def _next(self) -> Tuple[str, str]:
        token = self._peek()
        self._pos += 1
        return token

    def _expect(self, kind: str) -> str:
        token_kind, value = self._next()
        if token_kind != kind:
            raise DatalogSyntaxError(f"expected {kind}, found {value!r}")
        return value

    def parse_term(self) -> Term:
        kind, value = self._next()
        if kind == "number":
            return Const(int(value))
        if kind == "ident":
            return Var(value)
        raise DatalogSyntaxError(f"expected a term, found {value!r}")

    def parse_atom(self, negated: bool = False) -> Atom:
        name = self._expect("ident")
        self._expect("lparen")
        terms: List[Term] = []
        if self._peek()[0] != "rparen":
            terms.append(self.parse_term())
            while self._peek()[0] == "comma":
                self._next()
                terms.append(self.parse_term())
        self._expect("rparen")
        return Atom(name, tuple(terms), negated=negated)

    def parse_body_item(self) -> BodyItem:
        kind, _ = self._peek()
        if kind == "bang":
            self._next()
            return self.parse_atom(negated=True)
        # Either an atom or `x != y`: look ahead past the identifier.
        if kind == "ident" and self._pos + 1 < len(self._tokens):
            next_kind = self._tokens[self._pos + 1][0]
            if next_kind == "neq":
                left = Var(self._expect("ident"))
                self._expect("neq")
                right_kind, right_value = self._next()
                if right_kind != "ident":
                    raise DatalogSyntaxError(
                        "!= requires variables on both sides"
                    )
                return NotEqual(left, Var(right_value))
        return self.parse_atom()

    def parse_rule(self) -> Rule:
        head = self.parse_atom()
        body: List[BodyItem] = []
        kind, _ = self._peek()
        if kind == "turnstile":
            self._next()
            body.append(self.parse_body_item())
            while self._peek()[0] == "comma":
                self._next()
                body.append(self.parse_body_item())
        self._expect("dot")
        rule = Rule(head, tuple(body))
        if rule.is_fact:
            for term in head.terms:
                if isinstance(term, Var):
                    raise DatalogSyntaxError(
                        f"fact with unbound variable {term}: {rule}"
                    )
        rule.validate()
        return rule


def parse_rules(text: str) -> List[Rule]:
    """Parse a newline/dot-separated sequence of rules."""
    parser = _Parser(_tokenize(text))
    rules: List[Rule] = []
    while not parser.at_end():
        rules.append(parser.parse_rule())
    return rules


def parse_rule(text: str) -> Rule:
    """Parse exactly one rule."""
    rules = parse_rules(text)
    if len(rules) != 1:
        raise DatalogSyntaxError(f"expected one rule, found {len(rules)}")
    return rules[0]
