"""Relation storage backends for the Datalog solver.

Two interchangeable backends implement the same small interface:

* :class:`SetRelation` -- tuples in a Python ``set`` with on-demand hash
  indexes; the explicit baseline.
* :class:`BddRelation` -- the bddbddb-style backend: the relation is a BDD
  over one :class:`~repro.bdd.domain.DomainInstance` per attribute.

The solver only talks to the interface, so analyses can be cross-checked
between backends (a test does exactly that) and the BDD variable-order
ablation just swaps the space's ordering policy.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.bdd import BDD, DomainInstance, DomainSpace

__all__ = [
    "RelationError",
    "Relation",
    "SetRelation",
    "LegacySetRelation",
    "BddRelation",
]

Tuple_ = Tuple[int, ...]

# Shared empty result for missed index probes; never mutated (buckets are
# created via ``setdefault`` with fresh lists, reads use ``get`` with this
# default).
_EMPTY: List[Tuple_] = []


class RelationError(Exception):
    """Raised on arity/domain misuse."""


class Relation:
    """Common interface: a named, typed, finite relation."""

    def __init__(self, name: str, domains: Sequence[str]) -> None:
        self.name = name
        self.domains = tuple(domains)

    @property
    def arity(self) -> int:
        return len(self.domains)

    # -- interface -------------------------------------------------------

    def add(self, values: Tuple_) -> bool:
        """Insert one tuple; return True if it was new."""
        raise NotImplementedError

    def add_all(self, tuples: Iterable[Tuple_]) -> bool:
        changed = False
        for values in tuples:
            changed |= self.add(values)
        return changed

    def __contains__(self, values: Tuple_) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Tuple_]:
        raise NotImplementedError

    def is_empty(self) -> bool:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def _check_arity(self, values: Tuple_) -> None:
        if len(values) != self.arity:
            raise RelationError(
                f"{self.name} expects {self.arity} attributes,"
                f" got {len(values)}: {values}"
            )


class SetRelation(Relation):
    """Explicit tuples with incrementally-maintained hash indexes.

    Indexes map a tuple of bound positions to ``{key_tuple: [tuples]}``.
    An index is built lazily on the first lookup with that column pattern
    and from then on maintained *incrementally* by :meth:`add` -- under
    semi-naive evaluation inserts and lookups interleave every fixpoint
    round, so wholesale invalidation would rebuild every index once per
    round (that pre-optimization behavior is preserved in
    :class:`LegacySetRelation` as the benchmark baseline).

    The full-scan case (``lookup`` with no bound positions) returns a
    cached snapshot list that is appended to on insertion rather than
    copied per call.

    Lists returned by :meth:`lookup` are live views owned by the relation:
    callers must not mutate them.  Growth is append-only, so iterating a
    previously returned list while new tuples arrive is well-defined (the
    iteration may or may not observe the new tuples).

    ``index_builds`` / ``index_hits`` count full index (re)builds and
    served probes for the solver's statistics layer.
    """

    def __init__(self, name: str, domains: Sequence[str]) -> None:
        super().__init__(name, domains)
        self._tuples: set = set()
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple_, List[Tuple_]]] = {}
        self._snapshot: Optional[List[Tuple_]] = None
        self.index_builds = 0
        self.index_hits = 0

    def add(self, values: Tuple_) -> bool:
        values = tuple(values)
        self._check_arity(values)
        if values in self._tuples:
            return False
        self._tuples.add(values)
        if self._snapshot is not None:
            self._snapshot.append(values)
        for positions, index in self._indexes.items():
            index_key = tuple(values[p] for p in positions)
            index.setdefault(index_key, []).append(values)
        return True

    def add_all(self, tuples: Iterable[Tuple_]) -> bool:
        # Bulk fact loading happens before any lookup has materialized an
        # index or snapshot; feed the tuple set directly in that case.
        if self._indexes or self._snapshot is not None:
            return super().add_all(tuples)
        before = len(self._tuples)
        for values in tuples:
            values = tuple(values)
            self._check_arity(values)
            self._tuples.add(values)
        return len(self._tuples) != before

    def insert_new(self, values: Tuple_) -> bool:
        """:meth:`add` minus validation, for solver-built tuples.

        The solver constructs head tuples itself (correct arity by
        construction, already plain ``tuple``s), so the per-insert checks
        of :meth:`add` are pure overhead on the innermost fixpoint loop.
        """
        if values in self._tuples:
            return False
        self._tuples.add(values)
        if self._snapshot is not None:
            self._snapshot.append(values)
        for positions, index in self._indexes.items():
            index_key = tuple(values[p] for p in positions)
            index.setdefault(index_key, []).append(values)
        return True

    def __contains__(self, values: Tuple_) -> bool:
        return tuple(values) in self._tuples

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[Tuple_]:
        return iter(self._tuples)

    def is_empty(self) -> bool:
        return not self._tuples

    def clear(self) -> None:
        self._tuples.clear()
        self._indexes.clear()
        self._snapshot = None

    def discard_all(self, tuples: Iterable[Tuple_]) -> int:
        """Remove tuples (missing ones ignored); return how many existed.

        Deletion happens in batches (the incremental update's overdeletion
        phase), so indexes and the scan snapshot are invalidated wholesale
        and rebuilt lazily on the next lookup rather than maintained
        per-removal.  Callers must not hold live ``lookup`` views across a
        ``discard_all``.
        """
        removed = 0
        for values in tuples:
            values = tuple(values)
            if values in self._tuples:
                self._tuples.discard(values)
                removed += 1
        if removed:
            self._indexes.clear()
            self._snapshot = None
        return removed

    def lookup(
        self, positions: Tuple[int, ...], key: Tuple_
    ) -> List[Tuple_]:
        """All tuples whose ``positions`` columns equal ``key``."""
        if not positions:
            if self._snapshot is None:
                self._snapshot = list(self._tuples)
                self.index_builds += 1
            else:
                self.index_hits += 1
            return self._snapshot
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for values in self._tuples:
                index_key = tuple(values[p] for p in positions)
                index.setdefault(index_key, []).append(values)
            self._indexes[positions] = index
            self.index_builds += 1
        else:
            self.index_hits += 1
        return index.get(key, _EMPTY)


class LegacySetRelation(SetRelation):
    """The pre-optimization storage behavior, kept for benchmarking.

    Every insertion invalidates all indexes wholesale (so each fixpoint
    round rebuilds them from scratch) and the no-bound-columns lookup
    copies the tuple set on every call.  ``benchmarks/bench_datalog_joins``
    measures the incremental engine against this baseline.
    """

    def add(self, values: Tuple_) -> bool:
        values = tuple(values)
        self._check_arity(values)
        if values in self._tuples:
            return False
        self._tuples.add(values)
        self._indexes.clear()
        return True

    def add_all(self, tuples: Iterable[Tuple_]) -> bool:
        changed = False
        for values in tuples:
            changed |= self.add(values)
        return changed

    def insert_new(self, values: Tuple_) -> bool:
        return self.add(values)

    def lookup(
        self, positions: Tuple[int, ...], key: Tuple_
    ) -> List[Tuple_]:
        if not positions:
            return list(self._tuples)
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for values in self._tuples:
                index_key = tuple(values[p] for p in positions)
                index.setdefault(index_key, []).append(values)
            self._indexes[positions] = index
            self.index_builds += 1
        else:
            self.index_hits += 1
        return index.get(key, _EMPTY)


class BddRelation(Relation):
    """A relation stored as a BDD over per-attribute domain instances."""

    def __init__(
        self,
        name: str,
        domains: Sequence[str],
        space: DomainSpace,
        instances: Sequence[DomainInstance],
    ) -> None:
        super().__init__(name, domains)
        if len(instances) != len(domains):
            raise RelationError(
                f"{name}: {len(domains)} domains but {len(instances)} instances"
            )
        for domain, instance in zip(domains, instances):
            if instance.type.name != domain:
                raise RelationError(
                    f"{name}: attribute of domain {domain} stored on"
                    f" instance {instance.name}"
                )
        self.space = space
        self.instances = tuple(instances)
        self.node = space.bdd.FALSE

    @property
    def bdd(self) -> BDD:
        return self.space.bdd

    def add(self, values: Tuple_) -> bool:
        values = tuple(values)
        self._check_arity(values)
        cube = self.space.encode_tuple(self.instances, values)
        new_node = self.bdd.apply_or(self.node, cube)
        changed = new_node != self.node
        self.node = new_node
        return changed

    def __contains__(self, values: Tuple_) -> bool:
        values = tuple(values)
        self._check_arity(values)
        cube = self.space.encode_tuple(self.instances, values)
        return self.bdd.apply_and(self.node, cube) != self.bdd.FALSE

    def __len__(self) -> int:
        return self.space.count_tuples(self.node, self.instances)

    def __iter__(self) -> Iterator[Tuple_]:
        return self.space.tuples(self.node, self.instances)

    def is_empty(self) -> bool:
        return self.node == self.bdd.FALSE

    def clear(self) -> None:
        self.node = self.bdd.FALSE

    def union_node(self, node: int) -> bool:
        """Union a rule-result BDD (already on this relation's instances)."""
        new_node = self.bdd.apply_or(self.node, node)
        changed = new_node != self.node
        self.node = new_node
        return changed
