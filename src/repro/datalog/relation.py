"""Relation storage backends for the Datalog solver.

Two interchangeable backends implement the same small interface:

* :class:`SetRelation` -- tuples in a Python ``set`` with on-demand hash
  indexes; the explicit baseline.
* :class:`BddRelation` -- the bddbddb-style backend: the relation is a BDD
  over one :class:`~repro.bdd.domain.DomainInstance` per attribute.

The solver only talks to the interface, so analyses can be cross-checked
between backends (a test does exactly that) and the BDD variable-order
ablation just swaps the space's ordering policy.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.bdd import BDD, DomainInstance, DomainSpace

__all__ = ["RelationError", "Relation", "SetRelation", "BddRelation"]

Tuple_ = Tuple[int, ...]


class RelationError(Exception):
    """Raised on arity/domain misuse."""


class Relation:
    """Common interface: a named, typed, finite relation."""

    def __init__(self, name: str, domains: Sequence[str]) -> None:
        self.name = name
        self.domains = tuple(domains)

    @property
    def arity(self) -> int:
        return len(self.domains)

    # -- interface -------------------------------------------------------

    def add(self, values: Tuple_) -> bool:
        """Insert one tuple; return True if it was new."""
        raise NotImplementedError

    def add_all(self, tuples: Iterable[Tuple_]) -> bool:
        changed = False
        for values in tuples:
            changed |= self.add(values)
        return changed

    def __contains__(self, values: Tuple_) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Tuple_]:
        raise NotImplementedError

    def is_empty(self) -> bool:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def _check_arity(self, values: Tuple_) -> None:
        if len(values) != self.arity:
            raise RelationError(
                f"{self.name} expects {self.arity} attributes,"
                f" got {len(values)}: {values}"
            )


class SetRelation(Relation):
    """Explicit tuples with per-column-pattern hash indexes.

    Indexes map a tuple of bound positions to ``{key_tuple: [tuples]}``;
    they are invalidated wholesale on mutation (mutations cluster in the
    fact-loading phase, lookups in the join phase, so this is cheap).
    """

    def __init__(self, name: str, domains: Sequence[str]) -> None:
        super().__init__(name, domains)
        self._tuples: set = set()
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple_, List[Tuple_]]] = {}

    def add(self, values: Tuple_) -> bool:
        values = tuple(values)
        self._check_arity(values)
        if values in self._tuples:
            return False
        self._tuples.add(values)
        self._indexes.clear()
        return True

    def __contains__(self, values: Tuple_) -> bool:
        return tuple(values) in self._tuples

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[Tuple_]:
        return iter(self._tuples)

    def is_empty(self) -> bool:
        return not self._tuples

    def clear(self) -> None:
        self._tuples.clear()
        self._indexes.clear()

    def lookup(
        self, positions: Tuple[int, ...], key: Tuple_
    ) -> List[Tuple_]:
        """All tuples whose ``positions`` columns equal ``key``."""
        if not positions:
            return list(self._tuples)
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for values in self._tuples:
                index_key = tuple(values[p] for p in positions)
                index.setdefault(index_key, []).append(values)
            self._indexes[positions] = index
        return index.get(key, [])


class BddRelation(Relation):
    """A relation stored as a BDD over per-attribute domain instances."""

    def __init__(
        self,
        name: str,
        domains: Sequence[str],
        space: DomainSpace,
        instances: Sequence[DomainInstance],
    ) -> None:
        super().__init__(name, domains)
        if len(instances) != len(domains):
            raise RelationError(
                f"{name}: {len(domains)} domains but {len(instances)} instances"
            )
        for domain, instance in zip(domains, instances):
            if instance.type.name != domain:
                raise RelationError(
                    f"{name}: attribute of domain {domain} stored on"
                    f" instance {instance.name}"
                )
        self.space = space
        self.instances = tuple(instances)
        self.node = space.bdd.FALSE

    @property
    def bdd(self) -> BDD:
        return self.space.bdd

    def add(self, values: Tuple_) -> bool:
        values = tuple(values)
        self._check_arity(values)
        cube = self.space.encode_tuple(self.instances, values)
        new_node = self.bdd.apply_or(self.node, cube)
        changed = new_node != self.node
        self.node = new_node
        return changed

    def __contains__(self, values: Tuple_) -> bool:
        values = tuple(values)
        self._check_arity(values)
        cube = self.space.encode_tuple(self.instances, values)
        return self.bdd.apply_and(self.node, cube) != self.bdd.FALSE

    def __len__(self) -> int:
        return self.space.count_tuples(self.node, self.instances)

    def __iter__(self) -> Iterator[Tuple_]:
        return self.space.tuples(self.node, self.instances)

    def is_empty(self) -> bool:
        return self.node == self.bdd.FALSE

    def clear(self) -> None:
        self.node = self.bdd.FALSE

    def union_node(self, node: int) -> bool:
        """Union a rule-result BDD (already on this relation's instances)."""
        new_node = self.bdd.apply_or(self.node, node)
        changed = new_node != self.node
        self.node = new_node
        return changed
