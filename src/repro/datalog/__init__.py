"""A bddbddb-style Datalog engine with set and BDD backends."""

from repro.datalog.program import (
    DatalogError,
    Derivation,
    Program,
    Solution,
    SolverStats,
    StratumStats,
    UpdateStats,
)
from repro.datalog.relation import (
    BddRelation,
    LegacySetRelation,
    Relation,
    RelationError,
    SetRelation,
)
from repro.datalog.rules import (
    Atom,
    Const,
    DatalogSyntaxError,
    NotEqual,
    Rule,
    Var,
    parse_rule,
    parse_rules,
)

__all__ = [
    "Atom",
    "BddRelation",
    "Const",
    "DatalogError",
    "DatalogSyntaxError",
    "Derivation",
    "LegacySetRelation",
    "NotEqual",
    "Program",
    "Relation",
    "RelationError",
    "Rule",
    "SetRelation",
    "Solution",
    "SolverStats",
    "StratumStats",
    "UpdateStats",
    "Var",
    "parse_rule",
    "parse_rules",
]
