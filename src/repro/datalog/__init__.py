"""A bddbddb-style Datalog engine with set and BDD backends."""

from repro.datalog.program import DatalogError, Program, Solution
from repro.datalog.relation import BddRelation, Relation, RelationError, SetRelation
from repro.datalog.rules import (
    Atom,
    Const,
    DatalogSyntaxError,
    NotEqual,
    Rule,
    Var,
    parse_rule,
    parse_rules,
)

__all__ = [
    "Atom",
    "BddRelation",
    "Const",
    "DatalogError",
    "DatalogSyntaxError",
    "NotEqual",
    "Program",
    "Relation",
    "RelationError",
    "Rule",
    "SetRelation",
    "Solution",
    "Var",
    "parse_rule",
    "parse_rules",
]
