"""A bddbddb-style Datalog solver with set and BDD backends.

A :class:`Program` is declarative: declare finite domains, relation
signatures, rules (text or :class:`~repro.datalog.rules.Rule`), and input
facts, then call :meth:`Program.solve`.  Evaluation is stratified
semi-naive fixpoint computation.  The ``backend`` argument picks tuple
storage: ``"set"`` (explicit, fast in CPython) or ``"bdd"``
(BuDDy/bddbddb-style; used by RegionWiz's context-sensitive relations and
by the variable-order ablation).

Both backends produce identical relations -- a property test holds them to
that.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bdd import BDD, DomainInstance, DomainSpace
from repro.datalog.relation import (
    BddRelation,
    LegacySetRelation,
    Relation,
    RelationError,
    SetRelation,
)
from repro.datalog.rules import (
    Atom,
    BodyItem,
    Const,
    DatalogSyntaxError,
    NotEqual,
    Rule,
    Var,
    parse_rules,
)
from repro.obs.trace import trace_span, tracing
from repro.util.budget import BudgetMeter
from repro.util.graph import strongly_connected_components

__all__ = [
    "Program",
    "Solution",
    "DatalogError",
    "Derivation",
    "SolverStats",
    "StratumStats",
    "UpdateStats",
]


class DatalogError(Exception):
    """Semantic errors: unknown relations, domain mismatches, bad strata."""


# ---------------------------------------------------------------------------
# Solver statistics
# ---------------------------------------------------------------------------


@dataclass
class StratumStats:
    """Observability counters for one stratum of the fixpoint."""

    relations: Tuple[str, ...]
    rounds: int = 0
    derived: int = 0
    seconds: float = 0.0


@dataclass
class SolverStats:
    """Where :meth:`Program.solve` spent its time, exposed on ``Solution``.

    ``index_builds``/``index_hits`` cover the set backend's hash indexes
    (including the per-round delta relations); ``bdd_cache_lookups``/
    ``bdd_cache_hits`` cover the BDD manager's operation caches.  The
    invariant ``facts_loaded + tuples_derived == sum of final relation
    sizes`` holds on both backends and is property-tested.
    """

    backend: str
    engine: str = "indexed"
    facts_loaded: int = 0
    tuples_derived: int = 0
    rounds: int = 0
    rule_evals: int = 0
    rule_eval_seconds: float = 0.0
    index_builds: int = 0
    index_hits: int = 0
    bdd_cache_lookups: int = 0
    bdd_cache_hits: int = 0
    solve_seconds: float = 0.0
    updates: int = 0
    update_seconds: float = 0.0
    strata_skipped: int = 0
    strata: List[StratumStats] = field(default_factory=list)
    rule_seconds: Dict[str, float] = field(default_factory=dict)
    rule_derived: Dict[str, int] = field(default_factory=dict)

    @property
    def index_hit_rate(self) -> float:
        probes = self.index_builds + self.index_hits
        return self.index_hits / probes if probes else 0.0

    @property
    def bdd_cache_hit_rate(self) -> float:
        if not self.bdd_cache_lookups:
            return 0.0
        return self.bdd_cache_hits / self.bdd_cache_lookups

    def slowest_rules(self, limit: int = 3) -> List[Tuple[str, float]]:
        ranked = sorted(
            self.rule_seconds.items(), key=lambda item: -item[1]
        )
        return ranked[:limit]

    def summary(self) -> str:
        """Human-readable multi-line account of the solve."""
        lines = [
            f"datalog solve: backend={self.backend} engine={self.engine}"
            f" {self.solve_seconds * 1000:.1f}ms",
            f"  facts loaded: {self.facts_loaded};"
            f" tuples derived: {self.tuples_derived};"
            f" {self.rounds} round(s) across {len(self.strata)} strat(a)",
            f"  rule evaluations: {self.rule_evals}"
            f" ({self.rule_eval_seconds * 1000:.1f}ms)",
        ]
        if self.backend == "set":
            lines.append(
                f"  index builds: {self.index_builds},"
                f" hits: {self.index_hits}"
                f" ({self.index_hit_rate * 100:.1f}% hit rate)"
            )
        else:
            lines.append(
                f"  BDD op-cache: {self.bdd_cache_hits}/"
                f"{self.bdd_cache_lookups} hits"
                f" ({self.bdd_cache_hit_rate * 100:.1f}% hit rate)"
            )
        for i, stratum in enumerate(self.strata):
            names = ", ".join(stratum.relations)
            lines.append(
                f"  stratum {i} [{names}]: {stratum.rounds} round(s),"
                f" {stratum.derived} tuple(s),"
                f" {stratum.seconds * 1000:.1f}ms"
            )
        slowest = self.slowest_rules()
        if slowest:
            lines.append("  slowest rules:")
            for text, seconds in slowest:
                lines.append(f"    {seconds * 1000:8.1f}ms  {text}")
        return "\n".join(lines)


@dataclass
class UpdateStats:
    """Account of one :meth:`Solution.update` call.

    ``mode`` is ``"delta"`` when the indexed set engine ran its
    delete-rederive (DRed) pass, ``"resolve"`` when the backend fell back
    to a full re-solve (legacy/bdd engines and provenance-recording
    solutions), and ``"noop"`` when the requested fact delta was empty
    after netting against the currently-asserted facts.
    """

    mode: str = "noop"
    facts_asserted: int = 0
    facts_retracted: int = 0
    strata_total: int = 0
    strata_skipped: int = 0
    tuples_deleted: int = 0
    tuples_inserted: int = 0
    rederived: int = 0
    rounds: int = 0
    seconds: float = 0.0


# ---------------------------------------------------------------------------
# Derivation provenance
# ---------------------------------------------------------------------------

#: A grounded tuple reference: (relation name, values).
ProvKey = Tuple[str, Tuple[int, ...]]


@dataclass
class Derivation:
    """One node of a derivation tree for a derived tuple.

    ``rule is None`` marks a leaf: an input fact (``is_fact``) or a tuple
    whose derivation was not recorded (solving without ``provenance=True``
    never records any).  Children cover the rule's *positive* body atoms
    in body order; negated atoms and disequalities hold by absence and
    are reconstructed from ``rule`` by renderers.
    """

    relation: str
    values: Tuple[int, ...]
    rule: Optional[Rule] = None
    children: List["Derivation"] = field(default_factory=list)
    is_fact: bool = False

    @property
    def depth(self) -> int:
        return 1 + max((child.depth for child in self.children), default=0)

    def leaves(self) -> List["Derivation"]:
        if not self.children:
            return [self]
        found: List["Derivation"] = []
        for child in self.children:
            found.extend(child.leaves())
        return found


@dataclass
class _RelationDecl:
    name: str
    domains: Tuple[str, ...]
    is_input: bool = True  # flipped off once it appears in a rule head


class Program:
    """Declarative Datalog program over finite domains."""

    def __init__(
        self,
        backend: str = "set",
        ordering: str = "interleaved",
        engine: str = "indexed",
    ) -> None:
        if backend not in ("set", "bdd"):
            raise DatalogError(f"unknown backend {backend!r}")
        if engine not in ("indexed", "legacy"):
            raise DatalogError(f"unknown set engine {engine!r}")
        if backend == "bdd" and engine != "indexed":
            raise DatalogError("the bdd backend has no legacy engine")
        self.backend = backend
        self.ordering = ordering
        self.engine = engine
        self._domains: Dict[str, int] = {}
        self._relations: Dict[str, _RelationDecl] = {}
        self._rules: List[Rule] = []
        self._facts: Dict[str, Set[Tuple[int, ...]]] = {}

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def domain(self, name: str, size: int) -> None:
        """Declare a finite domain with values ``0..size-1``."""
        if name in self._domains:
            raise DatalogError(f"domain {name!r} already declared")
        if size < 1:
            raise DatalogError(f"domain {name!r} must be non-empty")
        self._domains[name] = size

    def relation(self, name: str, domains: Sequence[str]) -> None:
        """Declare a relation signature, e.g. ``("call", ["I", "F"])``."""
        if name in self._relations:
            raise DatalogError(f"relation {name!r} already declared")
        for domain in domains:
            if domain not in self._domains:
                raise DatalogError(
                    f"relation {name!r} uses undeclared domain {domain!r}"
                )
        self._relations[name] = _RelationDecl(name, tuple(domains))
        self._facts[name] = set()

    def rules(self, text: str) -> None:
        """Add rules from concrete syntax (see :mod:`repro.datalog.rules`)."""
        for rule in parse_rules(text):
            self.rule(rule)

    def rule(self, rule: Rule) -> None:
        self._check_rule(rule)
        if rule.is_fact:
            for term in rule.head.terms:
                if isinstance(term, Var):
                    raise DatalogError(
                        f"fact with unbound variable {term}: {rule}"
                    )
            values = tuple(
                term.value  # type: ignore[union-attr]
                for term in rule.head.terms
            )
            self.fact(rule.head.relation, *values)
            return
        self._relations[rule.head.relation].is_input = False
        self._rules.append(rule)

    def fact(self, name: str, *values: int) -> None:
        """Assert an input tuple."""
        decl = self._decl(name)
        if len(values) != len(decl.domains):
            raise DatalogError(
                f"fact {name}{values} has arity {len(values)},"
                f" expected {len(decl.domains)}"
            )
        for value, domain in zip(values, decl.domains):
            if not 0 <= value < self._domains[domain]:
                raise DatalogError(
                    f"fact {name}{values}: {value} out of range for"
                    f" domain {domain} (size {self._domains[domain]})"
                )
        self._facts[name].add(tuple(values))

    def _decl(self, name: str) -> _RelationDecl:
        decl = self._relations.get(name)
        if decl is None:
            raise DatalogError(f"unknown relation {name!r}")
        return decl

    # ------------------------------------------------------------------
    # Static checks
    # ------------------------------------------------------------------

    def _check_rule(self, rule: Rule) -> None:
        var_domains: Dict[Var, str] = {}
        for atom in itertools.chain([rule.head], rule.body):
            if isinstance(atom, NotEqual):
                continue
            decl = self._decl(atom.relation)
            if len(atom.terms) != len(decl.domains):
                raise DatalogError(
                    f"atom {atom} has arity {len(atom.terms)},"
                    f" {atom.relation} expects {len(decl.domains)}"
                )
            for term, domain in zip(atom.terms, decl.domains):
                if isinstance(term, Const):
                    if not 0 <= term.value < self._domains[domain]:
                        raise DatalogError(
                            f"constant {term.value} out of range for domain"
                            f" {domain} in {atom}"
                        )
                else:
                    bound = var_domains.setdefault(term, domain)
                    if bound != domain:
                        raise DatalogError(
                            f"variable {term} used at domains {bound} and"
                            f" {domain} in rule {rule}"
                        )
        for constraint in rule.constraints():
            left = var_domains.get(constraint.left)
            right = var_domains.get(constraint.right)
            if left is None or right is None or left != right:
                raise DatalogError(
                    f"disequality {constraint} over mismatched or unknown"
                    f" domains in rule {rule}"
                )

    def _stratify(self) -> List[List[Rule]]:
        """Group rules into strata; reject negation inside a cycle."""
        depends: Dict[str, Set[str]] = {name: set() for name in self._relations}
        negative_edges: Set[Tuple[str, str]] = set()
        for rule in self._rules:
            head = rule.head.relation
            for item in rule.body:
                if isinstance(item, NotEqual):
                    continue
                depends[head].add(item.relation)
                if item.negated:
                    negative_edges.add((head, item.relation))
        components = strongly_connected_components(depends)
        component_of: Dict[str, int] = {}
        for i, component in enumerate(components):
            for name in component:
                component_of[name] = i
        for head, body_rel in negative_edges:
            if component_of[head] == component_of[body_rel]:
                raise DatalogError(
                    f"program is not stratified: {head} negates {body_rel}"
                    f" inside a recursive component"
                )
        # Tarjan emits dependencies first, so assigning rules to the
        # component of their head and walking components in order is a
        # valid stratified schedule.
        strata: List[List[Rule]] = [[] for _ in components]
        for rule in self._rules:
            strata[component_of[rule.head.relation]].append(rule)
        return [stratum for stratum in strata if stratum]

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def solve(
        self,
        meter: Optional[BudgetMeter] = None,
        provenance: bool = False,
    ) -> "Solution":
        """Evaluate to fixpoint and return the resulting relation store.

        ``meter`` (a started :class:`~repro.util.budget.BudgetMeter`)
        adds cooperative checkpoints to every fixpoint round: the wall
        clock is checked per round and every derived tuple is charged
        against the budget's ``max_derived_tuples`` limit, raising a
        structured ``BudgetExceeded`` on a blowup.

        ``provenance=True`` (indexed set engine only) records, for every
        derived tuple, the rule and the positive body tuples of its first
        derivation; :meth:`Solution.explain` walks those records into a
        :class:`Derivation` tree.  Recording costs time and memory
        proportional to the derived tuple count, so it is off by default
        and enabled per-query (the CLI's ``--explain``).
        """
        if provenance and (self.backend != "set" or self.engine != "indexed"):
            raise DatalogError(
                "provenance recording requires the indexed set engine"
            )
        started = time.perf_counter()
        strata = self._stratify()
        if self.backend == "set":
            if self.engine == "legacy":
                store: _Store = _LegacySetStore(self)
            else:
                store = _SetStore(self)
        else:
            store = _BddStore(self)
        store.meter = meter
        if provenance:
            store.provenance = {}
            store.fact_keys = set()
        with trace_span("datalog.solve") as span:
            for name, facts in self._facts.items():
                store.load_facts(name, facts)
            for stratum in strata:
                store.run_stratum(stratum)
            store.finalize_stats()
            span.set(
                backend=self.backend,
                engine=self.engine,
                facts=store.stats.facts_loaded,
                derived=store.stats.tuples_derived,
                rounds=store.stats.rounds,
            )
        store.stats.solve_seconds = time.perf_counter() - started
        return Solution(self, store)

    def resume(
        self,
        relations: Dict[str, Iterable[Tuple[int, ...]]],
        meter: Optional[BudgetMeter] = None,
    ) -> "Solution":
        """Reconstruct a :class:`Solution` from a saved relation snapshot.

        ``relations`` maps relation names to their *full* contents (base
        facts included) at a previously-reached fixpoint of this program's
        rules over its currently-asserted facts — typically a persisted
        :meth:`Solution.snapshot`.  The snapshot is trusted to be that
        fixpoint: no rules are evaluated, so a snapshot produced by a
        different program or fact set silently yields wrong answers.
        Callers that persist snapshots must content-address them against
        the program identity (the incremental analysis state store does).

        Tuples are still arity- and domain-checked so a truncated or
        corrupted snapshot raises :class:`DatalogError` instead of
        poisoning later queries.  Only the indexed set engine can resume —
        it is the engine with the :meth:`Solution.update` delta path that
        makes resuming worthwhile.
        """
        if self.backend != "set" or self.engine != "indexed":
            raise DatalogError("resume requires the indexed set engine")
        started = time.perf_counter()
        store = _SetStore(self)
        store.meter = meter
        for name in relations:
            self._decl(name)
        for name, decl in self._relations.items():
            relation = store.relation(name)
            for values in relations.get(name, ()):
                values = tuple(values)
                if len(values) != len(decl.domains):
                    raise DatalogError(
                        f"snapshot {name}{values} has arity {len(values)},"
                        f" expected {len(decl.domains)}"
                    )
                for value, domain in zip(values, decl.domains):
                    if not 0 <= value < self._domains[domain]:
                        raise DatalogError(
                            f"snapshot {name}{values}: {value} out of range"
                            f" for domain {domain}"
                        )
                relation.add(values)
        total = sum(len(store.relation(name)) for name in self._relations)
        loaded = sum(
            len(self._facts[name] & set(store.relation(name)))
            for name in self._relations
        )
        store.stats.facts_loaded = loaded
        store.stats.tuples_derived = total - loaded
        store.stats.solve_seconds = time.perf_counter() - started
        return Solution(self, store)


class Solution:
    """Queryable result of :meth:`Program.solve`."""

    def __init__(self, program: Program, store: "_Store") -> None:
        self._program = program
        self._store = store

    def relation(self, name: str) -> Relation:
        return self._store.relation(name)

    def tuples(self, name: str) -> Set[Tuple[int, ...]]:
        return set(self._store.relation(name))

    def count(self, name: str) -> int:
        return len(self._store.relation(name))

    def snapshot(self) -> Dict[str, List[Tuple[int, ...]]]:
        """Sorted contents of every relation, base facts included.

        The output round-trips through :meth:`Program.resume`: feeding it
        to an identically-declared program holding the same asserted facts
        reconstructs this solution without re-running any rule.  Sorting
        makes the snapshot deterministic, so persisted forms are
        byte-stable across runs and safe to content-address.
        """
        return {
            name: sorted(self._store.relation(name))
            for name in self._program._relations
        }

    def __contains__(self, query: Tuple[str, Tuple[int, ...]]) -> bool:
        name, values = query
        return tuple(values) in self._store.relation(name)

    @property
    def stats(self) -> SolverStats:
        """Observability counters gathered while solving."""
        return self._store.stats

    def update(
        self,
        asserted: Optional[Dict[str, Iterable[Tuple[int, ...]]]] = None,
        retracted: Optional[Dict[str, Iterable[Tuple[int, ...]]]] = None,
        meter: Optional[BudgetMeter] = None,
    ) -> UpdateStats:
        """Apply a base-fact delta and bring every relation to the new
        fixpoint without re-deriving unaffected strata.

        ``retracted`` facts are removed first, then ``asserted`` facts are
        added; the effective delta is netted against the program's
        currently-asserted facts (retracting an absent fact or asserting a
        present one is a no-op).  On the indexed set engine the store runs
        a delete-rederive (DRed) pass per affected stratum — overdelete
        everything whose recorded support touches a deleted tuple (or a
        tuple newly added under a negated atom), physically remove, then
        rederive survivors and propagate insertions through the existing
        semi-naive delta path — and *skips* strata whose rules mention no
        changed relation.  Stratified negation stays sound because negated
        atoms always refer to relations finalized in lower strata, so each
        stratum sees its negated inputs at their new fixpoint.

        The legacy set engine, the BDD backend, and provenance-recording
        solutions fall back to a full re-solve behind the same interface
        (``mode="resolve"`` in the returned :class:`UpdateStats`); results
        are identical on every path, which the incremental ≡ full property
        test holds them to.

        The program's rules and declarations must not have changed since
        the original solve.
        """
        program = self._program
        started = time.perf_counter()
        ustats = UpdateStats()
        eff_add: Dict[str, Set[Tuple[int, ...]]] = {}
        eff_del: Dict[str, Set[Tuple[int, ...]]] = {}
        names = set(asserted or ()) | set(retracted or ())
        # Validate the entire delta before touching ``program._facts`` so a
        # rejected update leaves the solution and the asserted facts
        # consistent (no partial mutation on error).
        normalized: Dict[str, Tuple[Set[Tuple[int, ...]],
                                    Set[Tuple[int, ...]]]] = {}
        for name in sorted(names):
            decl = program._decl(name)
            removes = {tuple(t) for t in (retracted or {}).get(name, ())}
            adds = {tuple(t) for t in (asserted or {}).get(name, ())}
            for values in removes | adds:
                if len(values) != len(decl.domains):
                    raise DatalogError(
                        f"update {name}{values} has arity {len(values)},"
                        f" expected {len(decl.domains)}"
                    )
            for values in adds:
                for value, domain in zip(values, decl.domains):
                    if not 0 <= value < program._domains[domain]:
                        raise DatalogError(
                            f"update {name}{values}: {value} out of range"
                            f" for domain {domain}"
                        )
            normalized[name] = (removes, adds)
        for name, (removes, adds) in normalized.items():
            old = program._facts[name]
            new = (old - removes) | adds
            if new != old:
                eff_add[name] = new - old
                eff_del[name] = old - new
                program._facts[name] = new
        ustats.facts_asserted = sum(len(v) for v in eff_add.values())
        ustats.facts_retracted = sum(len(v) for v in eff_del.values())
        if not eff_add and not eff_del:
            ustats.seconds = time.perf_counter() - started
            return ustats
        store = self._store
        if type(store) is _SetStore and store.provenance is None:
            if meter is not None:
                store.meter = meter
            strata = program._stratify()
            ustats.mode = "delta"
            ustats.strata_total = len(strata)
            with trace_span("datalog.update") as span:
                store.apply_update(strata, program._facts, eff_add, eff_del,
                                   ustats)
                span.set(
                    asserted=ustats.facts_asserted,
                    retracted=ustats.facts_retracted,
                    skipped=ustats.strata_skipped,
                    deleted=ustats.tuples_deleted,
                    inserted=ustats.tuples_inserted,
                )
        else:
            fresh = program.solve(meter=meter, provenance=self.has_provenance)
            self._store = fresh._store
            ustats.mode = "resolve"
        ustats.seconds = time.perf_counter() - started
        self._store.stats.updates += 1
        self._store.stats.update_seconds += ustats.seconds
        self._store.stats.strata_skipped += ustats.strata_skipped
        return ustats

    @property
    def has_provenance(self) -> bool:
        """Whether the solve recorded derivations (``provenance=True``)."""
        return self._store.provenance is not None

    def explain(self, name: str, values: Tuple[int, ...]) -> Derivation:
        """The recorded derivation tree for one tuple.

        Facts come back as ``is_fact`` leaves; derived tuples carry the
        rule of their first derivation and its positive body tuples as
        children.  Tuples absent from the relation (or solved without
        ``provenance=True``) come back as bare leaves with no rule.
        Shared sub-derivations are memoized, so the tree is linear in the
        number of distinct tuples it mentions; first-derivation recording
        guarantees acyclicity (a derivation only references tuples
        inserted strictly earlier).
        """
        key: ProvKey = (name, tuple(values))
        cache: Dict[ProvKey, Derivation] = {}
        provenance = self._store.provenance or {}
        fact_keys = self._store.fact_keys or set()

        def walk(key: ProvKey) -> Derivation:
            cached = cache.get(key)
            if cached is not None:
                return cached
            relation, tup = key
            if key in fact_keys:
                node = Derivation(relation, tup, is_fact=True)
            elif key in provenance:
                rule, body = provenance[key]
                node = Derivation(relation, tup, rule=rule)
                cache[key] = node  # memo before recursion (acyclic anyway)
                node.children = [
                    walk((body_rel, body_values))
                    for _, body_rel, body_values in sorted(body)
                ]
            else:
                node = Derivation(relation, tup)
            cache[key] = node
            return node

        return walk(key)

    @property
    def bdd(self) -> Optional[BDD]:
        """The underlying BDD manager (None for the set backend)."""
        return getattr(self._store, "bdd", None)

    def bdd_node_count(self, name: str) -> int:
        """Nodes in a relation's BDD (0 for the set backend)."""
        relation = self._store.relation(name)
        if isinstance(relation, BddRelation):
            return relation.bdd.node_count(relation.node)
        return 0


# ---------------------------------------------------------------------------
# Stores
# ---------------------------------------------------------------------------


class _Store:
    stats: SolverStats
    #: Optional budget meter; set by :meth:`Program.solve` before facts load.
    meter: Optional[BudgetMeter] = None
    #: Derivation records, (head name, tuple) -> (rule, body tuple refs);
    #: allocated by :meth:`Program.solve` when ``provenance=True``.
    provenance: Optional[Dict[ProvKey, Tuple[Rule, tuple]]] = None
    #: Input-fact keys, tracked only while recording provenance.
    fact_keys: Optional[Set[ProvKey]] = None

    def relation(self, name: str) -> Relation:
        raise NotImplementedError

    def load_facts(self, name: str, facts: Iterable[Tuple[int, ...]]) -> None:
        relation = self.relation(name)
        before = len(relation)
        relation.add_all(facts)
        self.stats.facts_loaded += len(relation) - before
        if self.fact_keys is not None:
            self.fact_keys.update((name, values) for values in facts)

    def run_stratum(self, rules: List[Rule]) -> None:
        raise NotImplementedError

    def finalize_stats(self) -> None:
        """Fold backend-owned counters into :attr:`stats` after solving."""


@dataclass
class _JoinStep:
    """One positive atom of a rule body, compiled for the join loop.

    Variables are compiled to integer slots in a flat environment list,
    so the innermost loop never hashes :class:`Var` objects.

    ``key_positions``/``key_template`` describe the bound columns probed
    through the relation index (constants are pre-filled in the template,
    variable slots are copied in via ``key_slots`` right before the
    probe).  ``bind_positions`` maps columns binding fresh variables to
    their env slots; ``same_positions`` pairs columns that must agree
    because the atom repeats a fresh variable.  ``checks`` are compiled
    negated atoms / disequalities whose variables are all bound once this
    step has matched -- evaluated here, not at the end, so failing
    branches are pruned as early as possible.  Each check is a tuple
    ``(neg_tuples, neg_template, neg_fill, slot_a, slot_b)``: when
    ``neg_tuples`` is None the check is ``env[slot_a] != env[slot_b]``,
    otherwise fill ``neg_template`` via ``neg_fill`` and require the
    tuple to be absent from ``neg_tuples``.
    """

    body_index: int
    relation_name: str
    key_positions: Tuple[int, ...]
    key_template: List[Optional[int]]
    key_slots: List[Tuple[int, int]]
    bind_positions: List[Tuple[int, int]]
    same_positions: List[Tuple[int, int]]
    checks: List[tuple]


class _SetStore(_Store):
    """Semi-naive evaluation over explicit tuple sets.

    Three things distinguish it from the textbook evaluator (preserved in
    :class:`_LegacySetStore` for benchmarking):

    * relations keep their hash indexes incrementally up to date across
      the insert/lookup interleaving of semi-naive rounds;
    * the per-round delta is itself an indexed :class:`SetRelation`, so
      joins against the delta use hash probes instead of linear scans;
    * a join planner orders each rule's positive atoms by estimated
      selectivity (most bound columns first, smallest relation next,
      delta atom always first) and evaluates negation/disequality checks
      at the earliest point their variables are bound.
    """

    def __init__(self, program: Program) -> None:
        self._relations: Dict[str, SetRelation] = {
            name: SetRelation(name, decl.domains)
            for name, decl in program._relations.items()
        }
        self.stats = SolverStats(backend="set", engine="indexed")

    def relation(self, name: str) -> SetRelation:
        return self._relations[name]

    def finalize_stats(self) -> None:
        for relation in self._relations.values():
            self._retire_counters(relation)

    def _retire_counters(self, relation: SetRelation) -> None:
        self.stats.index_builds += relation.index_builds
        self.stats.index_hits += relation.index_hits
        relation.index_builds = 0
        relation.index_hits = 0

    def _fresh_delta(
        self, name: str, tuples: Iterable[Tuple[int, ...]]
    ) -> SetRelation:
        source = self._relations[name]
        delta = SetRelation(source.name, source.domains)
        delta.add_all(tuples)
        return delta

    def run_stratum(self, rules: List[Rule]) -> None:
        with trace_span("datalog.stratum") as span:
            self._run_stratum(rules, span)

    def _run_stratum(self, rules: List[Rule], span) -> None:
        started = time.perf_counter()
        heads = {rule.head.relation for rule in rules}
        stratum = StratumStats(relations=tuple(sorted(heads)))
        span.set(relations=",".join(stratum.relations))
        self.stats.strata.append(stratum)
        # Delta = everything currently in the stratum's head relations
        # (facts and contributions from earlier strata), stored as an
        # indexed relation so delta joins are hash probes.
        delta: Dict[str, SetRelation] = {
            name: self._fresh_delta(name, self._relations[name])
            for name in heads
        }
        # First round must also run rules whose body has no atom in this
        # stratum (e.g. copies from lower strata).
        stratum.rounds = 1
        for rule in rules:
            fresh = self._eval_rule(rule, delta_atom=None, delta=None)
            head = self._relations[rule.head.relation]
            added = 0
            for values in fresh:
                if head.insert_new(values):
                    delta[rule.head.relation].insert_new(values)
                    added += 1
            self._count_derived(rule, added, stratum)
        while any(not rel.is_empty() for rel in delta.values()):
            if self.meter is not None:
                self.meter.checkpoint("datalog")
            stratum.rounds += 1
            new_delta: Dict[str, SetRelation] = {
                name: self._fresh_delta(name, ()) for name in heads
            }
            for rule in rules:
                positions = [
                    i
                    for i, item in enumerate(rule.body)
                    if isinstance(item, Atom)
                    and not item.negated
                    and item.relation in heads
                ]
                for position in positions:
                    atom = rule.body[position]
                    assert isinstance(atom, Atom)
                    if delta[atom.relation].is_empty():
                        continue
                    fresh = self._eval_rule(
                        rule, delta_atom=position, delta=delta[atom.relation]
                    )
                    head = self._relations[rule.head.relation]
                    added = 0
                    for values in fresh:
                        if head.insert_new(values):
                            new_delta[rule.head.relation].insert_new(values)
                            added += 1
                    self._count_derived(rule, added, stratum)
            for retired in delta.values():
                self._retire_counters(retired)
            delta = new_delta
        for retired in delta.values():
            self._retire_counters(retired)
        self.stats.rounds += stratum.rounds
        stratum.seconds = time.perf_counter() - started
        span.set(rounds=stratum.rounds, derived=stratum.derived)

    def _count_derived(
        self, rule: Rule, added: int, stratum: StratumStats
    ) -> None:
        if not added:
            return
        stratum.derived += added
        self.stats.tuples_derived += added
        key = str(rule)
        self.stats.rule_derived[key] = (
            self.stats.rule_derived.get(key, 0) + added
        )
        if self.meter is not None:
            self.meter.charge_tuples(added, "datalog")

    # -- join planning -----------------------------------------------------

    def _plan_joins(
        self,
        positive: List[Tuple[int, Atom]],
        delta_atom: Optional[int],
        delta: Optional[SetRelation],
    ) -> List[Tuple[int, Atom]]:
        """Order positive atoms by estimated selectivity.

        The delta atom stays first (every semi-naive derivation must use a
        new tuple); the rest are chosen greedily, preferring atoms with
        the most bound columns and, among those, the smallest relation.
        The textual index breaks remaining ties, keeping plans
        deterministic.
        """
        ordered: List[Tuple[int, Atom]] = []
        remaining = list(positive)
        bound: Set[Var] = set()
        if delta_atom is not None:
            for pair in remaining:
                if pair[0] == delta_atom:
                    ordered.append(pair)
                    remaining.remove(pair)
                    bound.update(pair[1].variables)
                    break
        while remaining:
            best: Optional[Tuple[int, Atom]] = None
            best_key: Optional[Tuple[int, int, int]] = None
            for pair in remaining:
                index, atom = pair
                bound_columns = sum(
                    1
                    for term in atom.terms
                    if isinstance(term, Const) or term in bound
                )
                size = len(self._relations[atom.relation])
                key = (-bound_columns, size, index)
                if best_key is None or key < best_key:
                    best, best_key = pair, key
            assert best is not None
            ordered.append(best)
            remaining.remove(best)
            bound.update(best[1].variables)
        return ordered

    def _compile_checks(
        self,
        items: List[BodyItem],
        slots: Dict[Var, int],
    ) -> List[tuple]:
        """Compile tail items into ``_JoinStep.checks`` tuples."""
        checks: List[tuple] = []
        for item in items:
            if isinstance(item, NotEqual):
                checks.append(
                    (None, None, None, slots[item.left], slots[item.right])
                )
            else:
                template: List[Optional[int]] = []
                fill: List[Tuple[int, int]] = []
                for i, term in enumerate(item.terms):
                    if isinstance(term, Const):
                        template.append(term.value)
                    else:
                        template.append(None)
                        fill.append((i, slots[term]))
                checks.append(
                    (self._relations[item.relation]._tuples, template, fill, 0, 0)
                )
        return checks

    def _compile_steps(
        self,
        rule: Rule,
        ordered: List[Tuple[int, Atom]],
    ) -> Tuple[List[_JoinStep], List[tuple], List[Optional[int]],
               List[Tuple[int, int]], int]:
        """Compile a join plan: steps, final checks, and the head layout.

        Returns ``(steps, final_checks, head_template, head_fill, nslots)``
        where the head tuple is emitted by writing ``env[slot]`` values
        into ``head_template`` at the ``head_fill`` positions.
        """
        tail: List[BodyItem] = [
            item
            for item in rule.body
            if isinstance(item, NotEqual)
            or (isinstance(item, Atom) and item.negated)
        ]

        def item_vars(item: BodyItem) -> Set[Var]:
            if isinstance(item, NotEqual):
                return {item.left, item.right}
            return set(item.variables)

        slots: Dict[Var, int] = {}

        def slot_of(var: Var) -> int:
            slot = slots.get(var)
            if slot is None:
                slot = slots[var] = len(slots)
            return slot

        steps: List[_JoinStep] = []
        bound: Set[Var] = set()
        pending = list(tail)
        for body_index, atom in ordered:
            key_positions: List[int] = []
            key_template: List[Optional[int]] = []
            key_slots: List[Tuple[int, int]] = []
            bind_positions: List[Tuple[int, int]] = []
            same_positions: List[Tuple[int, int]] = []
            fresh_at: Dict[Var, int] = {}
            for i, term in enumerate(atom.terms):
                if isinstance(term, Const):
                    key_template.append(term.value)
                    key_positions.append(i)
                elif term in bound:
                    key_template.append(None)
                    key_slots.append((len(key_template) - 1, slot_of(term)))
                    key_positions.append(i)
                elif term in fresh_at:
                    same_positions.append((i, fresh_at[term]))
                else:
                    fresh_at[term] = i
                    bind_positions.append((i, slot_of(term)))
            bound.update(atom.variables)
            ready = [item for item in pending if item_vars(item) <= bound]
            for item in ready:
                pending.remove(item)
            steps.append(
                _JoinStep(
                    body_index=body_index,
                    relation_name=atom.relation,
                    key_positions=tuple(key_positions),
                    key_template=key_template,
                    key_slots=key_slots,
                    bind_positions=bind_positions,
                    same_positions=same_positions,
                    checks=self._compile_checks(ready, slots),
                )
            )
        final_checks = self._compile_checks(pending, slots)
        head_template: List[Optional[int]] = []
        head_fill: List[Tuple[int, int]] = []
        for i, term in enumerate(rule.head.terms):
            if isinstance(term, Const):
                head_template.append(term.value)
            else:
                head_template.append(None)
                head_fill.append((i, slots[term]))
        return steps, final_checks, head_template, head_fill, len(slots)

    def _eval_rule(
        self,
        rule: Rule,
        delta_atom: Optional[int],
        delta: Optional[SetRelation],
    ) -> List[Tuple[int, ...]]:
        started = time.perf_counter()
        positive = [
            (i, item)
            for i, item in enumerate(rule.body)
            if isinstance(item, Atom) and not item.negated
        ]
        ordered = self._plan_joins(positive, delta_atom, delta)
        steps, final_checks, head_template, head_fill, nslots = (
            self._compile_steps(rule, ordered)
        )
        results: List[Tuple[int, ...]] = []
        env: List[Optional[int]] = [None] * nslots
        nsteps = len(steps)

        def passes(check: tuple) -> bool:
            neg_tuples, template, fill, slot_a, slot_b = check
            if neg_tuples is None:
                return env[slot_a] != env[slot_b]
            for i, slot in fill:
                template[i] = env[slot]
            return tuple(template) not in neg_tuples

        # Provenance variant of the join loop: maintains the trail of
        # matched body tuples and records each *first* derivation of a
        # head tuple.  Kept separate so the common path below stays free
        # of per-candidate branches.
        prov = self.provenance
        if prov is not None:
            assert self.fact_keys is not None
            fact_keys = self.fact_keys
            head_rel = rule.head.relation
            trail: List[Tuple[int, str, Tuple[int, ...]]] = []

            def join_prov(position: int) -> None:
                if position == nsteps:
                    for check in final_checks:
                        if not passes(check):
                            return
                    for i, slot in head_fill:
                        head_template[i] = env[slot]
                    values = tuple(head_template)
                    results.append(values)
                    key = (head_rel, values)
                    if key not in prov and key not in fact_keys:
                        prov[key] = (rule, tuple(trail))
                    return
                step = steps[position]
                if step.body_index == delta_atom and delta is not None:
                    relation: SetRelation = delta
                else:
                    relation = self._relations[step.relation_name]
                key_template = step.key_template
                for i, slot in step.key_slots:
                    key_template[i] = env[slot]
                candidates = relation.lookup(
                    step.key_positions, tuple(key_template)
                )
                next_position = position + 1
                for values in candidates:
                    if step.same_positions and any(
                        values[i] != values[j]
                        for i, j in step.same_positions
                    ):
                        continue
                    for i, slot in step.bind_positions:
                        env[slot] = values[i]
                    if all(passes(check) for check in step.checks):
                        trail.append(
                            (step.body_index, step.relation_name, values)
                        )
                        join_prov(next_position)
                        trail.pop()

        def join(position: int) -> None:
            if position == nsteps:
                for check in final_checks:
                    if not passes(check):
                        return
                for i, slot in head_fill:
                    head_template[i] = env[slot]
                results.append(tuple(head_template))
                return
            step = steps[position]
            if step.body_index == delta_atom and delta is not None:
                relation: SetRelation = delta
            else:
                relation = self._relations[step.relation_name]
            key_template = step.key_template
            for i, slot in step.key_slots:
                key_template[i] = env[slot]
            candidates = relation.lookup(
                step.key_positions, tuple(key_template)
            )
            bind_positions = step.bind_positions
            same_positions = step.same_positions
            checks = step.checks
            next_position = position + 1
            for values in candidates:
                if same_positions:
                    consistent = True
                    for i, j in same_positions:
                        if values[i] != values[j]:
                            consistent = False
                            break
                    if not consistent:
                        continue
                for i, slot in bind_positions:
                    env[slot] = values[i]
                for check in checks:
                    if not passes(check):
                        break
                else:
                    join(next_position)
            # Slots are overwritten before their next read (the plan only
            # reads a slot after the step that binds it), so no unbinding.

        with trace_span("datalog.rule") as span:
            if prov is not None:
                join_prov(0)
            else:
                join(0)
            self.stats.rule_evals += 1
            elapsed = time.perf_counter() - started
            self.stats.rule_eval_seconds += elapsed
            key = str(rule)
            self.stats.rule_seconds[key] = (
                self.stats.rule_seconds.get(key, 0.0) + elapsed
            )
            span.set(rule=key, tuples=len(results))
        return results


    # -- incremental maintenance (DRed) ------------------------------------

    def apply_update(
        self,
        strata: List[List[Rule]],
        facts: Dict[str, Set[Tuple[int, ...]]],
        base_add: Dict[str, Set[Tuple[int, ...]]],
        base_del: Dict[str, Set[Tuple[int, ...]]],
        ustats: UpdateStats,
    ) -> None:
        """Propagate a base-fact delta through the strata in order.

        ``changed_add``/``changed_del`` accumulate the *net* change of
        every relation finalized so far (base relations and lower-strata
        heads); a stratum whose rules mention none of the changed
        relations is skipped outright.  Base deltas that target derived
        (head) relations are deferred to that head's stratum, where they
        seed the DRed pass instead of being applied directly.
        """
        head_names = {
            rule.head.relation for stratum in strata for rule in stratum
        }
        changed_add: Dict[str, Set[Tuple[int, ...]]] = {}
        changed_del: Dict[str, Set[Tuple[int, ...]]] = {}
        pending_add: Dict[str, Set[Tuple[int, ...]]] = {}
        pending_del: Dict[str, Set[Tuple[int, ...]]] = {}
        for name, tuples in base_add.items():
            if name in head_names:
                pending_add[name] = set(tuples)
                continue
            relation = self._relations[name]
            actual = {t for t in tuples if relation.insert_new(t)}
            if actual:
                changed_add[name] = actual
                ustats.tuples_inserted += len(actual)
        for name, tuples in base_del.items():
            if name in head_names:
                pending_del[name] = set(tuples)
                continue
            relation = self._relations[name]
            actual = {t for t in tuples if t in relation}
            if actual:
                relation.discard_all(actual)
                changed_del[name] = actual
                ustats.tuples_deleted += len(actual)
        for stratum in strata:
            heads = {rule.head.relation for rule in stratum}
            mentioned = set(heads)
            for rule in stratum:
                for item in rule.body:
                    if isinstance(item, Atom):
                        mentioned.add(item.relation)
            touched = any(
                changed_add.get(name) or changed_del.get(name)
                for name in mentioned
            ) or any(
                pending_add.get(name) or pending_del.get(name)
                for name in heads
            )
            if not touched:
                ustats.strata_skipped += 1
                continue
            self._update_stratum(
                stratum, heads, facts, changed_add, changed_del,
                pending_add, pending_del, ustats,
            )

    def _update_stratum(
        self,
        rules: List[Rule],
        heads: Set[str],
        facts: Dict[str, Set[Tuple[int, ...]]],
        changed_add: Dict[str, Set[Tuple[int, ...]]],
        changed_del: Dict[str, Set[Tuple[int, ...]]],
        pending_add: Dict[str, Set[Tuple[int, ...]]],
        pending_del: Dict[str, Set[Tuple[int, ...]]],
        ustats: UpdateStats,
    ) -> None:
        """DRed for one stratum: overdelete, remove, rederive, insert.

        The overdeletion fixpoint evaluates rule bodies against the *old*
        database — this stratum's head relations are physically untouched
        until the phase ends, and lower relations are viewed through
        ``changed_add``/``changed_del`` (see :meth:`_eval_update`).
        Overdeletion may overapproximate (anything still derivable is
        rederived afterwards), but never underapproximate: a derivation
        invalidated by a lower-stratum deletion is found by pivoting on
        the deleted tuples, and one invalidated by an insertion under a
        negated atom by pivoting on the inserted tuples.
        """
        # ---- Phase 1: overdeletion fixpoint over the old database ----
        overdeleted: Dict[str, Set[Tuple[int, ...]]] = {h: set() for h in heads}
        frontier: Dict[str, Set[Tuple[int, ...]]] = {}

        def mark(head: str, values: Tuple[int, ...]) -> None:
            if values in self._relations[head] and values not in overdeleted[head]:
                overdeleted[head].add(values)
                frontier.setdefault(head, set()).add(values)

        for head, tuples in pending_del.items():
            if head in heads:
                for values in tuples:
                    mark(head, values)
        for rule in rules:
            head = rule.head.relation
            for i, item in enumerate(rule.body):
                if not isinstance(item, Atom):
                    continue
                if not item.negated and item.relation not in heads:
                    deleted = changed_del.get(item.relation)
                    if deleted:
                        for values in self._eval_update(
                            rule, i, deleted, True, changed_add, changed_del
                        ):
                            mark(head, values)
                elif item.negated:
                    added = changed_add.get(item.relation)
                    if added:
                        for values in self._eval_update(
                            rule, i, added, True, changed_add, changed_del
                        ):
                            mark(head, values)
        while frontier:
            if self.meter is not None:
                self.meter.checkpoint("datalog")
            ustats.rounds += 1
            wave, frontier = frontier, {}
            for rule in rules:
                head = rule.head.relation
                for i, item in enumerate(rule.body):
                    if (
                        isinstance(item, Atom)
                        and not item.negated
                        and item.relation in heads
                        and wave.get(item.relation)
                    ):
                        for values in self._eval_update(
                            rule, i, wave[item.relation], True,
                            changed_add, changed_del,
                        ):
                            mark(head, values)
        for head, dset in overdeleted.items():
            if dset:
                self._relations[head].discard_all(dset)
                ustats.tuples_deleted += len(dset)

        # ---- Phase 2+3: rederive survivors, then insert ----
        inserted: Dict[str, Set[Tuple[int, ...]]] = {h: set() for h in heads}
        delta: Dict[str, SetRelation] = {
            h: self._fresh_delta(h, ()) for h in heads
        }

        def put(head: str, values: Tuple[int, ...]) -> None:
            if self._relations[head].insert_new(values):
                inserted[head].add(values)
                delta[head].insert_new(values)
                ustats.tuples_inserted += 1
                if values in overdeleted[head]:
                    ustats.rederived += 1
                if self.meter is not None:
                    self.meter.charge_tuples(1, "datalog")

        for head in heads:
            # Still-asserted base facts rederive unconditionally, and base
            # facts newly asserted into a derived relation seed insertion.
            survivors = overdeleted[head] & facts.get(head, set())
            for values in survivors:
                put(head, values)
            for values in pending_add.get(head, ()):
                put(head, values)
        deletion_heads = {h for h in heads if overdeleted[h]}
        for rule in rules:
            head = rule.head.relation
            if head in deletion_heads:
                # Rederivation needs alternative support from *unchanged*
                # tuples, which no delta pivot would find: evaluate the
                # rule in full against the post-deletion database (this
                # also covers any lower-stratum insertions for it).
                for values in self._eval_rule(rule, None, None):
                    put(head, values)
                continue
            for i, item in enumerate(rule.body):
                if not isinstance(item, Atom):
                    continue
                if not item.negated and item.relation not in heads:
                    added = changed_add.get(item.relation)
                    if added:
                        pivot = self._fresh_delta(item.relation, added)
                        for values in self._eval_rule(rule, i, pivot):
                            put(head, values)
                elif item.negated:
                    deleted = changed_del.get(item.relation)
                    if deleted:
                        absent = {
                            t for t in deleted
                            if t not in self._relations[item.relation]
                        }
                        for values in self._eval_update(
                            rule, i, absent, False, changed_add, changed_del
                        ):
                            put(head, values)
        while any(not rel.is_empty() for rel in delta.values()):
            if self.meter is not None:
                self.meter.checkpoint("datalog")
            ustats.rounds += 1
            new_delta: Dict[str, SetRelation] = {
                h: self._fresh_delta(h, ()) for h in heads
            }
            for rule in rules:
                head = rule.head.relation
                for i, item in enumerate(rule.body):
                    if (
                        isinstance(item, Atom)
                        and not item.negated
                        and item.relation in heads
                        and not delta[item.relation].is_empty()
                    ):
                        for values in self._eval_rule(
                            rule, i, delta[item.relation]
                        ):
                            if self._relations[head].insert_new(values):
                                inserted[head].add(values)
                                new_delta[head].insert_new(values)
                                ustats.tuples_inserted += 1
                                if values in overdeleted[head]:
                                    ustats.rederived += 1
                                if self.meter is not None:
                                    self.meter.charge_tuples(1, "datalog")
            for retired in delta.values():
                self._retire_counters(retired)
            delta = new_delta
        for retired in delta.values():
            self._retire_counters(retired)

        # ---- Net change of this stratum's heads, for later strata ----
        for head in heads:
            relation = self._relations[head]
            net_del = {t for t in overdeleted[head] if t not in relation}
            net_add = {t for t in inserted[head] if t not in overdeleted[head]}
            if net_del:
                changed_del.setdefault(head, set()).update(net_del)
            if net_add:
                changed_add.setdefault(head, set()).update(net_add)

    def _eval_update(
        self,
        rule: Rule,
        pivot: int,
        pivot_tuples: Iterable[Tuple[int, ...]],
        old: bool,
        changed_add: Dict[str, Set[Tuple[int, ...]]],
        changed_del: Dict[str, Set[Tuple[int, ...]]],
    ) -> Set[Tuple[int, ...]]:
        """Instantiate ``rule`` with body position ``pivot`` bound to each
        pivot tuple, against either the old database (``old=True``) or the
        current one.

        The old view of a relation is ``(current - changed_add) |
        changed_del``; relations with no recorded change — including this
        stratum's own heads during overdeletion, whose physical removal is
        deferred — read straight through.  The pivot may be a *negated*
        atom: pivoting on tuples added to (old view) or removed from
        (current view) a negated relation finds exactly the derivations
        that negation invalidated or enabled.  Deltas are small, so this
        interpretive join is not on the hot path; bulk evaluation stays on
        the compiled :meth:`_eval_rule`.
        """
        self.stats.rule_evals += 1
        pivot_item = rule.body[pivot]
        assert isinstance(pivot_item, Atom)
        relations = self._relations

        def old_member(name: str, values: Tuple[int, ...]) -> bool:
            if values in relations[name]._tuples:
                added = changed_add.get(name)
                return not (added and values in added)
            deleted = changed_del.get(name)
            return bool(deleted and values in deleted)

        def member(name: str, values: Tuple[int, ...]) -> bool:
            if old:
                return old_member(name, values)
            return values in relations[name]._tuples

        positive = [
            item
            for i, item in enumerate(rule.body)
            if i != pivot and isinstance(item, Atom) and not item.negated
        ]
        checks = [
            item
            for i, item in enumerate(rule.body)
            if i != pivot
            and (isinstance(item, NotEqual)
                 or (isinstance(item, Atom) and item.negated))
        ]
        results: Set[Tuple[int, ...]] = set()
        env: Dict[Var, int] = {}

        def bind(atom: Atom, values: Tuple[int, ...]) -> Optional[List[Var]]:
            fresh: List[Var] = []
            for term, value in zip(atom.terms, values):
                if isinstance(term, Const):
                    if term.value != value:
                        break
                else:
                    seen = env.get(term)
                    if seen is None:
                        env[term] = value
                        fresh.append(term)
                    elif seen != value:
                        break
            else:
                return fresh
            for var in fresh:
                del env[var]
            return None

        def candidates(atom: Atom) -> Iterable[Tuple[int, ...]]:
            positions: List[int] = []
            key: List[int] = []
            for i, term in enumerate(atom.terms):
                if isinstance(term, Const):
                    positions.append(i)
                    key.append(term.value)
                elif term in env:
                    positions.append(i)
                    key.append(env[term])
            found = relations[atom.relation].lookup(
                tuple(positions), tuple(key)
            )
            if not old:
                return found
            added = changed_add.get(atom.relation)
            deleted = changed_del.get(atom.relation)
            if not added and not deleted:
                return found
            out = [t for t in found if not (added and t in added)]
            if deleted:
                out.extend(
                    t for t in deleted
                    if all(t[p] == k for p, k in zip(positions, key))
                )
            return out

        def emit() -> None:
            for item in checks:
                if isinstance(item, NotEqual):
                    if env[item.left] == env[item.right]:
                        return
                else:
                    values = tuple(
                        term.value if isinstance(term, Const) else env[term]
                        for term in item.terms
                    )
                    if member(item.relation, values):
                        return
            results.add(tuple(
                term.value if isinstance(term, Const) else env[term]
                for term in rule.head.terms
            ))

        def walk(position: int) -> None:
            if position == len(positive):
                emit()
                return
            atom = positive[position]
            for values in list(candidates(atom)):
                fresh = bind(atom, values)
                if fresh is None:
                    continue
                walk(position + 1)
                for var in fresh:
                    del env[var]

        for values in pivot_tuples:
            if pivot_item.negated and member(pivot_item.relation, values):
                continue
            if not pivot_item.negated and not member(
                pivot_item.relation, values
            ):
                continue
            fresh = bind(pivot_item, values)
            if fresh is None:
                continue
            walk(0)
            for var in fresh:
                del env[var]
        return results


class _LegacySetStore(_SetStore):
    """The pre-optimization evaluator, kept as the benchmark baseline.

    Wholesale index invalidation on every insert, per-round deltas as
    plain Python sets scanned linearly, atoms joined in textual order,
    and negation/disequality checked only after the full join.  Selected
    with ``Program(backend="set", engine="legacy")`` so
    ``benchmarks/bench_datalog_joins`` can quantify the incremental
    engine against it; results are identical (property-tested).
    """

    def __init__(self, program: Program) -> None:
        self._relations = {
            name: LegacySetRelation(name, decl.domains)
            for name, decl in program._relations.items()
        }
        self.stats = SolverStats(backend="set", engine="legacy")

    def _run_stratum(self, rules: List[Rule], span) -> None:
        started = time.perf_counter()
        heads = {rule.head.relation for rule in rules}
        stratum = StratumStats(relations=tuple(sorted(heads)))
        span.set(relations=",".join(stratum.relations))
        self.stats.strata.append(stratum)
        delta: Dict[str, Set[Tuple[int, ...]]] = {
            name: set(self._relations[name]) for name in heads
        }
        stratum.rounds = 1
        for rule in rules:
            fresh = self._legacy_eval(rule, delta_atom=None, delta=None)
            head = self._relations[rule.head.relation]
            added = 0
            for values in fresh:
                if head.add(values):
                    delta[rule.head.relation].add(values)
                    added += 1
            self._count_derived(rule, added, stratum)
        while any(delta.values()):
            if self.meter is not None:
                self.meter.checkpoint("datalog")
            stratum.rounds += 1
            new_delta: Dict[str, Set[Tuple[int, ...]]] = {
                name: set() for name in heads
            }
            for rule in rules:
                positions = [
                    i
                    for i, item in enumerate(rule.body)
                    if isinstance(item, Atom)
                    and not item.negated
                    and item.relation in heads
                ]
                for position in positions:
                    atom = rule.body[position]
                    assert isinstance(atom, Atom)
                    if not delta[atom.relation]:
                        continue
                    fresh = self._legacy_eval(
                        rule, delta_atom=position, delta=delta[atom.relation]
                    )
                    head = self._relations[rule.head.relation]
                    added = 0
                    for values in fresh:
                        if head.add(values):
                            new_delta[rule.head.relation].add(values)
                            added += 1
                    self._count_derived(rule, added, stratum)
            delta = new_delta
        self.stats.rounds += stratum.rounds
        stratum.seconds = time.perf_counter() - started
        span.set(rounds=stratum.rounds, derived=stratum.derived)

    def _legacy_eval(
        self,
        rule: Rule,
        delta_atom: Optional[int],
        delta: Optional[Set[Tuple[int, ...]]],
    ) -> List[Tuple[int, ...]]:
        started = time.perf_counter()
        positive = [
            (i, item)
            for i, item in enumerate(rule.body)
            if isinstance(item, Atom) and not item.negated
        ]
        # Join the delta atom first: every derivation must use a new tuple.
        if delta_atom is not None:
            positive.sort(key=lambda pair: pair[0] != delta_atom)
        results: List[Tuple[int, ...]] = []

        def check_tail(bindings: Dict[Var, int]) -> bool:
            for item in rule.body:
                if isinstance(item, NotEqual):
                    if bindings[item.left] == bindings[item.right]:
                        return False
                elif item.negated:
                    values = tuple(
                        term.value if isinstance(term, Const) else bindings[term]
                        for term in item.terms
                    )
                    if values in self._relations[item.relation]:
                        return False
            return True

        def join(position: int, bindings: Dict[Var, int]) -> None:
            if position == len(positive):
                if check_tail(bindings):
                    results.append(
                        tuple(
                            term.value
                            if isinstance(term, Const)
                            else bindings[term]
                            for term in rule.head.terms
                        )
                    )
                return
            body_index, atom = positive[position]
            bound_positions: List[int] = []
            key: List[int] = []
            for i, term in enumerate(atom.terms):
                if isinstance(term, Const):
                    bound_positions.append(i)
                    key.append(term.value)
                elif term in bindings:
                    bound_positions.append(i)
                    key.append(bindings[term])
            if body_index == delta_atom and delta is not None:
                candidates = [
                    values
                    for values in delta
                    if all(
                        values[p] == k for p, k in zip(bound_positions, key)
                    )
                ]
            else:
                candidates = self._relations[atom.relation].lookup(
                    tuple(bound_positions), tuple(key)
                )
            for values in candidates:
                extended = dict(bindings)
                consistent = True
                for i, term in enumerate(atom.terms):
                    if isinstance(term, Const):
                        continue
                    if term in extended and extended[term] != values[i]:
                        consistent = False
                        break
                    extended[term] = values[i]
                if consistent:
                    join(position + 1, extended)

        join(0, {})
        self.stats.rule_evals += 1
        elapsed = time.perf_counter() - started
        self.stats.rule_eval_seconds += elapsed
        return results


class _BddStore(_Store):
    """Semi-naive evaluation over BDD relations (the bddbddb path)."""

    def __init__(self, program: Program) -> None:
        self.bdd = BDD()
        self.space = DomainSpace(self.bdd, ordering=program.ordering)
        instance_need: Dict[str, int] = {name: 1 for name in program._domains}
        for decl in program._relations.values():
            for domain in set(decl.domains):
                count = decl.domains.count(domain)
                instance_need[domain] = max(instance_need[domain], count)
        for rule in program._rules:
            per_type: Dict[str, Set[Var]] = {}
            for atom in itertools.chain([rule.head], rule.body):
                if isinstance(atom, NotEqual):
                    continue
                decl = program._relations[atom.relation]
                for term, domain in zip(atom.terms, decl.domains):
                    if isinstance(term, Var):
                        per_type.setdefault(domain, set()).add(term)
            for domain, variables in per_type.items():
                instance_need[domain] = max(
                    instance_need[domain], len(variables)
                )
        for name, size in program._domains.items():
            self.space.declare(name, size, instances=instance_need[name])
        self._relations: Dict[str, BddRelation] = {}
        for name, decl in program._relations.items():
            counters: Dict[str, int] = {}
            instances = []
            for domain in decl.domains:
                index = counters.get(domain, 0)
                counters[domain] = index + 1
                instances.append(self.space.instance(domain, index))
            self._relations[name] = BddRelation(
                name, decl.domains, self.space, instances
            )
        self._program = program
        self.stats = SolverStats(backend="bdd")

    def relation(self, name: str) -> BddRelation:
        return self._relations[name]

    def finalize_stats(self) -> None:
        total = sum(len(relation) for relation in self._relations.values())
        self.stats.tuples_derived = total - self.stats.facts_loaded
        self.stats.bdd_cache_lookups = self.bdd.op_lookups
        self.stats.bdd_cache_hits = self.bdd.op_hits

    # -- rule evaluation ---------------------------------------------------

    def _variable_instances(self, rule: Rule) -> Dict[Var, DomainInstance]:
        assignment: Dict[Var, DomainInstance] = {}
        counters: Dict[str, int] = {}
        for atom in itertools.chain(rule.body, [rule.head]):
            if isinstance(atom, NotEqual):
                continue
            decl = self._program._relations[atom.relation]
            for term, domain in zip(atom.terms, decl.domains):
                if isinstance(term, Var) and term not in assignment:
                    index = counters.get(domain, 0)
                    counters[domain] = index + 1
                    assignment[term] = self.space.instance(domain, index)
        return assignment

    def _atom_node(
        self,
        atom: Atom,
        variables: Dict[Var, DomainInstance],
        override_node: Optional[int] = None,
    ) -> int:
        """Relation node moved into the rule's variable space."""
        relation = self._relations[atom.relation]
        node = relation.node if override_node is None else override_node
        bdd = self.bdd
        project: List[DomainInstance] = []
        first_position: Dict[Var, DomainInstance] = {}
        sources: List[DomainInstance] = []
        targets: List[DomainInstance] = []
        for instance, term in zip(relation.instances, atom.terms):
            if isinstance(term, Const):
                node = bdd.apply_and(
                    node, self.space.encode(instance, term.value)
                )
                project.append(instance)
            elif term in first_position:
                node = bdd.apply_and(
                    node, self.space.equality(first_position[term], instance)
                )
                project.append(instance)
            else:
                first_position[term] = instance
                sources.append(instance)
                targets.append(variables[term])
        if project:
            node = bdd.exist(node, self.space.levels_of(project))
        mapping = {
            level_src: level_dst
            for src, dst in zip(sources, targets)
            for level_src, level_dst in zip(src.levels, dst.levels)
        }
        return bdd.rename(node, mapping)

    def _eval_rule(
        self,
        rule: Rule,
        delta_atom: Optional[int] = None,
        delta_node: Optional[int] = None,
    ) -> int:
        """Evaluate one rule body; returns a node on the head's instances."""
        started = time.perf_counter()
        with trace_span("datalog.rule") as span:
            try:
                return self._eval_rule_inner(rule, delta_atom, delta_node)
            finally:
                elapsed = time.perf_counter() - started
                self.stats.rule_evals += 1
                self.stats.rule_eval_seconds += elapsed
                key = str(rule)
                self.stats.rule_seconds[key] = (
                    self.stats.rule_seconds.get(key, 0.0) + elapsed
                )
                span.set(rule=key)

    def _eval_rule_inner(
        self,
        rule: Rule,
        delta_atom: Optional[int] = None,
        delta_node: Optional[int] = None,
    ) -> int:
        bdd = self.bdd
        variables = self._variable_instances(rule)
        node = bdd.TRUE
        for i, item in enumerate(rule.body):
            if isinstance(item, NotEqual) or item.negated:
                continue
            override = delta_node if i == delta_atom else None
            node = bdd.apply_and(
                node, self._atom_node(item, variables, override)
            )
            if node == bdd.FALSE:
                return bdd.FALSE
        for item in rule.body:
            if isinstance(item, NotEqual):
                eq = self.space.equality(
                    variables[item.left], variables[item.right]
                )
                node = bdd.apply_diff(node, eq)
            elif isinstance(item, Atom) and item.negated:
                node = bdd.apply_diff(
                    node, self._atom_node(item, variables)
                )
            if node == bdd.FALSE:
                return bdd.FALSE
        head_vars = set(rule.head.variables)
        dead = [
            instance
            for var, instance in variables.items()
            if var not in head_vars
        ]
        if dead:
            node = bdd.exist(node, self.space.levels_of(dead))
        # Move variables onto the head relation's canonical instances.
        head_relation = self._relations[rule.head.relation]
        mapping: Dict[int, int] = {}
        seen: Dict[Var, DomainInstance] = {}
        equalities: List[int] = []
        consts: List[int] = []
        for instance, term in zip(head_relation.instances, rule.head.terms):
            if isinstance(term, Const):
                consts.append(self.space.encode(instance, term.value))
            elif term in seen:
                equalities.append(self.space.equality(seen[term], instance))
            else:
                seen[term] = instance
                src = variables[term]
                for level_src, level_dst in zip(src.levels, instance.levels):
                    mapping[level_src] = level_dst
        node = bdd.rename(node, mapping)
        for extra in itertools.chain(consts, equalities):
            node = bdd.apply_and(node, extra)
        return node

    def run_stratum(self, rules: List[Rule]) -> None:
        with trace_span("datalog.stratum") as span:
            self._run_stratum(rules, span)

    def _run_stratum(self, rules: List[Rule], span) -> None:
        started = time.perf_counter()
        bdd = self.bdd
        heads = {rule.head.relation for rule in rules}
        stratum = StratumStats(relations=tuple(sorted(heads)))
        span.set(relations=",".join(stratum.relations))
        self.stats.strata.append(stratum)
        sizes_before = sum(len(self._relations[name]) for name in heads)
        delta: Dict[str, int] = {
            name: self._relations[name].node for name in heads
        }
        stratum.rounds = 1
        for rule in rules:
            head = self._relations[rule.head.relation]
            fresh = self._eval_rule(rule)
            new = bdd.apply_diff(fresh, head.node)
            if new != bdd.FALSE:
                head.union_node(new)
                delta[rule.head.relation] = bdd.apply_or(
                    delta[rule.head.relation], new
                )
        while any(node != bdd.FALSE for node in delta.values()):
            if self.meter is not None:
                self.meter.checkpoint("datalog")
            stratum.rounds += 1
            new_delta: Dict[str, int] = {name: bdd.FALSE for name in heads}
            for rule in rules:
                head = self._relations[rule.head.relation]
                for i, item in enumerate(rule.body):
                    if (
                        not isinstance(item, Atom)
                        or item.negated
                        or item.relation not in heads
                    ):
                        continue
                    delta_node = delta[item.relation]
                    if delta_node == bdd.FALSE:
                        continue
                    fresh = self._eval_rule(
                        rule, delta_atom=i, delta_node=delta_node
                    )
                    new = bdd.apply_diff(fresh, head.node)
                    if new != bdd.FALSE:
                        head.union_node(new)
                        new_delta[rule.head.relation] = bdd.apply_or(
                            new_delta[rule.head.relation], new
                        )
            delta = new_delta
        stratum.derived = (
            sum(len(self._relations[name]) for name in heads) - sizes_before
        )
        if self.meter is not None and stratum.derived > 0:
            # BDD relations don't expose per-rule tuple deltas cheaply;
            # charge the stratum's net growth in one step.
            self.meter.charge_tuples(stratum.derived, "datalog")
        self.stats.rounds += stratum.rounds
        stratum.seconds = time.perf_counter() - started
        span.set(rounds=stratum.rounds, derived=stratum.derived)
