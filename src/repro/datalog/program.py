"""A bddbddb-style Datalog solver with set and BDD backends.

A :class:`Program` is declarative: declare finite domains, relation
signatures, rules (text or :class:`~repro.datalog.rules.Rule`), and input
facts, then call :meth:`Program.solve`.  Evaluation is stratified
semi-naive fixpoint computation.  The ``backend`` argument picks tuple
storage: ``"set"`` (explicit, fast in CPython) or ``"bdd"``
(BuDDy/bddbddb-style; used by RegionWiz's context-sensitive relations and
by the variable-order ablation).

Both backends produce identical relations -- a property test holds them to
that.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bdd import BDD, DomainInstance, DomainSpace
from repro.datalog.relation import (
    BddRelation,
    Relation,
    RelationError,
    SetRelation,
)
from repro.datalog.rules import (
    Atom,
    Const,
    DatalogSyntaxError,
    NotEqual,
    Rule,
    Var,
    parse_rules,
)
from repro.util.graph import strongly_connected_components

__all__ = ["Program", "Solution", "DatalogError"]


class DatalogError(Exception):
    """Semantic errors: unknown relations, domain mismatches, bad strata."""


@dataclass
class _RelationDecl:
    name: str
    domains: Tuple[str, ...]
    is_input: bool = True  # flipped off once it appears in a rule head


class Program:
    """Declarative Datalog program over finite domains."""

    def __init__(
        self, backend: str = "set", ordering: str = "interleaved"
    ) -> None:
        if backend not in ("set", "bdd"):
            raise DatalogError(f"unknown backend {backend!r}")
        self.backend = backend
        self.ordering = ordering
        self._domains: Dict[str, int] = {}
        self._relations: Dict[str, _RelationDecl] = {}
        self._rules: List[Rule] = []
        self._facts: Dict[str, Set[Tuple[int, ...]]] = {}

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def domain(self, name: str, size: int) -> None:
        """Declare a finite domain with values ``0..size-1``."""
        if name in self._domains:
            raise DatalogError(f"domain {name!r} already declared")
        if size < 1:
            raise DatalogError(f"domain {name!r} must be non-empty")
        self._domains[name] = size

    def relation(self, name: str, domains: Sequence[str]) -> None:
        """Declare a relation signature, e.g. ``("call", ["I", "F"])``."""
        if name in self._relations:
            raise DatalogError(f"relation {name!r} already declared")
        for domain in domains:
            if domain not in self._domains:
                raise DatalogError(
                    f"relation {name!r} uses undeclared domain {domain!r}"
                )
        self._relations[name] = _RelationDecl(name, tuple(domains))
        self._facts[name] = set()

    def rules(self, text: str) -> None:
        """Add rules from concrete syntax (see :mod:`repro.datalog.rules`)."""
        for rule in parse_rules(text):
            self.rule(rule)

    def rule(self, rule: Rule) -> None:
        self._check_rule(rule)
        if rule.is_fact:
            values = tuple(
                term.value  # type: ignore[union-attr]
                for term in rule.head.terms
            )
            self.fact(rule.head.relation, *values)
            return
        self._relations[rule.head.relation].is_input = False
        self._rules.append(rule)

    def fact(self, name: str, *values: int) -> None:
        """Assert an input tuple."""
        decl = self._decl(name)
        if len(values) != len(decl.domains):
            raise DatalogError(
                f"fact {name}{values} has arity {len(values)},"
                f" expected {len(decl.domains)}"
            )
        for value, domain in zip(values, decl.domains):
            if not 0 <= value < self._domains[domain]:
                raise DatalogError(
                    f"fact {name}{values}: {value} out of range for"
                    f" domain {domain} (size {self._domains[domain]})"
                )
        self._facts[name].add(tuple(values))

    def _decl(self, name: str) -> _RelationDecl:
        decl = self._relations.get(name)
        if decl is None:
            raise DatalogError(f"unknown relation {name!r}")
        return decl

    # ------------------------------------------------------------------
    # Static checks
    # ------------------------------------------------------------------

    def _check_rule(self, rule: Rule) -> None:
        var_domains: Dict[Var, str] = {}
        for atom in itertools.chain([rule.head], rule.body):
            if isinstance(atom, NotEqual):
                continue
            decl = self._decl(atom.relation)
            if len(atom.terms) != len(decl.domains):
                raise DatalogError(
                    f"atom {atom} has arity {len(atom.terms)},"
                    f" {atom.relation} expects {len(decl.domains)}"
                )
            for term, domain in zip(atom.terms, decl.domains):
                if isinstance(term, Const):
                    if not 0 <= term.value < self._domains[domain]:
                        raise DatalogError(
                            f"constant {term.value} out of range for domain"
                            f" {domain} in {atom}"
                        )
                else:
                    bound = var_domains.setdefault(term, domain)
                    if bound != domain:
                        raise DatalogError(
                            f"variable {term} used at domains {bound} and"
                            f" {domain} in rule {rule}"
                        )
        for constraint in rule.constraints():
            left = var_domains.get(constraint.left)
            right = var_domains.get(constraint.right)
            if left is None or right is None or left != right:
                raise DatalogError(
                    f"disequality {constraint} over mismatched or unknown"
                    f" domains in rule {rule}"
                )

    def _stratify(self) -> List[List[Rule]]:
        """Group rules into strata; reject negation inside a cycle."""
        depends: Dict[str, Set[str]] = {name: set() for name in self._relations}
        negative_edges: Set[Tuple[str, str]] = set()
        for rule in self._rules:
            head = rule.head.relation
            for item in rule.body:
                if isinstance(item, NotEqual):
                    continue
                depends[head].add(item.relation)
                if item.negated:
                    negative_edges.add((head, item.relation))
        components = strongly_connected_components(depends)
        component_of: Dict[str, int] = {}
        for i, component in enumerate(components):
            for name in component:
                component_of[name] = i
        for head, body_rel in negative_edges:
            if component_of[head] == component_of[body_rel]:
                raise DatalogError(
                    f"program is not stratified: {head} negates {body_rel}"
                    f" inside a recursive component"
                )
        # Tarjan emits dependencies first, so assigning rules to the
        # component of their head and walking components in order is a
        # valid stratified schedule.
        strata: List[List[Rule]] = [[] for _ in components]
        for rule in self._rules:
            strata[component_of[rule.head.relation]].append(rule)
        return [stratum for stratum in strata if stratum]

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def solve(self) -> "Solution":
        """Evaluate to fixpoint and return the resulting relation store."""
        strata = self._stratify()
        if self.backend == "set":
            store = _SetStore(self)
        else:
            store = _BddStore(self)
        for name, facts in self._facts.items():
            store.load_facts(name, facts)
        for stratum in strata:
            store.run_stratum(stratum)
        return Solution(self, store)


class Solution:
    """Queryable result of :meth:`Program.solve`."""

    def __init__(self, program: Program, store: "_Store") -> None:
        self._program = program
        self._store = store

    def relation(self, name: str) -> Relation:
        return self._store.relation(name)

    def tuples(self, name: str) -> Set[Tuple[int, ...]]:
        return set(self._store.relation(name))

    def count(self, name: str) -> int:
        return len(self._store.relation(name))

    def __contains__(self, query: Tuple[str, Tuple[int, ...]]) -> bool:
        name, values = query
        return tuple(values) in self._store.relation(name)

    @property
    def bdd(self) -> Optional[BDD]:
        """The underlying BDD manager (None for the set backend)."""
        return getattr(self._store, "bdd", None)

    def bdd_node_count(self, name: str) -> int:
        """Nodes in a relation's BDD (0 for the set backend)."""
        relation = self._store.relation(name)
        if isinstance(relation, BddRelation):
            return relation.bdd.node_count(relation.node)
        return 0


# ---------------------------------------------------------------------------
# Stores
# ---------------------------------------------------------------------------


class _Store:
    def relation(self, name: str) -> Relation:
        raise NotImplementedError

    def load_facts(self, name: str, facts: Iterable[Tuple[int, ...]]) -> None:
        self.relation(name).add_all(facts)

    def run_stratum(self, rules: List[Rule]) -> None:
        raise NotImplementedError


class _SetStore(_Store):
    """Semi-naive evaluation over explicit tuple sets."""

    def __init__(self, program: Program) -> None:
        self._relations: Dict[str, SetRelation] = {
            name: SetRelation(name, decl.domains)
            for name, decl in program._relations.items()
        }

    def relation(self, name: str) -> SetRelation:
        return self._relations[name]

    def run_stratum(self, rules: List[Rule]) -> None:
        heads = {rule.head.relation for rule in rules}
        # Delta = everything currently in the stratum's head relations
        # (facts and contributions from earlier strata).
        delta: Dict[str, Set[Tuple[int, ...]]] = {
            name: set(self._relations[name]) for name in heads
        }
        # First round must also run rules whose body has no atom in this
        # stratum (e.g. copies from lower strata).
        for rule in rules:
            fresh = self._eval_rule(rule, delta_atom=None, delta=None)
            head = self._relations[rule.head.relation]
            for values in fresh:
                if head.add(values):
                    delta[rule.head.relation].add(values)
        while any(delta.values()):
            new_delta: Dict[str, Set[Tuple[int, ...]]] = {
                name: set() for name in heads
            }
            for rule in rules:
                positions = [
                    i
                    for i, item in enumerate(rule.body)
                    if isinstance(item, Atom)
                    and not item.negated
                    and item.relation in heads
                ]
                for position in positions:
                    atom = rule.body[position]
                    assert isinstance(atom, Atom)
                    if not delta[atom.relation]:
                        continue
                    fresh = self._eval_rule(
                        rule, delta_atom=position, delta=delta[atom.relation]
                    )
                    head = self._relations[rule.head.relation]
                    for values in fresh:
                        if head.add(values):
                            new_delta[rule.head.relation].add(values)
            delta = new_delta

    def _eval_rule(
        self,
        rule: Rule,
        delta_atom: Optional[int],
        delta: Optional[Set[Tuple[int, ...]]],
    ) -> List[Tuple[int, ...]]:
        positive = [
            (i, item)
            for i, item in enumerate(rule.body)
            if isinstance(item, Atom) and not item.negated
        ]
        # Join the delta atom first: every derivation must use a new tuple.
        if delta_atom is not None:
            positive.sort(key=lambda pair: pair[0] != delta_atom)
        results: List[Tuple[int, ...]] = []

        def check_tail(bindings: Dict[Var, int]) -> bool:
            for item in rule.body:
                if isinstance(item, NotEqual):
                    if bindings[item.left] == bindings[item.right]:
                        return False
                elif item.negated:
                    values = tuple(
                        term.value if isinstance(term, Const) else bindings[term]
                        for term in item.terms
                    )
                    if values in self._relations[item.relation]:
                        return False
            return True

        def join(position: int, bindings: Dict[Var, int]) -> None:
            if position == len(positive):
                if check_tail(bindings):
                    results.append(
                        tuple(
                            term.value
                            if isinstance(term, Const)
                            else bindings[term]
                            for term in rule.head.terms
                        )
                    )
                return
            body_index, atom = positive[position]
            bound_positions: List[int] = []
            key: List[int] = []
            for i, term in enumerate(atom.terms):
                if isinstance(term, Const):
                    bound_positions.append(i)
                    key.append(term.value)
                elif term in bindings:
                    bound_positions.append(i)
                    key.append(bindings[term])
            if body_index == delta_atom and delta is not None:
                candidates = [
                    values
                    for values in delta
                    if all(
                        values[p] == k for p, k in zip(bound_positions, key)
                    )
                ]
            else:
                candidates = self._relations[atom.relation].lookup(
                    tuple(bound_positions), tuple(key)
                )
            for values in candidates:
                extended = dict(bindings)
                consistent = True
                for i, term in enumerate(atom.terms):
                    if isinstance(term, Const):
                        continue
                    if term in extended and extended[term] != values[i]:
                        consistent = False
                        break
                    extended[term] = values[i]
                if consistent:
                    join(position + 1, extended)

        join(0, {})
        return results


class _BddStore(_Store):
    """Semi-naive evaluation over BDD relations (the bddbddb path)."""

    def __init__(self, program: Program) -> None:
        self.bdd = BDD()
        self.space = DomainSpace(self.bdd, ordering=program.ordering)
        instance_need: Dict[str, int] = {name: 1 for name in program._domains}
        for decl in program._relations.values():
            for domain in set(decl.domains):
                count = decl.domains.count(domain)
                instance_need[domain] = max(instance_need[domain], count)
        for rule in program._rules:
            per_type: Dict[str, Set[Var]] = {}
            for atom in itertools.chain([rule.head], rule.body):
                if isinstance(atom, NotEqual):
                    continue
                decl = program._relations[atom.relation]
                for term, domain in zip(atom.terms, decl.domains):
                    if isinstance(term, Var):
                        per_type.setdefault(domain, set()).add(term)
            for domain, variables in per_type.items():
                instance_need[domain] = max(
                    instance_need[domain], len(variables)
                )
        for name, size in program._domains.items():
            self.space.declare(name, size, instances=instance_need[name])
        self._relations: Dict[str, BddRelation] = {}
        for name, decl in program._relations.items():
            counters: Dict[str, int] = {}
            instances = []
            for domain in decl.domains:
                index = counters.get(domain, 0)
                counters[domain] = index + 1
                instances.append(self.space.instance(domain, index))
            self._relations[name] = BddRelation(
                name, decl.domains, self.space, instances
            )
        self._program = program

    def relation(self, name: str) -> BddRelation:
        return self._relations[name]

    # -- rule evaluation ---------------------------------------------------

    def _variable_instances(self, rule: Rule) -> Dict[Var, DomainInstance]:
        assignment: Dict[Var, DomainInstance] = {}
        counters: Dict[str, int] = {}
        for atom in itertools.chain(rule.body, [rule.head]):
            if isinstance(atom, NotEqual):
                continue
            decl = self._program._relations[atom.relation]
            for term, domain in zip(atom.terms, decl.domains):
                if isinstance(term, Var) and term not in assignment:
                    index = counters.get(domain, 0)
                    counters[domain] = index + 1
                    assignment[term] = self.space.instance(domain, index)
        return assignment

    def _atom_node(
        self,
        atom: Atom,
        variables: Dict[Var, DomainInstance],
        override_node: Optional[int] = None,
    ) -> int:
        """Relation node moved into the rule's variable space."""
        relation = self._relations[atom.relation]
        node = relation.node if override_node is None else override_node
        bdd = self.bdd
        project: List[DomainInstance] = []
        first_position: Dict[Var, DomainInstance] = {}
        sources: List[DomainInstance] = []
        targets: List[DomainInstance] = []
        for instance, term in zip(relation.instances, atom.terms):
            if isinstance(term, Const):
                node = bdd.apply_and(
                    node, self.space.encode(instance, term.value)
                )
                project.append(instance)
            elif term in first_position:
                node = bdd.apply_and(
                    node, self.space.equality(first_position[term], instance)
                )
                project.append(instance)
            else:
                first_position[term] = instance
                sources.append(instance)
                targets.append(variables[term])
        if project:
            node = bdd.exist(node, self.space.levels_of(project))
        mapping = {
            level_src: level_dst
            for src, dst in zip(sources, targets)
            for level_src, level_dst in zip(src.levels, dst.levels)
        }
        return bdd.rename(node, mapping)

    def _eval_rule(
        self,
        rule: Rule,
        delta_atom: Optional[int] = None,
        delta_node: Optional[int] = None,
    ) -> int:
        """Evaluate one rule body; returns a node on the head's instances."""
        bdd = self.bdd
        variables = self._variable_instances(rule)
        node = bdd.TRUE
        for i, item in enumerate(rule.body):
            if isinstance(item, NotEqual) or item.negated:
                continue
            override = delta_node if i == delta_atom else None
            node = bdd.apply_and(
                node, self._atom_node(item, variables, override)
            )
            if node == bdd.FALSE:
                return bdd.FALSE
        for item in rule.body:
            if isinstance(item, NotEqual):
                eq = self.space.equality(
                    variables[item.left], variables[item.right]
                )
                node = bdd.apply_diff(node, eq)
            elif isinstance(item, Atom) and item.negated:
                node = bdd.apply_diff(
                    node, self._atom_node(item, variables)
                )
            if node == bdd.FALSE:
                return bdd.FALSE
        head_vars = set(rule.head.variables)
        dead = [
            instance
            for var, instance in variables.items()
            if var not in head_vars
        ]
        if dead:
            node = bdd.exist(node, self.space.levels_of(dead))
        # Move variables onto the head relation's canonical instances.
        head_relation = self._relations[rule.head.relation]
        mapping: Dict[int, int] = {}
        seen: Dict[Var, DomainInstance] = {}
        equalities: List[int] = []
        consts: List[int] = []
        for instance, term in zip(head_relation.instances, rule.head.terms):
            if isinstance(term, Const):
                consts.append(self.space.encode(instance, term.value))
            elif term in seen:
                equalities.append(self.space.equality(seen[term], instance))
            else:
                seen[term] = instance
                src = variables[term]
                for level_src, level_dst in zip(src.levels, instance.levels):
                    mapping[level_src] = level_dst
        node = bdd.rename(node, mapping)
        for extra in itertools.chain(consts, equalities):
            node = bdd.apply_and(node, extra)
        return node

    def run_stratum(self, rules: List[Rule]) -> None:
        bdd = self.bdd
        heads = {rule.head.relation for rule in rules}
        delta: Dict[str, int] = {
            name: self._relations[name].node for name in heads
        }
        for rule in rules:
            head = self._relations[rule.head.relation]
            fresh = self._eval_rule(rule)
            new = bdd.apply_diff(fresh, head.node)
            if new != bdd.FALSE:
                head.union_node(new)
                delta[rule.head.relation] = bdd.apply_or(
                    delta[rule.head.relation], new
                )
        while any(node != bdd.FALSE for node in delta.values()):
            new_delta: Dict[str, int] = {name: bdd.FALSE for name in heads}
            for rule in rules:
                head = self._relations[rule.head.relation]
                for i, item in enumerate(rule.body):
                    if (
                        not isinstance(item, Atom)
                        or item.negated
                        or item.relation not in heads
                    ):
                        continue
                    delta_node = delta[item.relation]
                    if delta_node == bdd.FALSE:
                        continue
                    fresh = self._eval_rule(
                        rule, delta_atom=i, delta_node=delta_node
                    )
                    new = bdd.apply_diff(fresh, head.node)
                    if new != bdd.FALSE:
                        head.union_node(new)
                        new_delta[rule.head.relation] = bdd.apply_or(
                            new_delta[rule.head.relation], new
                        )
            delta = new_delta
