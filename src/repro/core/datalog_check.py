"""The inconsistency computation as Datalog (Section 5.3.2, eq. 4.12).

RegionWiz's core query -- region pairs with no partial order, mapped
through reflexive ownership, filtered by the access relation -- is a
four-rule Datalog program.  This module runs exactly that program on the
:mod:`repro.datalog` solver over the pointer-analysis effects and the
canonicalized hierarchy; a test cross-checks its ``objectPair`` output
against :func:`repro.core.consistency.check_consistency` on the whole
figure corpus, tying the executable formalism to the production checker.

Two access paths share the encoding:

* :func:`build_consistency_program` -- the full eq. 4.12 closure.  Fact
  extraction is split out (:func:`extract_consistency_facts`) so the
  incremental analysis session can diff encoded fact sets across runs and
  feed the delta to ``Solution.update`` instead of re-solving.
* :func:`build_demand_program` -- a magic-sets-style demand
  transformation for single-warning questions (``--explain``,
  ``--query``): the subregion order and ownership cover are explored only
  from the objects of the *queried* accesses, so answering one question
  never materializes the full ``le``/``regionPair`` closure.  The
  transformed program keeps the original relation names, which keeps
  provenance chains rendered from it faithful to the paper's argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.hierarchy import RegionHierarchy, build_hierarchy
from repro.datalog import Program, SolverStats
from repro.pointer import AbstractObject, PointerAnalysisResult
from repro.util.budget import BudgetMeter

__all__ = [
    "ALL_RELATIONS",
    "ConsistencyFacts",
    "ConsistencyProgram",
    "accesses_at_location",
    "build_consistency_program",
    "build_demand_program",
    "datalog_object_pairs",
    "extract_consistency_facts",
    "make_consistency_program",
    "solve_demand_pairs",
    "solve_object_pairs",
]

RULES = """
# Reflexive transitive closure of the canonical subregion tree.
le(x, x) :- region(x).
le(x, y) :- parent(x, y).
le(x, z) :- le(x, y), parent(y, z).

# Region pairs with no partial order (the complement, eq. 4.13's domain).
regionPair(x, y) :- region(x), region(y), !le(x, y).

# Reflexive extension of ownership: f= covers the region itself.
ownEq(r, o) :- own(r, o).
ownEq(r, r) :- region(r).

# objectPair (eq. 4.12): an access between objects owned by unordered
# regions.
objectPair(o1, n, o2) :-
    access(o1, n, o2), ownEq(x, o1), ownEq(y, o2), regionPair(x, y).
"""

# The demand transformation of the same query.  ``access`` holds only the
# *queried* triples; ``demandObj``/``demandRegion`` are the magic
# predicates restricting every downstream rule to what those triples can
# reach.  Restricted to the queried accesses, each relation below equals
# its full-program counterpart (DESIGN.md §14 gives the argument), so
# decoders and provenance renderers need no demand-specific cases.
DEMAND_RULES = """
# Magic predicate: objects that appear in a queried access.
demandObj(o1) :- access(o1, n, o2).
demandObj(o2) :- access(o1, n, o2).

# Reflexive ownership, restricted to demanded objects.
ownEq(r, o) :- own(r, o), demandObj(o).
ownEq(o, o) :- region(o), demandObj(o).

# Owner regions of demanded objects: the only sources the subregion
# order is explored from.
demandRegion(x) :- ownEq(x, o), region(x).
le(x, x) :- demandRegion(x).
le(x, z) :- le(x, y), parent(y, z).

# Unordered pairs among demanded owner regions only.
regionPair(x, y) :- demandRegion(x), demandRegion(y), !le(x, y).

# eq. 4.12 over the queried accesses.
objectPair(o1, n, o2) :-
    access(o1, n, o2), ownEq(x, o1), ownEq(y, o2), regionPair(x, y).
"""

#: Input relations (fact-bearing) shared by both programs.
INPUT_RELATIONS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("region", ("O",)),
    ("parent", ("O", "O")),
    ("own", ("O", "O")),
    ("access", ("O", "N", "O")),
)

_DERIVED_RELATIONS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("le", ("O", "O")),
    ("regionPair", ("O", "O")),
    ("ownEq", ("O", "O")),
    ("objectPair", ("O", "N", "O")),
)

_DEMAND_RELATIONS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("demandObj", ("O",)),
    ("demandRegion", ("O",)),
) + _DERIVED_RELATIONS

#: Every relation of the full (non-demand) program with its domain
#: signature, in declaration order -- the incremental state store uses it
#: to translate persisted snapshots between entity tables.
ALL_RELATIONS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    INPUT_RELATIONS + _DERIVED_RELATIONS
)


def datalog_object_pairs(
    analysis: PointerAnalysisResult,
    hierarchy: Optional[RegionHierarchy] = None,
    backend: str = "set",
) -> Set[Tuple[AbstractObject, Optional[int], AbstractObject]]:
    """Solve eq. 4.12 as Datalog; returns {(source, offset, target)}."""
    pairs, _ = solve_object_pairs(analysis, hierarchy, backend)
    return pairs


@dataclass
class ConsistencyFacts:
    """The eq. 4.12 input facts, dense-encoded, plus the decoding maps.

    ``facts`` maps each input relation name to its encoded tuple set;
    the incremental session diffs two of these (after translating between
    entity tables) to obtain the retract/assert delta of an edit.
    """

    hierarchy: RegionHierarchy
    entities: List[AbstractObject]
    offsets: List[Optional[int]]
    entity_index: Dict[AbstractObject, int]
    offset_index: Dict[Optional[int], int]
    facts: Dict[str, Set[Tuple[int, ...]]]


@dataclass
class ConsistencyProgram:
    """The eq. 4.12 Datalog program plus its dense-index decoding maps."""

    program: Program
    entities: List[AbstractObject]
    offsets: List[Optional[int]]
    entity_index: Dict[AbstractObject, int]
    offset_index: Dict[Optional[int], int]

    def object_pair_key(
        self,
        source: AbstractObject,
        offset: Optional[int],
        target: AbstractObject,
    ) -> Tuple[int, int, int]:
        """Encode an object pair as an ``objectPair`` tuple."""
        return (
            self.entity_index[source],
            self.offset_index[offset],
            self.entity_index[target],
        )

    def decode_pairs(
        self, tuples: Iterable[Tuple[int, int, int]]
    ) -> Set[Tuple[AbstractObject, Optional[int], AbstractObject]]:
        """Decode ``objectPair`` tuples back to object triples."""
        return {
            (self.entities[source], self.offsets[offset],
             self.entities[target])
            for source, offset, target in tuples
        }


def extract_consistency_facts(
    analysis: PointerAnalysisResult,
    hierarchy: Optional[RegionHierarchy] = None,
) -> ConsistencyFacts:
    """Encode the analysis effects as eq. 4.12 input-fact tuples.

    The entity/offset orderings are deterministic (sorted), so two
    extractions of the same analysis produce identical encodings — the
    property the incremental fact diff depends on.
    """
    if hierarchy is None:
        hierarchy = build_hierarchy(analysis.regions, analysis.subregion)

    # Dense index for regions+objects (one shared object domain keeps the
    # ownEq/access joins single-domain) and for offsets.
    entities: List[AbstractObject] = sorted(
        set(hierarchy.regions) | set(analysis.objects), key=str
    )
    entity_index: Dict[AbstractObject, int] = {
        obj: i for i, obj in enumerate(entities)
    }
    offsets: List[Optional[int]] = sorted(
        {offset for _, offset, _ in analysis.accesses},
        key=lambda value: (value is None, value),
    )
    offset_index = {offset: i for i, offset in enumerate(offsets)}

    facts: Dict[str, Set[Tuple[int, ...]]] = {
        name: set() for name, _ in INPUT_RELATIONS
    }
    for region in hierarchy.regions:
        facts["region"].add((entity_index[region],))
        parent = hierarchy.parent.get(region)
        if parent is not None:
            facts["parent"].add(
                (entity_index[region], entity_index[parent])
            )
    for region, obj in analysis.ownership:
        if region in entity_index and obj in entity_index:
            facts["own"].add((entity_index[region], entity_index[obj]))
    for source, offset, target in analysis.accesses:
        if source in entity_index and target in entity_index:
            facts["access"].add(
                (
                    entity_index[source],
                    offset_index[offset],
                    entity_index[target],
                )
            )

    return ConsistencyFacts(
        hierarchy=hierarchy,
        entities=entities,
        offsets=offsets,
        entity_index=entity_index,
        offset_index=offset_index,
        facts=facts,
    )


def make_consistency_program(
    num_entities: int,
    num_offsets: int,
    backend: str = "set",
    engine: str = "indexed",
    demand: bool = False,
) -> Program:
    """Declare the eq. 4.12 program (domains, relations, rules), no facts.

    Split from :func:`build_consistency_program` so the incremental
    session can rebuild the program around a *stored* entity table —
    possibly padded beyond the current universe for headroom — and load
    facts in that table's encoding.
    """
    program = Program(backend=backend, engine=engine)
    program.domain("O", max(num_entities, 1))
    program.domain("N", max(num_offsets, 1))
    derived = _DEMAND_RELATIONS if demand else _DERIVED_RELATIONS
    for name, domains in INPUT_RELATIONS + derived:
        program.relation(name, list(domains))
    program.rules(DEMAND_RULES if demand else RULES)
    return program


def build_consistency_program(
    analysis: PointerAnalysisResult,
    hierarchy: Optional[RegionHierarchy] = None,
    backend: str = "set",
) -> ConsistencyProgram:
    """Build (without solving) the consistency query over ``analysis``.

    Exposed separately from :func:`solve_object_pairs` so callers that
    need the decoding maps -- the ``--explain`` provenance renderer runs
    the same program with derivation recording on -- share one builder.
    """
    extracted = extract_consistency_facts(analysis, hierarchy)
    program = make_consistency_program(
        len(extracted.entities), len(extracted.offsets), backend
    )
    for name, tuples in extracted.facts.items():
        for values in tuples:
            program.fact(name, *values)
    return ConsistencyProgram(
        program=program,
        entities=extracted.entities,
        offsets=extracted.offsets,
        entity_index=extracted.entity_index,
        offset_index=extracted.offset_index,
    )


def build_demand_program(
    analysis: PointerAnalysisResult,
    hierarchy: Optional[RegionHierarchy] = None,
    queries: Iterable[
        Tuple[AbstractObject, Optional[int], AbstractObject]
    ] = (),
    backend: str = "set",
) -> ConsistencyProgram:
    """The demand-transformed query, seeded with ``queries`` accesses.

    ``queries`` are (source, offset, target) access triples (normally a
    subset of ``analysis.accesses``); only they are asserted into
    ``access``, and the magic predicates confine the ownership cover and
    subregion closure to what those triples reach.  ``objectPair`` equals
    the full program's relation restricted to the queried accesses.
    """
    extracted = extract_consistency_facts(analysis, hierarchy)
    program = make_consistency_program(
        len(extracted.entities), len(extracted.offsets), backend,
        demand=True,
    )
    for name in ("region", "parent", "own"):
        for values in extracted.facts[name]:
            program.fact(name, *values)
    for source, offset, target in queries:
        if (
            source in extracted.entity_index
            and target in extracted.entity_index
            and offset in extracted.offset_index
        ):
            program.fact(
                "access",
                extracted.entity_index[source],
                extracted.offset_index[offset],
                extracted.entity_index[target],
            )
    return ConsistencyProgram(
        program=program,
        entities=extracted.entities,
        offsets=extracted.offsets,
        entity_index=extracted.entity_index,
        offset_index=extracted.offset_index,
    )


def solve_demand_pairs(
    analysis: PointerAnalysisResult,
    hierarchy: Optional[RegionHierarchy] = None,
    queries: Iterable[
        Tuple[AbstractObject, Optional[int], AbstractObject]
    ] = (),
    backend: str = "set",
    meter: Optional[BudgetMeter] = None,
) -> Tuple[
    Set[Tuple[AbstractObject, Optional[int], AbstractObject]], SolverStats
]:
    """Demand-solve eq. 4.12 for the queried accesses only."""
    built = build_demand_program(analysis, hierarchy, queries, backend)
    solution = built.program.solve(meter=meter)
    return built.decode_pairs(solution.tuples("objectPair")), solution.stats


def accesses_at_location(
    analysis: PointerAnalysisResult,
    module,
    filename: str,
    line: int,
) -> List[Tuple[AbstractObject, Optional[int], AbstractObject]]:
    """Access triples anchored at ``filename:line`` — the ``--query`` seed.

    A triple matches when the store instruction that created it, or the
    allocation site of either end, sits on that line.  ``filename``
    matches exactly or by basename, so ``--query file.c:12`` works without
    repeating the directory the source was given as.
    """

    def matches(loc) -> bool:
        if loc is None or loc.line != line:
            return False
        name = loc.filename
        if name == filename:
            return True
        return "/" not in filename and name.rsplit("/", 1)[-1] == filename

    def site_loc(uid: int):
        if not uid:
            return None
        try:
            return module.instr(uid).loc
        except KeyError:
            return None

    found = []
    for triple in sorted(analysis.accesses, key=str):
        source, offset, target = triple
        locs = [site_loc(source.site), site_loc(target.site)]
        locs.extend(
            site_loc(uid)
            for uid in analysis.access_sites.get(triple, frozenset())
        )
        if any(matches(loc) for loc in locs):
            found.append(triple)
    return found


def solve_object_pairs(
    analysis: PointerAnalysisResult,
    hierarchy: Optional[RegionHierarchy] = None,
    backend: str = "set",
    meter: Optional[BudgetMeter] = None,
) -> Tuple[
    Set[Tuple[AbstractObject, Optional[int], AbstractObject]], SolverStats
]:
    """Like :func:`datalog_object_pairs` but also returns solver stats."""
    built = build_consistency_program(analysis, hierarchy, backend)
    solution = built.program.solve(meter=meter)
    pairs = built.decode_pairs(solution.tuples("objectPair"))
    return pairs, solution.stats
