"""The inconsistency computation as Datalog (Section 5.3.2, eq. 4.12).

RegionWiz's core query -- region pairs with no partial order, mapped
through reflexive ownership, filtered by the access relation -- is a
four-rule Datalog program.  This module runs exactly that program on the
:mod:`repro.datalog` solver over the pointer-analysis effects and the
canonicalized hierarchy; a test cross-checks its ``objectPair`` output
against :func:`repro.core.consistency.check_consistency` on the whole
figure corpus, tying the executable formalism to the production checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.hierarchy import RegionHierarchy, build_hierarchy
from repro.datalog import Program, SolverStats
from repro.pointer import AbstractObject, PointerAnalysisResult
from repro.util.budget import BudgetMeter

__all__ = [
    "ConsistencyProgram",
    "build_consistency_program",
    "datalog_object_pairs",
    "solve_object_pairs",
]

RULES = """
# Reflexive transitive closure of the canonical subregion tree.
le(x, x) :- region(x).
le(x, y) :- parent(x, y).
le(x, z) :- le(x, y), parent(y, z).

# Region pairs with no partial order (the complement, eq. 4.13's domain).
regionPair(x, y) :- region(x), region(y), !le(x, y).

# Reflexive extension of ownership: f= covers the region itself.
ownEq(r, o) :- own(r, o).
ownEq(r, r) :- region(r).

# objectPair (eq. 4.12): an access between objects owned by unordered
# regions.
objectPair(o1, n, o2) :-
    access(o1, n, o2), ownEq(x, o1), ownEq(y, o2), regionPair(x, y).
"""


def datalog_object_pairs(
    analysis: PointerAnalysisResult,
    hierarchy: Optional[RegionHierarchy] = None,
    backend: str = "set",
) -> Set[Tuple[AbstractObject, Optional[int], AbstractObject]]:
    """Solve eq. 4.12 as Datalog; returns {(source, offset, target)}."""
    pairs, _ = solve_object_pairs(analysis, hierarchy, backend)
    return pairs


@dataclass
class ConsistencyProgram:
    """The eq. 4.12 Datalog program plus its dense-index decoding maps."""

    program: Program
    entities: List[AbstractObject]
    offsets: List[Optional[int]]
    entity_index: Dict[AbstractObject, int]
    offset_index: Dict[Optional[int], int]

    def object_pair_key(
        self,
        source: AbstractObject,
        offset: Optional[int],
        target: AbstractObject,
    ) -> Tuple[int, int, int]:
        """Encode an object pair as an ``objectPair`` tuple."""
        return (
            self.entity_index[source],
            self.offset_index[offset],
            self.entity_index[target],
        )


def build_consistency_program(
    analysis: PointerAnalysisResult,
    hierarchy: Optional[RegionHierarchy] = None,
    backend: str = "set",
) -> ConsistencyProgram:
    """Build (without solving) the consistency query over ``analysis``.

    Exposed separately from :func:`solve_object_pairs` so callers that
    need the decoding maps -- the ``--explain`` provenance renderer runs
    the same program with derivation recording on -- share one builder.
    """
    if hierarchy is None:
        hierarchy = build_hierarchy(analysis.regions, analysis.subregion)

    # Dense index for regions+objects (one shared object domain keeps the
    # ownEq/access joins single-domain) and for offsets.
    entities: List[AbstractObject] = sorted(
        set(hierarchy.regions) | set(analysis.objects), key=str
    )
    entity_index: Dict[AbstractObject, int] = {
        obj: i for i, obj in enumerate(entities)
    }
    offsets: List[Optional[int]] = sorted(
        {offset for _, offset, _ in analysis.accesses},
        key=lambda value: (value is None, value),
    )
    offset_index = {offset: i for i, offset in enumerate(offsets)}

    program = Program(backend=backend)
    program.domain("O", max(len(entities), 1))
    program.domain("N", max(len(offsets), 1))
    program.relation("region", ["O"])
    program.relation("parent", ["O", "O"])
    program.relation("own", ["O", "O"])
    program.relation("access", ["O", "N", "O"])
    program.relation("le", ["O", "O"])
    program.relation("regionPair", ["O", "O"])
    program.relation("ownEq", ["O", "O"])
    program.relation("objectPair", ["O", "N", "O"])
    program.rules(RULES)

    for region in hierarchy.regions:
        program.fact("region", entity_index[region])
        parent = hierarchy.parent.get(region)
        if parent is not None:
            program.fact("parent", entity_index[region], entity_index[parent])
    for region, obj in analysis.ownership:
        if region in entity_index and obj in entity_index:
            program.fact("own", entity_index[region], entity_index[obj])
    for source, offset, target in analysis.accesses:
        if source in entity_index and target in entity_index:
            program.fact(
                "access",
                entity_index[source],
                offset_index[offset],
                entity_index[target],
            )

    return ConsistencyProgram(
        program=program,
        entities=entities,
        offsets=offsets,
        entity_index=entity_index,
        offset_index=offset_index,
    )


def solve_object_pairs(
    analysis: PointerAnalysisResult,
    hierarchy: Optional[RegionHierarchy] = None,
    backend: str = "set",
    meter: Optional[BudgetMeter] = None,
) -> Tuple[
    Set[Tuple[AbstractObject, Optional[int], AbstractObject]], SolverStats
]:
    """Like :func:`datalog_object_pairs` but also returns solver stats."""
    built = build_consistency_program(analysis, hierarchy, backend)
    solution = built.program.solve(meter=meter)
    pairs = {
        (built.entities[source], built.offsets[offset], built.entities[target])
        for source, offset, target in solution.tuples("objectPair")
    }
    return pairs, solution.stats
