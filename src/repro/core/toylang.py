"""The paper's toy language (Section 4.1) and its two semantics.

The language::

    s ::= x = null | x = rnew y | x = ralloc y | x = y
        | x = y.f | x.f = y | s1 ; s2 | if ~ s1 else s2 | while ~ s

``~`` is an unknown condition, so the *concrete* big-step semantics
(Figure 4) is nondeterministic: an execution is driven by a decision
oracle choosing branch arms and loop continuations.  Each run produces the
final environment/heap plus the three effects ``pi`` (subregion), ``phi``
(ownership), and ``sigma`` (access) -- exactly the judgment
``s, rho, delta -> rho', delta', pi, phi, sigma``.

The *abstract* semantics (Section 4.3) is the flow-insensitive
Andersen-style analysis: allocation sites are the abstract locations,
branch arms join, loops run to fixpoint.  Its effects over-approximate
every concrete run's effects -- the property-based soundness tests in
``tests/core/test_toylang_soundness.py`` check precisely that, plus that
the verification verdict has no false negatives.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.core.hierarchy import RegionHierarchy, build_hierarchy

__all__ = [
    "Init",
    "New",
    "Alloc",
    "Copy",
    "LoadField",
    "StoreField",
    "Seq",
    "Branch",
    "Loop",
    "seq",
    "RegionVal",
    "ObjectVal",
    "TOY_ROOT",
    "ToyError",
    "ConcreteState",
    "run_concrete",
    "AbstractResult",
    "run_abstract",
    "concrete_violations",
    "abstract_violations",
]


# ---------------------------------------------------------------------------
# Syntax.  Each statement carries a ``site`` label (unique per program
# point) used by the abstract semantics as its allocation-site names.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Init:
    """``x = null``"""

    x: str
    site: int = 0


@dataclass(frozen=True)
class New:
    """``x = rnew y`` -- new subregion of the region y refers to."""

    x: str
    y: Optional[str]  # None encodes the literal null (root region)
    site: int = 0


@dataclass(frozen=True)
class Alloc:
    """``x = ralloc y`` -- new normal object in region y."""

    x: str
    y: Optional[str]
    site: int = 0


@dataclass(frozen=True)
class Copy:
    """``x = y``"""

    x: str
    y: str
    site: int = 0


@dataclass(frozen=True)
class LoadField:
    """``x = y.f``"""

    x: str
    y: str
    f: str
    site: int = 0


@dataclass(frozen=True)
class StoreField:
    """``x.f = y``"""

    x: str
    f: str
    y: str
    site: int = 0


@dataclass(frozen=True)
class Seq:
    first: "Stmt"
    second: "Stmt"


@dataclass(frozen=True)
class Branch:
    """``if ~ s1 else s2`` with an unknown condition."""

    then: "Stmt"
    other: "Stmt"


@dataclass(frozen=True)
class Loop:
    """``while ~ s`` with an unknown condition."""

    body: "Stmt"


Stmt = Union[Init, New, Alloc, Copy, LoadField, StoreField, Seq, Branch, Loop]


def seq(*stmts: Stmt) -> Stmt:
    """Right-fold statements into nested Seq (empty -> no-op Init)."""
    if not stmts:
        return Init("_", site=0)
    result = stmts[-1]
    for stmt in reversed(stmts[:-1]):
        result = Seq(stmt, result)
    return result


# ---------------------------------------------------------------------------
# Concrete semantics (Figure 4)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegionVal:
    id: int
    site: int = 0

    def __str__(self) -> str:
        return "Ω" if self.id == 0 else f"ρ{self.id}"


@dataclass(frozen=True)
class ObjectVal:
    id: int
    site: int = 0

    def __str__(self) -> str:
        return f"h{self.id}"


TOY_ROOT = RegionVal(0)
Value = Union[RegionVal, ObjectVal, None]


class ToyError(Exception):
    """Dynamic type errors (rnew of a normal object, field of a region...)."""


@dataclass
class ConcreteState:
    """Final state and effects of one nondeterministic execution."""

    env: Dict[str, Value] = field(default_factory=dict)
    heap: Dict[Tuple[ObjectVal, str], Value] = field(default_factory=dict)
    pi: Set[Tuple[RegionVal, RegionVal]] = field(default_factory=set)
    phi: Set[Tuple[RegionVal, Union[RegionVal, ObjectVal]]] = field(
        default_factory=set
    )
    sigma: Set[Tuple[ObjectVal, Union[RegionVal, ObjectVal]]] = field(
        default_factory=set
    )
    _fresh: "itertools.count" = field(default_factory=lambda: itertools.count(1))


def run_concrete(
    stmt: Stmt,
    oracle: Callable[[], bool],
    max_steps: int = 10_000,
) -> ConcreteState:
    """Execute under a decision oracle; returns the state with effects.

    The oracle decides each ``~``: branch direction and whether a loop
    iterates (polled before every iteration).  ``max_steps`` bounds loop
    unrolling so adversarial oracles terminate.
    """
    state = ConcreteState()
    steps = [0]

    def region_of(var: Optional[str]) -> RegionVal:
        # The paper's rho-hat: null means the root region.
        if var is None:
            return TOY_ROOT
        value = state.env.get(var)
        if value is None:
            return TOY_ROOT
        if isinstance(value, RegionVal):
            return value
        raise ToyError(f"{var} refers to a normal object, not a region")

    def execute(node: Stmt) -> None:
        steps[0] += 1
        if steps[0] > max_steps:
            raise ToyError("execution budget exceeded")
        if isinstance(node, Init):
            state.env[node.x] = None
        elif isinstance(node, New):  # rule (4.2)
            parent = region_of(node.y)
            region = RegionVal(next(state._fresh), node.site)
            state.env[node.x] = region
            state.pi.add((region, parent))
        elif isinstance(node, Alloc):  # rule (4.3)
            region = region_of(node.y)
            obj = ObjectVal(next(state._fresh), node.site)
            state.env[node.x] = obj
            state.phi.add((region, obj))
        elif isinstance(node, Copy):  # rule (4.4)
            state.env[node.x] = state.env.get(node.y)
        elif isinstance(node, LoadField):  # rule (4.5)
            value = state.env.get(node.y)
            if not isinstance(value, ObjectVal):
                raise ToyError(f"{node.y} is not a normal object")
            state.env[node.x] = state.heap.get((value, node.f))
        elif isinstance(node, StoreField):  # rule (4.6)
            target = state.env.get(node.x)
            if not isinstance(target, ObjectVal):
                raise ToyError(f"{node.x} is not a normal object")
            value = state.env.get(node.y)
            state.heap[(target, node.f)] = value
            if value is not None:
                state.sigma.add((target, value))
        elif isinstance(node, Seq):  # rule (4.7)
            execute(node.first)
            execute(node.second)
        elif isinstance(node, Branch):  # rules (4.8)/(4.9)
            execute(node.then if oracle() else node.other)
        elif isinstance(node, Loop):  # rules (4.10)/(4.11)
            while oracle():
                steps[0] += 1
                if steps[0] > max_steps:
                    break
                execute(node.body)
        else:
            raise ToyError(f"unknown statement {node!r}")

    execute(stmt)
    return state


# ---------------------------------------------------------------------------
# Abstract semantics (Section 4.3)
# ---------------------------------------------------------------------------

# Abstract locations: the allocation site labels, plus the root region 0
# and the null marker -1 (a variable that may be null denotes the root
# region when used as an rnew/ralloc argument).
AbsLoc = int
ABS_ROOT: AbsLoc = 0
ABS_NULL: AbsLoc = -1


@dataclass
class AbstractResult:
    """Flow-insensitive abstract contexts and effects."""

    env: Dict[str, FrozenSet[AbsLoc]]
    heap: Dict[Tuple[AbsLoc, str], FrozenSet[AbsLoc]]
    region_sites: FrozenSet[AbsLoc]
    object_sites: FrozenSet[AbsLoc]
    pi: FrozenSet[Tuple[AbsLoc, AbsLoc]]
    phi: FrozenSet[Tuple[AbsLoc, AbsLoc]]
    sigma: FrozenSet[Tuple[AbsLoc, AbsLoc]]

    def hierarchy(self) -> RegionHierarchy:
        """Canonical tree per Section 4.3 (joins for multi-parent regions)."""
        return build_hierarchy(self.region_sites, self.pi, root=ABS_ROOT)


def run_abstract(stmt: Stmt) -> AbstractResult:
    """The standard Andersen-style abstract interpretation of the paper."""
    env: Dict[str, Set[AbsLoc]] = {}
    heap: Dict[Tuple[AbsLoc, str], Set[AbsLoc]] = {}
    region_sites: Set[AbsLoc] = {ABS_ROOT}
    object_sites: Set[AbsLoc] = set()
    pi: Set[Tuple[AbsLoc, AbsLoc]] = set()
    phi: Set[Tuple[AbsLoc, AbsLoc]] = set()
    sigma: Set[Tuple[AbsLoc, AbsLoc]] = set()
    changed = [True]

    def add(bucket: Set, values) -> None:
        before = len(bucket)
        bucket.update(values)
        if len(bucket) != before:
            changed[0] = True

    def regions_of(var: Optional[str]) -> Set[AbsLoc]:
        if var is None:
            return {ABS_ROOT}
        values = env.get(var, set())
        found = {v for v in values if v in region_sites}
        # An unassigned or possibly-null variable denotes the root region
        # (rule rho-hat of Section 4.1); flow-insensitive soundness
        # requires considering the null possibility whenever it exists.
        if ABS_NULL in values or not values:
            found.add(ABS_ROOT)
        return found

    def walk(node: Stmt) -> None:
        if isinstance(node, Init):
            add(env.setdefault(node.x, set()), {ABS_NULL})
        elif isinstance(node, New):
            region_sites.add(node.site)
            parents = regions_of(node.y)
            add(env.setdefault(node.x, set()), {node.site})
            for parent in parents:
                if parent != node.site:
                    add(pi, {(node.site, parent)})
        elif isinstance(node, Alloc):
            object_sites.add(node.site)
            owners = regions_of(node.y)
            add(env.setdefault(node.x, set()), {node.site})
            for region in owners:
                add(phi, {(region, node.site)})
        elif isinstance(node, Copy):
            add(env.setdefault(node.x, set()), env.get(node.y, set()))
        elif isinstance(node, LoadField):
            bucket = env.setdefault(node.x, set())
            add(bucket, {ABS_NULL})  # unset fields read as null
            for loc in env.get(node.y, set()):
                if loc in object_sites:
                    add(bucket, heap.get((loc, node.f), set()))
        elif isinstance(node, StoreField):
            values = env.get(node.y, set())
            for loc in env.get(node.x, set()):
                if loc in object_sites:
                    add(heap.setdefault((loc, node.f), set()), values)
                    add(
                        sigma,
                        {(loc, v) for v in values if v != ABS_NULL},
                    )
        elif isinstance(node, Seq):
            walk(node.first)
            walk(node.second)
        elif isinstance(node, Branch):
            walk(node.then)
            walk(node.other)
        elif isinstance(node, Loop):
            walk(node.body)

    while changed[0]:
        changed[0] = False
        walk(stmt)

    return AbstractResult(
        env={k: frozenset(v) for k, v in env.items()},
        heap={k: frozenset(v) for k, v in heap.items()},
        region_sites=frozenset(region_sites),
        object_sites=frozenset(object_sites),
        pi=frozenset(pi),
        phi=frozenset(phi),
        sigma=frozenset(sigma),
    )


# ---------------------------------------------------------------------------
# Consistency verdicts (equation 4.13) for both semantics
# ---------------------------------------------------------------------------


def concrete_violations(state: ConcreteState) -> List[Tuple]:
    """Ground-truth inconsistencies of one execution.

    The concrete subregion relation is a real tree (every region has one
    parent), so the partial order is exact.  An access ``o -> o'`` is a
    violation unless some owner of o is <= some owner of o' -- with
    concrete unique ownership: owner(o) <= owner(o').
    """
    parent: Dict[RegionVal, Optional[RegionVal]] = {TOY_ROOT: None}
    for child, parent_region in state.pi:
        parent[child] = parent_region

    def ancestors(region: RegionVal) -> Set[RegionVal]:
        chain = {region}
        current = parent.get(region)
        while current is not None and current not in chain:
            chain.add(current)
            current = parent.get(current)
        return chain

    owner: Dict[Union[RegionVal, ObjectVal], RegionVal] = {}
    for region, obj in state.phi:
        owner[obj] = region

    def owners(value) -> Set[RegionVal]:
        if isinstance(value, RegionVal):
            return {value}  # f= reflexive extension
        return {owner[value]} if value in owner else set()

    violations = []
    for source, target in state.sigma:
        source_owners = owners(source)
        target_owners = owners(target)
        if not source_owners or not target_owners:
            continue
        if not any(
            y in ancestors(x) for x in source_owners for y in target_owners
        ):
            violations.append((source, target))
    return violations


def abstract_violations(result: AbstractResult) -> List[Tuple[AbsLoc, AbsLoc]]:
    """Static warnings per equation 4.13 over the canonicalized tree."""
    hierarchy = result.hierarchy()
    owned_by: Dict[AbsLoc, Set[AbsLoc]] = {}
    for region, obj in result.phi:
        owned_by.setdefault(obj, set()).add(region)

    def owners(loc: AbsLoc) -> Set[AbsLoc]:
        if loc in result.region_sites:
            return {loc}
        return owned_by.get(loc, set())

    violations = []
    for source, target in sorted(result.sigma):
        source_owners = owners(source)
        target_owners = owners(target)
        if not source_owners or not target_owners:
            continue
        if any(
            not hierarchy.leq(x, y)
            for x in source_owners
            for y in target_owners
        ):
            violations.append((source, target))
    return violations
