"""Def-use refinement of warnings (Section 4.3, Figure 5(b)).

The paper sketches the fix for its flow-insensitive false positive: refine
subregion and ownership *through variables* -- ``p' : R x V`` and
``f' : V x O`` -- so that "the parent of r2 and the owner of o1 are always
the same region" becomes provable whenever both came from the same region
variable.  "A practical implementation can adopt techniques such as IPSSA,
an unsound but effective approach.  We defer it to future work."

This module implements that refinement over our IR.  Lowered temporaries
are single-assignment, so a cheap local def-use walk resolves, for every
region-create and region-alloc call, the *variable* its region argument
was read from.  A warning is then suppressed when either

* both objects' regions were drawn from the same variable (same region at
  runtime regardless of which region that is), or
* the pointing object's owner region was *created as a subregion of* the
  variable that owns the pointed-to object (Figure 5's exact shape).

Like IPSSA, this is deliberately unsound: it ignores reassignments of the
variable between the two uses.  It is exposed as an opt-in
(``refine_warnings``; CLI flag ``--refine``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.consistency import ObjectPairWarning
from repro.core.ranking import RankedWarnings
from repro.ir import (
    Add,
    AddrOf,
    Assign,
    Call,
    IRModule,
    Load,
    Operand,
    Temp,
    VarOp,
)
from repro.interfaces import RegionInterface

__all__ = ["RegionVarIndex", "build_region_var_index", "refine_warnings"]

# A resolved region variable: (function, variable ir-name).
RegionVar = Tuple[str, str]


class RegionVarIndex:
    """Per-allocation-site region variables (the f' and p' relations)."""

    def __init__(self) -> None:
        # alloc call uid -> the variable its region argument came from.
        self.alloc_region_var: Dict[int, RegionVar] = {}
        # create call uid -> the variable its *parent* argument came from.
        self.create_parent_var: Dict[int, RegionVar] = {}

    def same_region_variable(self, site_a: int, site_b: int) -> bool:
        var_a = self.alloc_region_var.get(site_a)
        return var_a is not None and var_a == self.alloc_region_var.get(site_b)

    def subregion_of_variable(
        self, create_site: int, alloc_site: int
    ) -> bool:
        parent = self.create_parent_var.get(create_site)
        return parent is not None and parent == self.alloc_region_var.get(
            alloc_site
        )


def _resolve_variable(
    defs: Dict[int, object], func: str, operand: Operand, depth: int = 8
) -> Optional[RegionVar]:
    """Walk single-assignment temps back to the variable an operand was
    read from.  Demoted (address-taken) variables are recognized through
    their Load(AddrOf(var)) idiom."""
    for _ in range(depth):
        if isinstance(operand, VarOp):
            return (func if operand.kind != "global" else "", operand.name)
        if not isinstance(operand, Temp):
            return None
        definition = defs.get(operand.id)
        if isinstance(definition, Assign):
            operand = definition.src
        elif isinstance(definition, Load):
            address = definition.addr
            if isinstance(address, Temp):
                address_def = defs.get(address.id)
                if isinstance(address_def, AddrOf):
                    var = address_def.var
                    return (
                        func if var.kind != "global" else "",
                        var.name,
                    )
            return None
        elif isinstance(definition, Add) and definition.offset == 0:
            operand = definition.base
        else:
            return None
    return None


def build_region_var_index(
    module: IRModule, interface: RegionInterface
) -> RegionVarIndex:
    """Resolve region-argument variables for every interface call."""
    index = RegionVarIndex()
    for name, function in module.functions.items():
        defs: Dict[int, object] = {}
        for instr in function.instrs:
            dst = getattr(instr, "dst", None)
            if isinstance(dst, Temp):
                defs[dst.id] = instr
        for instr in function.instrs:
            if not isinstance(instr, Call) or not instr.is_direct:
                continue
            callee = instr.callee.name  # type: ignore[union-attr]
            if callee in interface.allocs:
                spec = interface.allocs[callee]
                if spec.region_arg < len(instr.args):
                    var = _resolve_variable(
                        defs, name, instr.args[spec.region_arg]
                    )
                    if var is not None:
                        index.alloc_region_var[instr.uid] = var
            elif callee in interface.creates:
                spec = interface.creates[callee]
                if (
                    spec.parent_arg is not None
                    and spec.parent_arg < len(instr.args)
                ):
                    var = _resolve_variable(
                        defs, name, instr.args[spec.parent_arg]
                    )
                    if var is not None:
                        index.create_parent_var[instr.uid] = var
    return index


def _pair_refutable(
    pair: ObjectPairWarning, index: RegionVarIndex
) -> bool:
    """Whether def-use information proves this object pair safe."""
    # Same region variable supplied both allocations: same region.
    if index.same_region_variable(pair.source.site, pair.target.site):
        return True
    # The source's owner was created as a subregion of the variable that
    # owns the target (Figure 5's shape): source region <= target region.
    return any(
        owner.kind == "region"
        and index.subregion_of_variable(owner.site, pair.target.site)
        for owner in pair.source_owners
    )


def refine_warnings(
    ranked: RankedWarnings,
    module: IRModule,
    interface: RegionInterface,
) -> RankedWarnings:
    """Drop I-pairs all of whose object pairs are def-use refutable."""
    index = build_region_var_index(module, interface)
    kept = []
    for ipair in ranked.ipairs:
        surviving = [
            pair
            for pair in ipair.object_pairs
            if not _pair_refutable(pair, index)
        ]
        if surviving:
            replacement = type(ipair)(
                source_site=ipair.source_site,
                target_site=ipair.target_site,
                object_pairs=surviving,
            )
            kept.append(replacement)
    return RankedWarnings(kept)
