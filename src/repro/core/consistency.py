"""Region lifetime consistency (Sections 4.2 and 5.3.2).

The instantiation of conditional correlation: with ``<=`` the reflexive
transitive closure of the canonical subregion tree and ``phi=`` the
reflexive extension of ownership (a region "owns" itself, so an object
holding a pointer *to a region* is covered), region lifetime is consistent
iff for every region pair ``x !<= y``, no object of ``phi=(x)`` accesses
an object of ``phi=(y)`` (equation 4.13).

Rather than materializing the (potentially billions-large, see Figure 11)
region-pair set, the checker iterates the access effect sigma and tests
each access's owner-region combinations against the partial order -- the
same result, linear in |sigma|.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core.correlation import ConditionalCorrelation
from repro.core.hierarchy import RegionHierarchy, build_hierarchy
from repro.pointer import AbstractObject, PointerAnalysisResult, ROOT_REGION

__all__ = [
    "ObjectPairWarning",
    "ConsistencyResult",
    "check_consistency",
    "consistency_from_pairs",
]


@dataclass(frozen=True)
class ObjectPairWarning:
    """objectPair(c0,f0,n,c1,f1): ``source`` may hold a dangling pointer at
    byte ``offset`` to ``target``."""

    source: AbstractObject
    offset: Optional[int]
    target: AbstractObject
    source_owners: FrozenSet[AbstractObject]
    target_owners: FrozenSet[AbstractObject]
    store_uids: FrozenSet[int]

    @property
    def never_safe(self) -> bool:
        """The Section 5.4 high-rank criterion: True when *no* owner
        combination ``x <= y`` could hold even in the raw may-subregion
        relation -- i.e., the pointer cannot be an intra-region or
        safe-direction pointer under any resolution of the aliasing
        ambiguity.  (Pairs where the relation *may* hold are the Figure-5
        intra-region false positives the heuristic filters.)  Computed
        eagerly at construction into ``_never_safe``."""
        return self._never_safe  # type: ignore[attr-defined]

    def __str__(self) -> str:
        offset = "?" if self.offset is None else self.offset
        return (
            f"{self.source} may hold a dangling pointer at offset {offset}"
            f" to {self.target}"
        )


@dataclass
class ConsistencyResult:
    """All Section 5.3.2 outputs plus the Figure 11 statistics."""

    hierarchy: RegionHierarchy
    object_pairs: List[ObjectPairWarning]
    num_regions: int
    num_objects: int
    subregion_size: int
    ownership_size: int
    heap_size: int
    region_pair_count: int

    @property
    def is_consistent(self) -> bool:
        return not self.object_pairs

    @property
    def o_pair_count(self) -> int:
        return len(self.object_pairs)


def _owners(
    obj: AbstractObject,
    owned_by: Dict[AbstractObject, Set[AbstractObject]],
) -> FrozenSet[AbstractObject]:
    """phi= inverted: the regions whose extended ownership covers obj.

    A region covers itself (the reflexive extension f=); a normal object
    is covered by the regions that own it.
    """
    if obj.is_region:
        return frozenset({obj})
    return frozenset(owned_by.get(obj, set()))


def check_consistency(
    analysis: PointerAnalysisResult,
    hierarchy: Optional[RegionHierarchy] = None,
) -> ConsistencyResult:
    """Verify the non-access property over region pairs without partial
    order; returns every violating object pair."""
    if hierarchy is None:
        hierarchy = build_hierarchy(analysis.regions, analysis.subregion)

    owned_by: Dict[AbstractObject, Set[AbstractObject]] = {}
    for region, obj in analysis.ownership:
        owned_by.setdefault(obj, set()).add(region)

    warnings: List[ObjectPairWarning] = []
    for source, offset, target in sorted(analysis.accesses, key=str):
        source_owners = _owners(source, owned_by)
        target_owners = _owners(target, owned_by)
        if not source_owners or not target_owners:
            continue  # objects outside the region discipline constrain nothing
        # Proposition 2.2: safe iff *every* owner combination is ordered
        # x <= y; a single unordered combination is a potential dangling
        # pointer.
        unordered = [
            (x, y)
            for x in source_owners
            for y in target_owners
            if not hierarchy.leq(x, y)
        ]
        if not unordered:
            continue
        never_safe = all(
            not hierarchy.may_leq(x, y)
            for x in source_owners
            for y in target_owners
        )
        warning = ObjectPairWarning(
            source=source,
            offset=offset,
            target=target,
            source_owners=source_owners,
            target_owners=target_owners,
            store_uids=analysis.access_sites.get(
                (source, offset, target), frozenset()
            ),
        )
        object.__setattr__(warning, "_never_safe", never_safe)
        warnings.append(warning)

    return ConsistencyResult(
        hierarchy=hierarchy,
        object_pairs=warnings,
        num_regions=len(analysis.regions),
        num_objects=len(analysis.objects),
        subregion_size=len(analysis.subregion),
        ownership_size=len(analysis.ownership),
        heap_size=len(analysis.accesses),
        region_pair_count=hierarchy.count_no_partial_order_pairs(),
    )


def consistency_from_pairs(
    analysis: PointerAnalysisResult,
    hierarchy: RegionHierarchy,
    pairs: Set[Tuple[AbstractObject, Optional[int], AbstractObject]],
    accesses: Optional[
        Iterable[Tuple[AbstractObject, Optional[int], AbstractObject]]
    ] = None,
) -> ConsistencyResult:
    """Rebuild a :class:`ConsistencyResult` from a known violating set.

    The eq. 4.12 Datalog paths (the incremental delta re-solve, the
    demand-transformed ``--query``) decide *which* accesses violate;
    this decoder rebuilds the same :class:`ObjectPairWarning` objects —
    owners, store sites, the Section 5.4 never-safe rank — that
    :func:`check_consistency` would have built for them, iterating the
    same sorted order so downstream ranking and fingerprints are
    byte-identical.  ``accesses`` restricts the iteration (the demand
    path passes its query seed); by default every access is considered.
    """
    owned_by: Dict[AbstractObject, Set[AbstractObject]] = {}
    for region, obj in analysis.ownership:
        owned_by.setdefault(obj, set()).add(region)

    candidates = analysis.accesses if accesses is None else accesses
    warnings: List[ObjectPairWarning] = []
    for source, offset, target in sorted(candidates, key=str):
        if (source, offset, target) not in pairs:
            continue
        source_owners = _owners(source, owned_by)
        target_owners = _owners(target, owned_by)
        never_safe = all(
            not hierarchy.may_leq(x, y)
            for x in source_owners
            for y in target_owners
        )
        warning = ObjectPairWarning(
            source=source,
            offset=offset,
            target=target,
            source_owners=source_owners,
            target_owners=target_owners,
            store_uids=analysis.access_sites.get(
                (source, offset, target), frozenset()
            ),
        )
        object.__setattr__(warning, "_never_safe", never_safe)
        warnings.append(warning)

    return ConsistencyResult(
        hierarchy=hierarchy,
        object_pairs=warnings,
        num_regions=len(analysis.regions),
        num_objects=len(analysis.objects),
        subregion_size=len(analysis.subregion),
        ownership_size=len(analysis.ownership),
        heap_size=len(analysis.accesses),
        region_pair_count=hierarchy.count_no_partial_order_pairs(),
    )


def region_lifetime_correlation(
    analysis: PointerAnalysisResult,
    hierarchy: Optional[RegionHierarchy] = None,
) -> Tuple[ConditionalCorrelation, FrozenSet[AbstractObject]]:
    """The Definition 4.1 correlation ``<p+, f=, s*>`` as a first-class
    :class:`ConditionalCorrelation` over the region carrier.

    ``f`` is the *complement* of the partial order (pairs that need
    verification); ``phi`` maps a region to its extended-ownership object
    set; ``g`` is the non-access relation between object sets.  Checking
    consistency of this correlation over all regions is equivalent to
    :func:`check_consistency` (a test asserts that).
    """
    if hierarchy is None:
        hierarchy = build_hierarchy(analysis.regions, analysis.subregion)
    owned: Dict[AbstractObject, Set[AbstractObject]] = {
        region: {region} for region in hierarchy.regions
    }
    for region, obj in analysis.ownership:
        owned.setdefault(region, {region}).add(obj)
    access_pairs = {
        (source, target) for source, _, target in analysis.accesses
    }

    def f(x: AbstractObject, y: AbstractObject) -> bool:
        return not hierarchy.leq(x, y)

    def phi(x: AbstractObject) -> FrozenSet[AbstractObject]:
        return frozenset(owned.get(x, {x}))

    def g(s: FrozenSet[AbstractObject], t: FrozenSet[AbstractObject]) -> bool:
        return not any(
            (o1, o2) in access_pairs for o1 in s for o2 in t
        )

    return (
        ConditionalCorrelation(f, phi, g, name="region-lifetime"),
        hierarchy.regions,
    )
