"""A second conditional correlation: locks and memory locations.

The paper closes with "our future work also includes to study other
conditional correlations, such as locks and memory locations" -- the
RacerX/LOCKSMITH-style consistency the framework was designed to also
express.  This module is that instantiation:

* ``A`` = access events (thread, location, read/write, lockset held);
* ``f`` = the may-race relation: two events touch the same location from
  different threads and at least one writes;
* ``phi`` = the lockset held at the event;
* ``g`` = "the locksets intersect" (some common lock orders the events).

Consistency of ``<f, phi, g>`` over a program's events is exactly the
classic lockset discipline; violations are candidate races.  It shares
:class:`~repro.core.correlation.ConditionalCorrelation` with the region
instantiation, demonstrating the framework's claimed generality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Tuple

from repro.core.correlation import ConditionalCorrelation, Violation

__all__ = ["LockAccess", "lockset_correlation", "find_races"]


@dataclass(frozen=True)
class LockAccess:
    """One shared-memory access event."""

    thread: str
    location: str
    is_write: bool
    locks: FrozenSet[str]

    @staticmethod
    def read(thread: str, location: str, *locks: str) -> "LockAccess":
        return LockAccess(thread, location, False, frozenset(locks))

    @staticmethod
    def write(thread: str, location: str, *locks: str) -> "LockAccess":
        return LockAccess(thread, location, True, frozenset(locks))


def lockset_correlation() -> ConditionalCorrelation:
    """The <may-race, lockset, intersects> correlation over events."""

    def may_race(a: LockAccess, b: LockAccess) -> bool:
        return (
            a.location == b.location
            and a.thread != b.thread
            and (a.is_write or b.is_write)
        )

    def lockset(a: LockAccess) -> FrozenSet[str]:
        return a.locks

    def intersects(s: FrozenSet[str], t: FrozenSet[str]) -> bool:
        return bool(s & t)

    return ConditionalCorrelation(
        may_race, lockset, intersects, name="lockset"
    )


def find_races(
    accesses: Iterable[LockAccess],
) -> List[Tuple[LockAccess, LockAccess]]:
    """Unordered candidate race pairs (each reported once)."""
    correlation = lockset_correlation()
    events = list(accesses)
    seen = set()
    races: List[Tuple[LockAccess, LockAccess]] = []
    for violation in correlation.violations(events):
        key = frozenset((violation.x, violation.y))
        if key not in seen:
            seen.add(key)
            races.append((violation.x, violation.y))
    return races
