"""Post-processing: condensation and ranking of warnings (Section 5.4).

Context-sensitive object pairs are numerous (the same pair recurs in many
similar contexts), so they are condensed to context-insensitive
*instruction pairs* (I-pairs) keyed by the two allocation sites.  Then the
single ranking heuristic: "for an inconsistent object pair, if their owner
regions never have the subregion relation, we rank them high" -- pairs
whose owners are ordered in *some* direction may be the always-safe
intra-region pointers the flow-insensitive analysis cannot prove
(Figure 5), so they rank low.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.core.consistency import ConsistencyResult, ObjectPairWarning

__all__ = ["IPair", "RankedWarnings", "rank_warnings"]


@dataclass
class IPair:
    """A context-insensitive instruction pair: the allocation sites of the
    pointing and pointed-to objects, with every contributing object pair."""

    source_site: int
    target_site: int
    object_pairs: List[ObjectPairWarning] = field(default_factory=list)

    @property
    def high_ranked(self) -> bool:
        """High when some contributing object pair can never be safe
        (no owner combination has even a may-subregion relation in the
        pointing direction)."""
        return any(pair.never_safe for pair in self.object_pairs)

    @property
    def store_uids(self) -> FrozenSet[int]:
        uids: set = set()
        for pair in self.object_pairs:
            uids |= pair.store_uids
        return frozenset(uids)

    @property
    def num_contexts(self) -> int:
        return len(self.object_pairs)


@dataclass
class RankedWarnings:
    """Ranked I-pairs: high first, then by site for determinism."""

    ipairs: List[IPair]

    @property
    def high(self) -> List[IPair]:
        return [p for p in self.ipairs if p.high_ranked]

    @property
    def low(self) -> List[IPair]:
        return [p for p in self.ipairs if not p.high_ranked]

    @property
    def i_pair_count(self) -> int:
        return len(self.ipairs)

    @property
    def high_count(self) -> int:
        return len(self.high)

    def __iter__(self):
        return iter(self.ipairs)


def rank_warnings(result: ConsistencyResult) -> RankedWarnings:
    """Condense object pairs to I-pairs and apply the ranking heuristic."""
    by_sites: Dict[Tuple[int, int], IPair] = {}
    for pair in result.object_pairs:
        key = (pair.source.site, pair.target.site)
        ipair = by_sites.get(key)
        if ipair is None:
            ipair = IPair(source_site=key[0], target_site=key[1])
            by_sites[key] = ipair
        ipair.object_pairs.append(pair)
    ordered = sorted(
        by_sites.values(),
        key=lambda p: (not p.high_ranked, p.source_site, p.target_site),
    )
    return RankedWarnings(ordered)
