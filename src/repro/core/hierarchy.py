"""Region hierarchy canonicalization (Section 4.3).

The abstract subregion effect Pi is an over-approximation: aliasing can
give one region several possible parents, while "generally, the subregion
relation should form a tree, where each region (except for the root) has
one and only one parent".  The paper's conservative repair: "we consider
the parent region of r as the join of all its possible parent regions",
turning the region set into a join-semilattice with the root region at the
top (Example 4.4).

Being *less* precise here is what keeps the verification sound: after the
join, r is no longer below any individual candidate parent, so pairs like
Figure 3's (r2, r1) land in the no-partial-order set and get verified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set, Tuple

from repro.pointer import AbstractObject, ROOT_REGION

__all__ = ["RegionHierarchy", "build_hierarchy"]


@dataclass
class RegionHierarchy:
    """The canonical (tree-shaped) subregion relation and its partial order.

    Nodes are any hashable region representation; ``root`` is the region
    Omega that lives forever.  The pointer analysis uses
    :class:`~repro.pointer.AbstractObject` nodes; the toy-language model
    uses its own site labels.
    """

    regions: FrozenSet
    parent: Dict
    raw_parents: Dict
    joined: FrozenSet  # regions whose parent was a join
    root: object = ROOT_REGION
    _ancestors: Dict = field(default_factory=dict, repr=False)
    _may_ancestors: Dict = field(default_factory=dict, repr=False)

    def ancestors(self, region) -> FrozenSet:
        """Reflexive ancestor set: everything ``region <= .`` holds for."""
        cached = self._ancestors.get(region)
        if cached is not None:
            return cached
        chain = [region]
        current = self.parent.get(region)
        while current is not None and current not in chain:
            chain.append(current)
            current = self.parent.get(current)
        result = frozenset(chain)
        self._ancestors[region] = result
        return result

    def leq(self, x, y) -> bool:
        """``x <= y``: x is y or a (transitive) subregion of y."""
        return y in self.ancestors(x)

    def may_ancestors(self, region) -> FrozenSet:
        """Reflexive transitive closure over the *raw* (pre-join)
        may-subregion edges: everything ``region`` might be a subregion of
        under some resolution of the aliasing ambiguity.  Every region may
        be below the root.  Used by the Section 5.4 ranking heuristic."""
        cached = self._may_ancestors.get(region)
        if cached is not None:
            return cached
        result = {region, self.root}
        frontier = [region]
        while frontier:
            current = frontier.pop()
            for parent in self.raw_parents.get(current, frozenset()):
                if parent not in result:
                    result.add(parent)
                    frontier.append(parent)
        frozen = frozenset(result)
        self._may_ancestors[region] = frozen
        return frozen

    def may_leq(self, x, y) -> bool:
        """Whether ``x <= y`` could hold for some aliasing resolution."""
        return y in self.may_ancestors(x)

    def ordered(self, x, y) -> bool:
        """Whether x and y are comparable in either direction."""
        return self.leq(x, y) or self.leq(y, x)

    def no_partial_order_pairs(self) -> Iterator[Tuple]:
        """All ordered pairs (x, y) with ``x !<= y`` -- the paper's
        region-pair set to verify.  Quadratic; for statistics prefer
        :meth:`count_no_partial_order_pairs`."""
        for x in self.regions:
            x_up = self.ancestors(x)
            for y in self.regions:
                if y not in x_up:
                    yield (x, y)

    def count_no_partial_order_pairs(self) -> int:
        """|R x R| minus the number of <=-related pairs (R-pair in Fig 11)."""
        total = len(self.regions) ** 2
        related = sum(len(self.ancestors(x)) for x in self.regions)
        return total - related

    def join(self, candidates: Iterable) -> object:
        """Least common ancestor of the candidates in the canonical tree."""
        candidate_list = list(candidates)
        if not candidate_list:
            return self.root
        common = set(self.ancestors(candidate_list[0]))
        for candidate in candidate_list[1:]:
            common &= self.ancestors(candidate)
        if not common:
            return self.root
        # The least element of an ancestor chain intersection is the one
        # with the largest ancestor set contained in the chain -- i.e. the
        # deepest.  Depth = |ancestors|.
        return max(common, key=lambda r: (len(self.ancestors(r)), str(r)))


def build_hierarchy(
    regions: Iterable,
    subregion: Iterable[Tuple],
    root=ROOT_REGION,
) -> RegionHierarchy:
    """Canonicalize the abstract subregion effect into a tree.

    Passes:

    1. Collect each region's raw parent candidates (dropping self-loops,
       which recursion-induced merging can create).
    2. Regions with a unique candidate keep it; regions with none become
       children of the root.
    3. Regions with several candidates get the *join* of the candidates,
       computed in the partially-built tree; joins are resolved in
       topological order of the candidate graph and default to the root
       when the candidates' ancestry is not yet determined or cyclic.
    """
    region_set: Set = set(regions) | {root}
    raw: Dict = {r: set() for r in region_set}
    for child, parent in subregion:
        if child == parent:
            continue
        region_set.add(child)
        region_set.add(parent)
        raw.setdefault(child, set()).add(parent)
        raw.setdefault(parent, set())

    hierarchy = RegionHierarchy(
        regions=frozenset(region_set),
        parent={root: None},
        raw_parents={r: frozenset(ps) for r, ps in raw.items()},
        joined=frozenset(),
        root=root,
    )

    # Resolve unique parents first, then joins, iterating until stable so
    # joins can use ancestry established by earlier resolutions.  Cycles
    # among ambiguous regions fall back to the root.
    joined: Set = set()
    unresolved = {r for r in region_set if r != root}
    for region in sorted(unresolved, key=str):
        candidates = raw.get(region, set()) - {region}
        if not candidates:
            hierarchy.parent[region] = root
        elif len(candidates) == 1:
            hierarchy.parent[region] = next(iter(candidates))
    # Break any accidental cycles among uniquely-parented regions.
    for region in sorted(unresolved, key=str):
        if hierarchy.parent.get(region) is None:
            continue
        seen = {region}
        current = hierarchy.parent[region]
        while current is not None:
            if current in seen:
                hierarchy.parent[region] = root
                break
            seen.add(current)
            current = hierarchy.parent.get(current)
    hierarchy._ancestors.clear()
    for region in sorted(unresolved, key=str):
        if hierarchy.parent.get(region) is not None:
            continue
        candidates = raw.get(region, set()) - {region}
        join = hierarchy.join(
            c for c in candidates if hierarchy.parent.get(c) is not None
            or c == root
        )
        if join == region:  # would self-parent via an ancestor chain
            join = root
        hierarchy.parent[region] = join
        # The join's own chain may pass through ``region`` (its ancestry
        # was computed while region was a chain terminator): that would
        # close a cycle, so fall back to the root.
        seen = set()
        current = join
        while current is not None:
            if current == region or current in seen:
                hierarchy.parent[region] = root
                break
            seen.add(current)
            current = hierarchy.parent.get(current)
        joined.add(region)
        hierarchy._ancestors.clear()
    hierarchy.joined = frozenset(joined)
    hierarchy._ancestors.clear()
    return hierarchy
