"""The conditional correlation framework (Section 3).

Definition 3.1: given sets ``A, B`` with binary relations ``f : A x A`` and
``g : B x B`` and a map ``phi : A -> B``, the conditional correlation
``<f, phi, g>`` holds for ``(x, y)`` when ``(x, y) in f`` implies
``(phi(x), phi(y)) in g``; it is *consistent* when it holds for all pairs
(Definition 3.2).

Definition 3.3 gives the abstraction preorder between correlations: a
static analysis may check ``<F, PHI, G>`` instead of ``<f, phi, g>``
provided ``F`` over-approximates ``f``, ``PHI`` over-approximates ``phi``,
and ``G`` under-approximates ``g`` (through abstraction maps alpha/beta).

The classes below implement the framework over finite sets with callables
for the relations, so the region-lifetime instantiation (Section 4) and
the MUVI/lock-correlation style instantiations mentioned in related work
can share it.  This is the "unified framework ... of independent
interest" the paper claims as its first contribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Iterable, Iterator, List, Tuple, TypeVar

__all__ = ["ConditionalCorrelation", "Violation", "check_abstraction"]

A = TypeVar("A")
B = TypeVar("B")


@dataclass(frozen=True)
class Violation(Generic[A, B]):
    """A pair where the correlation fails: ``(x, y) in f`` but
    ``(phi(x), phi(y)) not in g``."""

    x: A
    y: B

    def __str__(self) -> str:
        return f"correlation violated for ({self.x}, {self.y})"


class ConditionalCorrelation(Generic[A, B]):
    """``<f, phi, g>`` over carriers ``A`` and ``B``.

    Parameters are callables so relations can be computed lazily:

    * ``f(x, y) -> bool`` -- the condition relation on ``A``;
    * ``phi(x) -> B`` -- the relation-preserving map;
    * ``g(u, v) -> bool`` -- the target relation on ``B``.
    """

    def __init__(
        self,
        f: Callable[[A, A], bool],
        phi: Callable[[A], B],
        g: Callable[[B, B], bool],
        name: str = "correlation",
    ) -> None:
        self.f = f
        self.phi = phi
        self.g = g
        self.name = name

    def holds_for(self, x: A, y: A) -> bool:
        """Definition 3.1 for one pair: vacuously true outside ``f``."""
        if not self.f(x, y):
            return True
        return self.g(self.phi(x), self.phi(y))

    def violations(self, carrier: Iterable[A]) -> Iterator[Violation]:
        """All pairs of ``carrier`` x ``carrier`` where 3.1 fails."""
        elements = list(carrier)
        for x in elements:
            for y in elements:
                if not self.holds_for(x, y):
                    yield Violation(x, y)

    def is_consistent(self, carrier: Iterable[A]) -> bool:
        """Definition 3.2 over a finite carrier."""
        return next(iter(self.violations(carrier)), None) is None


def check_abstraction(
    concrete: ConditionalCorrelation,
    abstract: ConditionalCorrelation,
    carrier: Iterable,
    abstract_carrier_of: Callable,
    beta: Callable,
) -> List[str]:
    """Check the three Definition 3.3 conditions on finite carriers.

    ``abstract_carrier_of`` is the alpha map ``A -> A'``; ``beta`` maps
    ``B -> B'``.  Returns a list of human-readable condition failures
    (empty when ``concrete <= abstract`` holds on the sample), so property
    tests can assert soundness of a given abstraction.
    """
    failures: List[str] = []
    elements = list(carrier)
    # (3.2): (x, y) in f  =>  (alpha x, alpha y) in F
    for x in elements:
        for y in elements:
            if concrete.f(x, y) and not abstract.f(
                abstract_carrier_of(x), abstract_carrier_of(y)
            ):
                failures.append(f"(3.2) fails for ({x}, {y})")
    # (3.3): phi(x) = s  =>  PHI(alpha x) >= beta(s); with functional phi
    # this is PHI(alpha x) == beta(phi(x)) up to the order used by G.
    # We check the containment form via beta equality.
    for x in elements:
        if beta(concrete.phi(x)) != abstract.phi(abstract_carrier_of(x)):
            # The abstract map may strictly over-approximate; the caller's
            # beta should encode that ordering.  Report only when the
            # abstract side *misses* the concrete image.
            failures.append(f"(3.3) mismatch for {x}")
    # (3.4): (s, t) not in g  =>  (beta s, beta t) not in G
    images = [concrete.phi(x) for x in elements]
    for s in images:
        for t in images:
            if not concrete.g(s, t) and abstract.g(beta(s), beta(t)):
                failures.append(f"(3.4) fails for ({s}, {t})")
    return failures
