"""The paper's core: conditional correlation and region lifetime consistency."""

from repro.core.consistency import (
    ConsistencyResult,
    ObjectPairWarning,
    check_consistency,
    region_lifetime_correlation,
)
from repro.core.correlation import (
    ConditionalCorrelation,
    Violation,
    check_abstraction,
)
from repro.core.abstract_flow import run_abstract_flow
from repro.core.datalog_check import datalog_object_pairs, solve_object_pairs
from repro.core.hierarchy import RegionHierarchy, build_hierarchy
from repro.core.lockcorr import LockAccess, find_races, lockset_correlation
from repro.core.ranking import IPair, RankedWarnings, rank_warnings
from repro.core.refine import (
    RegionVarIndex,
    build_region_var_index,
    refine_warnings,
)
from repro.core.toysyntax import ToyParseError, parse_toy

__all__ = [
    "ConditionalCorrelation",
    "ConsistencyResult",
    "IPair",
    "LockAccess",
    "ObjectPairWarning",
    "RankedWarnings",
    "RegionHierarchy",
    "RegionVarIndex",
    "build_region_var_index",
    "refine_warnings",
    "ToyParseError",
    "Violation",
    "build_hierarchy",
    "check_abstraction",
    "check_consistency",
    "datalog_object_pairs",
    "find_races",
    "lockset_correlation",
    "parse_toy",
    "rank_warnings",
    "region_lifetime_correlation",
    "run_abstract_flow",
    "solve_object_pairs",
]
