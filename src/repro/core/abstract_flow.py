"""The flow-SENSITIVE abstract semantics for the toy language.

Section 4.3: "the algorithm estimates Pi, Phi, and Sigma as an
over-approximation of pi, phi, and sigma, respectively, either
flow-sensitive or flow-insensitive."  :mod:`repro.core.toylang` implements
the flow-insensitive variant RegionWiz uses; this module implements the
flow-sensitive one -- abstract states (env, heap) are threaded through
statements, branches join their output states, loops run to a fixpoint on
the loop head -- so tests can demonstrate the precision relation the
paper asserts:

* both variants over-approximate every concrete run (soundness);
* the flow-sensitive effects are always a subset of the flow-insensitive
  ones (it is at least as precise), strictly so on programs where a
  variable is rebound before a store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.core.toylang import (
    ABS_NULL,
    ABS_ROOT,
    AbsLoc,
    AbstractResult,
    Alloc,
    Branch,
    Copy,
    Init,
    LoadField,
    Loop,
    New,
    Seq,
    Stmt,
    StoreField,
)

__all__ = ["run_abstract_flow"]

Env = Dict[str, FrozenSet[AbsLoc]]
Heap = Dict[Tuple[AbsLoc, str], FrozenSet[AbsLoc]]


@dataclass(frozen=True)
class _State:
    env: Tuple[Tuple[str, FrozenSet[AbsLoc]], ...]
    heap: Tuple[Tuple[Tuple[AbsLoc, str], FrozenSet[AbsLoc]], ...]

    @staticmethod
    def make(env: Env, heap: Heap) -> "_State":
        return _State(
            tuple(sorted(env.items())),
            tuple(sorted(heap.items())),
        )

    def unpack(self) -> Tuple[Env, Heap]:
        return dict(self.env), dict(self.heap)


def _join(a: _State, b: _State) -> _State:
    env_a, heap_a = a.unpack()
    env_b, heap_b = b.unpack()
    env: Env = dict(env_a)
    for var, values in env_b.items():
        env[var] = env.get(var, frozenset()) | values
    heap: Heap = dict(heap_a)
    for slot, values in heap_b.items():
        heap[slot] = heap.get(slot, frozenset()) | values
    return _State.make(env, heap)


class _Analyzer:
    def __init__(self) -> None:
        self.region_sites: Set[AbsLoc] = {ABS_ROOT}
        self.object_sites: Set[AbsLoc] = set()
        self.pi: Set[Tuple[AbsLoc, AbsLoc]] = set()
        self.phi: Set[Tuple[AbsLoc, AbsLoc]] = set()
        self.sigma: Set[Tuple[AbsLoc, AbsLoc]] = set()

    def regions_of(self, env: Env, var: Optional[str]) -> Set[AbsLoc]:
        if var is None:
            return {ABS_ROOT}
        values = env.get(var, frozenset())
        found = {v for v in values if v in self.region_sites}
        if ABS_NULL in values or not values:
            found.add(ABS_ROOT)
        return found

    def transfer(self, stmt: Stmt, state: _State) -> _State:
        env, heap = state.unpack()
        if isinstance(stmt, Init):
            env[stmt.x] = frozenset({ABS_NULL})
        elif isinstance(stmt, New):
            self.region_sites.add(stmt.site)
            for parent in self.regions_of(env, stmt.y):
                if parent != stmt.site:
                    self.pi.add((stmt.site, parent))
            env[stmt.x] = frozenset({stmt.site})  # strong update
        elif isinstance(stmt, Alloc):
            self.object_sites.add(stmt.site)
            for region in self.regions_of(env, stmt.y):
                self.phi.add((region, stmt.site))
            env[stmt.x] = frozenset({stmt.site})  # strong update
        elif isinstance(stmt, Copy):
            env[stmt.x] = env.get(stmt.y, frozenset())
        elif isinstance(stmt, LoadField):
            values: Set[AbsLoc] = {ABS_NULL}
            for loc in env.get(stmt.y, frozenset()):
                if loc in self.object_sites:
                    values |= heap.get((loc, stmt.f), frozenset())
            env[stmt.x] = frozenset(values)
        elif isinstance(stmt, StoreField):
            values = set(env.get(stmt.y, frozenset()))
            targets = [
                loc
                for loc in env.get(stmt.x, frozenset())
                if loc in self.object_sites
            ]
            for loc in targets:
                # Weak heap update: an abstract object may stand for many
                # concrete ones, so old field values must survive.
                heap[(loc, stmt.f)] = (
                    heap.get((loc, stmt.f), frozenset()) | values
                )
                self.sigma.update(
                    (loc, v) for v in values if v != ABS_NULL
                )
        elif isinstance(stmt, Seq):
            state = self.transfer(stmt.first, state)
            return self.transfer(stmt.second, state)
        elif isinstance(stmt, Branch):
            then_out = self.transfer(stmt.then, state)
            other_out = self.transfer(stmt.other, state)
            return _join(then_out, other_out)
        elif isinstance(stmt, Loop):
            head = state
            while True:
                body_out = self.transfer(stmt.body, head)
                joined = _join(head, body_out)
                if joined == head:
                    return head  # zero or more iterations
                head = joined
        else:
            raise TypeError(f"unknown statement {stmt!r}")
        return _State.make(env, heap)


def run_abstract_flow(stmt: Stmt) -> AbstractResult:
    """Flow-sensitive abstract interpretation; same result shape as
    :func:`repro.core.toylang.run_abstract`."""
    analyzer = _Analyzer()
    final = analyzer.transfer(stmt, _State.make({}, {}))
    env, heap = final.unpack()
    return AbstractResult(
        env={var: frozenset(values) for var, values in env.items()},
        heap={slot: frozenset(values) for slot, values in heap.items()},
        region_sites=frozenset(analyzer.region_sites),
        object_sites=frozenset(analyzer.object_sites),
        pi=frozenset(analyzer.pi),
        phi=frozenset(analyzer.phi),
        sigma=frozenset(analyzer.sigma),
    )
