"""Concrete syntax for the Section 4.1 toy language.

Lets tests and examples write programs in (nearly) the paper's own
notation::

    r  = rnew null;
    o1 = ralloc r;
    if ~ { x = o1 } else { x = null };
    while ~ { o1.f = x };

Statements are separated by ``;`` or newlines; ``~`` marks the unknown
condition; blocks use braces.  Every statement gets a unique ``site``
label (its 1-based ordinal), which the abstract semantics uses as its
allocation-site name.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.core.toylang import (
    Alloc,
    Branch,
    Copy,
    Init,
    LoadField,
    Loop,
    New,
    Stmt,
    StoreField,
    seq,
)

__all__ = ["ToyParseError", "parse_toy"]


class ToyParseError(Exception):
    """Malformed toy-language text."""


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<kw>rnew|ralloc|null|if|else|while)\b"
    r"|(?P<ident>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<punct>[{};=~.])"
    r"|(?P<bad>\S))"
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            break
        if match.group("bad"):
            raise ToyParseError(f"unexpected character {match.group('bad')!r}")
        if match.group("kw"):
            tokens.append(("kw", match.group("kw")))
        elif match.group("ident"):
            tokens.append(("ident", match.group("ident")))
        elif match.group("punct"):
            tokens.append(("punct", match.group("punct")))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._site = 0

    def _fresh_site(self) -> int:
        self._site += 1
        return self._site

    def _peek(self) -> Optional[Tuple[str, str]]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> Tuple[str, str]:
        token = self._peek()
        if token is None:
            raise ToyParseError("unexpected end of input")
        self._pos += 1
        return token

    def _accept(self, value: str) -> bool:
        token = self._peek()
        if token is not None and token[1] == value:
            self._pos += 1
            return True
        return False

    def _expect(self, value: str) -> None:
        token = self._next()
        if token[1] != value:
            raise ToyParseError(f"expected {value!r}, found {token[1]!r}")

    def parse_program(self) -> Stmt:
        stmts = self.parse_statements(until=None)
        if not stmts:
            raise ToyParseError("empty program")
        return seq(*stmts)

    def parse_statements(self, until: Optional[str]) -> List[Stmt]:
        stmts: List[Stmt] = []
        while True:
            token = self._peek()
            if token is None:
                if until is not None:
                    raise ToyParseError(f"missing {until!r}")
                return stmts
            if until is not None and token[1] == until:
                return stmts
            if token[1] == ";":
                self._pos += 1
                continue
            stmts.append(self.parse_statement())

    def parse_statement(self) -> Stmt:
        kind, value = self._next()
        if kind == "kw" and value == "if":
            self._expect("~")
            self._expect("{")
            then = self.parse_statements(until="}")
            self._expect("}")
            self._expect("else")
            self._expect("{")
            other = self.parse_statements(until="}")
            self._expect("}")
            site = self._fresh_site()
            return Branch(
                seq(*then) if then else Init("_", site=site),
                seq(*other) if other else Init("_", site=site),
            )
        if kind == "kw" and value == "while":
            self._expect("~")
            self._expect("{")
            body = self.parse_statements(until="}")
            self._expect("}")
            site = self._fresh_site()
            return Loop(seq(*body) if body else Init("_", site=site))
        if kind != "ident":
            raise ToyParseError(f"expected a statement, found {value!r}")
        target = value
        if self._accept("."):
            # x.f = y
            field_kind, field = self._next()
            if field_kind != "ident":
                raise ToyParseError(f"expected a field name, found {field!r}")
            self._expect("=")
            src_kind, src = self._next()
            if src_kind != "ident":
                raise ToyParseError(f"expected a variable, found {src!r}")
            return StoreField(target, field, src, site=self._fresh_site())
        self._expect("=")
        kind, value = self._next()
        if kind == "kw" and value == "null":
            return Init(target, site=self._fresh_site())
        if kind == "kw" and value == "rnew":
            arg = self._region_arg()
            return New(target, arg, site=self._fresh_site())
        if kind == "kw" and value == "ralloc":
            arg = self._region_arg()
            return Alloc(target, arg, site=self._fresh_site())
        if kind == "ident":
            if self._accept("."):
                field_kind, field = self._next()
                if field_kind != "ident":
                    raise ToyParseError(
                        f"expected a field name, found {field!r}"
                    )
                return LoadField(target, value, field, site=self._fresh_site())
            return Copy(target, value, site=self._fresh_site())
        raise ToyParseError(f"expected an expression, found {value!r}")

    def _region_arg(self) -> Optional[str]:
        kind, value = self._next()
        if kind == "kw" and value == "null":
            return None
        if kind == "ident":
            return value
        raise ToyParseError(f"expected a region or null, found {value!r}")


def parse_toy(text: str) -> Stmt:
    """Parse a toy-language program into its statement tree."""
    return _Parser(_tokenize(text)).parse_program()
