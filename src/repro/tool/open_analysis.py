"""Open-program analysis: checking libraries without a main (Section 8).

The paper's future work: "we are working on extensions to support
analysis of open programs such as libraries."  This module implements the
natural construction: synthesize a *harness* entry that calls every
exported function with maximally-unconstrained arguments --

* each region-typed parameter gets its own fresh region (children of the
  root, hence pairwise unordered: the conservative assumption about what
  callers may pass);
* each object-pointer parameter gets an object allocated from a fresh
  region of its own;
* scalars get zeros, unknown pointers get null --

and run the standard pipeline from that harness.  A warning then means
"some caller can make this library code inconsistent", which is exactly
the API-design signal of the Figure 12 case study.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.interfaces import RegionInterface
from repro.lang import analyze, parse
from repro.lang.types import CType, FunctionType, PointerType, StructType
from repro.pointer import AnalysisOptions
from repro.tool.regionwiz import RegionWizReport, run_regionwiz
from repro.util.budget import ResourceBudget
from repro.util.errors import InputError

__all__ = ["HARNESS_ENTRY", "build_harness", "analyze_open_program"]

HARNESS_ENTRY = "__open_harness"


def _region_struct_names(sema, interface: RegionInterface) -> Set[str]:
    """Struct tags that denote regions, discovered from the interface
    functions' prototypes (e.g. ``apr_pool_t``, ``region_``)."""
    names: Set[str] = set()

    def collect(ctype: Optional[CType]) -> None:
        # Unwrap pointers to find the underlying struct.
        while isinstance(ctype, PointerType):
            ctype = ctype.target
        if isinstance(ctype, StructType):
            names.add(ctype.name)

    for name in interface.function_names():
        ftype = sema.function_type(name)
        if ftype is None:
            continue
        collect(ftype.ret)
        for param in ftype.params:
            collect(param)
    return names


def _is_region_pointer(ctype: CType, region_structs: Set[str]) -> bool:
    return (
        isinstance(ctype, PointerType)
        and isinstance(ctype.target, StructType)
        and ctype.target.name in region_structs
    )


def build_harness(
    source: str,
    interface: RegionInterface,
    filename: str = "<library>",
    exports: Optional[List[str]] = None,
) -> str:
    """Append a synthetic entry that exercises every exported function."""
    sema = analyze(parse(source, filename))
    region_structs = _region_struct_names(sema, interface)
    is_apr = "apr_pool_create" in interface.creates

    lines: List[str] = ["", f"void {HARNESS_ENTRY}(void) {{"]
    counter = [0]

    def fresh_region(indent: str = "    ") -> str:
        counter[0] += 1
        name = f"__hr{counter[0]}"
        if is_apr:
            lines.append(f"{indent}apr_pool_t *{name};")
            lines.append(f"{indent}apr_pool_create(&{name}, NULL);")
        else:
            lines.append(f"{indent}region {name} = newregion();")
        return name

    alloc_fn = "apr_palloc" if is_apr else "ralloc"

    emitted = 0
    for fname, info in sema.functions.items():
        if exports is not None and fname not in exports:
            continue
        if interface.is_interface_function(fname):
            continue
        if fname.startswith("__"):
            continue
        args: List[str] = []
        skip = False
        for param in info.decl.params:
            ptype = param.type
            if _is_region_pointer(ptype, region_structs):
                args.append(fresh_region())
            elif isinstance(ptype, PointerType) and isinstance(
                ptype.target, FunctionType
            ):
                args.append("NULL")
            elif isinstance(ptype, PointerType):
                pool = fresh_region()
                counter[0] += 1
                obj = f"__ho{counter[0]}"
                lines.append(
                    f"    void *{obj} = {alloc_fn}({pool}, 64);"
                )
                args.append(obj)
            elif ptype.is_integral or ptype.is_void:
                args.append("0")
            elif isinstance(ptype, StructType):
                skip = True  # by-value aggregates: out of the subset
                break
            else:
                args.append("0")
        if skip:
            continue
        lines.append(f"    {fname}({', '.join(args)});")
        emitted += 1

    lines.append("}")
    if emitted == 0:
        raise InputError("no exported functions to harness")
    return source + "\n".join(lines) + "\n"


def analyze_open_program(
    source: str,
    interface: RegionInterface,
    filename: str = "<library>",
    exports: Optional[List[str]] = None,
    options: Optional[AnalysisOptions] = None,
    name: str = "library",
    solver_stats: bool = False,
    budget: Optional[ResourceBudget] = None,
    degrade: bool = False,
) -> RegionWizReport:
    """Run RegionWiz on a library via the synthesized open harness."""
    harnessed = build_harness(source, interface, filename, exports)
    return run_regionwiz(
        harnessed,
        filename=filename,
        interface=interface,
        entry=HARNESS_ENTRY,
        options=options,
        name=name,
        solver_stats=solver_stats,
        budget=budget,
        degrade=degrade,
    )
