"""Fault-isolated batch analysis: many units, one sweep, partial results.

The paper's evaluation runs RegionWiz over six packages totalling dozens
of executables; one crashing executable must not kill the sweep.
:func:`run_batch` analyzes a list of :class:`BatchUnit`\\ s with

* **per-unit isolation** -- any exception inside one unit (frontend
  diagnostics, budget exhaustion, internal crashes, injected faults) is
  captured as a structured :class:`UnitOutcome`, never escaping as a
  traceback;
* **``keep_going``** -- continue past failed units (otherwise the sweep
  stops at the first hard failure and the rest are recorded as skipped);
* **bounded retry** -- units failing with *internal* errors are retried
  up to ``max_retries`` times (input errors and budget exhaustion are
  deterministic, so retrying them is pointless);
* a **partial-results JSON summary** (:meth:`BatchResult.to_json`) and a
  **deterministic exit-code policy** (:meth:`BatchResult.exit_code`).

Exit-code policy: per unit, the single-run contract applies (0 clean /
1 warnings / 2 input error / 3 internal / 4 budget-exhausted-even-
degraded); the batch exit code is the *most severe* unit outcome under
the fixed severity order ``3 > 4 > 2 > 1 > 0`` (skipped units do not
contribute).
"""

from __future__ import annotations

import json
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.callgraph import ImplicitCallRegistry
from repro.interfaces import (
    RegionInterface,
    apr_pools_interface,
    rc_regions_interface,
)
from repro.lang.errors import CompileError
from repro.obs.metrics import aggregate_metrics, format_metrics
from repro.obs.trace import trace_span
from repro.pointer import AnalysisOptions
from repro.tool.regionwiz import RegionWizReport, run_regionwiz
from repro.util import faults
from repro.util.budget import ResourceBudget
from repro.util.errors import BudgetExceeded, InputError

__all__ = ["BatchUnit", "UnitOutcome", "BatchResult", "run_batch", "SEVERITY_ORDER"]

#: Batch exit code = first of these found among unit exit codes.
SEVERITY_ORDER = (3, 4, 2, 1, 0)


@dataclass(frozen=True)
class BatchUnit:
    """One independently analyzed translation unit."""

    name: str
    source: str
    filename: str = "<input>"
    interface: str = "apr"  # 'apr' | 'rc'
    entry: str = "main"

    def region_interface(self) -> RegionInterface:
        if self.interface == "rc":
            return rc_regions_interface()
        return apr_pools_interface()


@dataclass
class UnitOutcome:
    """The structured result of one unit (success or failure)."""

    unit: str
    status: str  # clean|warnings|input-error|budget-exhausted|internal-error|skipped
    exit_code: int
    attempts: int = 1
    precision: str = "full"
    warnings: int = 0
    high: int = 0
    error: Optional[str] = None
    error_type: Optional[str] = None
    error_detail: Optional[Dict[str, Any]] = None
    traceback: Optional[str] = None
    #: The full report for successful units (not serialized).
    report: Optional[RegionWizReport] = None

    @property
    def ok(self) -> bool:
        return self.status in ("clean", "warnings")

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "unit": self.unit,
            "status": self.status,
            "exit_code": self.exit_code,
            "attempts": self.attempts,
        }
        if self.ok:
            payload["precision"] = self.precision
            payload["warnings"] = self.warnings
            payload["high"] = self.high
            if self.report is not None and self.report.degraded:
                payload["degraded"] = True
                payload["degradation_path"] = list(
                    self.report.degradation_path
                )
            if self.report is not None and self.report.metrics is not None:
                payload["metrics"] = self.report.metrics.to_dict()
        if self.error is not None:
            payload["error"] = self.error
            payload["error_type"] = self.error_type
        if self.error_detail is not None:
            payload["error_detail"] = self.error_detail
        if self.traceback is not None:
            payload["traceback"] = self.traceback
        return payload


@dataclass
class BatchResult:
    """Every unit's outcome plus the aggregate exit-code policy."""

    outcomes: List[UnitOutcome] = field(default_factory=list)

    def outcome(self, unit: str) -> UnitOutcome:
        for outcome in self.outcomes:
            if outcome.unit == unit:
                return outcome
        raise KeyError(unit)

    @property
    def succeeded(self) -> List[UnitOutcome]:
        return [o for o in self.outcomes if o.ok]

    @property
    def failed(self) -> List[UnitOutcome]:
        return [
            o for o in self.outcomes if not o.ok and o.status != "skipped"
        ]

    def exit_code(self) -> int:
        codes = {
            o.exit_code for o in self.outcomes if o.status != "skipped"
        }
        for code in SEVERITY_ORDER:
            if code in codes:
                return code
        return 0

    def unit_metrics(self) -> List[Dict[str, Any]]:
        """Each successful unit's flat metrics dict (units without skipped)."""
        return [
            o.report.metrics.to_dict()
            for o in self.succeeded
            if o.report is not None and o.report.metrics is not None
        ]

    def fleet_metrics(self) -> Dict[str, Dict[str, float]]:
        """Fleet percentiles over every successful unit's metrics."""
        return aggregate_metrics(self.unit_metrics())

    def to_json(self, indent: int = 2) -> str:
        """The partial-results summary (stable schema for CI)."""
        payload = {
            "exit_code": self.exit_code(),
            "units": len(self.outcomes),
            "succeeded": len(self.succeeded),
            "failed": len(self.failed),
            "skipped": sum(
                1 for o in self.outcomes if o.status == "skipped"
            ),
            "results": [o.to_dict() for o in self.outcomes],
        }
        fleet = self.fleet_metrics()
        if fleet:
            payload["fleet_metrics"] = fleet
        return json.dumps(payload, indent=indent)

    def metrics_summary(self) -> str:
        """Per-unit metric table plus fleet percentiles, for ``--metrics``."""
        lines: List[str] = []
        for o in self.succeeded:
            if o.report is None or o.report.metrics is None:
                continue
            lines.append(f"metrics for {o.unit}:")
            lines.append(format_metrics(o.report.metrics.to_dict()))
        fleet = self.fleet_metrics()
        if fleet:
            lines.append(
                f"fleet metrics ({len(self.unit_metrics())} unit(s)):"
            )
            for name, summary in fleet.items():
                rendered = " ".join(
                    f"{key}={value}" for key, value in summary.items()
                )
                lines.append(f"  {name}  {rendered}")
        return "\n".join(lines) if lines else "(no metrics collected)"

    def summary(self) -> str:
        """Human-readable one-line-per-unit account."""
        lines = [
            f"batch: {len(self.succeeded)}/{len(self.outcomes)} unit(s)"
            f" analyzed, exit {self.exit_code()}"
        ]
        for o in self.outcomes:
            if o.ok:
                extra = (
                    f" degraded(precision={o.precision})"
                    if o.precision != "full"
                    else ""
                )
                lines.append(
                    f"  {o.unit}: {o.status} ({o.warnings} warning(s),"
                    f" {o.high} high){extra}"
                )
            elif o.status == "skipped":
                lines.append(f"  {o.unit}: skipped")
            else:
                lines.append(
                    f"  {o.unit}: {o.status} [{o.error_type}] {o.error}"
                )
        return "\n".join(lines)


def _analyze_unit(
    unit: BatchUnit,
    options: Optional[AnalysisOptions],
    budget: Optional[ResourceBudget],
    degrade: bool,
    refine: bool,
    solver_stats: bool,
    registry: Optional[ImplicitCallRegistry],
    max_retries: int,
) -> UnitOutcome:
    with trace_span("batch.unit", unit=unit.name) as span:
        outcome = _analyze_unit_isolated(
            unit,
            options,
            budget,
            degrade,
            refine,
            solver_stats,
            registry,
            max_retries,
        )
        span.set(
            status=outcome.status,
            exit_code=outcome.exit_code,
            attempts=outcome.attempts,
        )
        return outcome


def _analyze_unit_isolated(
    unit: BatchUnit,
    options: Optional[AnalysisOptions],
    budget: Optional[ResourceBudget],
    degrade: bool,
    refine: bool,
    solver_stats: bool,
    registry: Optional[ImplicitCallRegistry],
    max_retries: int,
) -> UnitOutcome:
    attempts = 0
    while True:
        attempts += 1
        try:
            faults.fire("batch-unit", unit=unit.name)
            report = run_regionwiz(
                unit.source,
                filename=unit.filename,
                interface=unit.region_interface(),
                entry=unit.entry,
                options=options,
                registry=registry,
                name=unit.name,
                refine=refine,
                solver_stats=solver_stats,
                budget=budget,
                degrade=degrade,
            )
        except (CompileError, InputError) as error:
            # Deterministic input failure: retrying cannot help.
            return UnitOutcome(
                unit=unit.name,
                status="input-error",
                exit_code=2,
                attempts=attempts,
                error=str(error),
                error_type=type(error).__name__,
            )
        except BudgetExceeded as error:
            # Deterministic resource exhaustion (even after degradation
            # when enabled): retrying the same budget cannot help.
            return UnitOutcome(
                unit=unit.name,
                status="budget-exhausted",
                exit_code=4,
                attempts=attempts,
                error=str(error),
                error_type=type(error).__name__,
                error_detail=error.to_dict(),
            )
        except Exception as error:  # internal crash: isolate, maybe retry
            if attempts <= max_retries:
                continue
            return UnitOutcome(
                unit=unit.name,
                status="internal-error",
                exit_code=3,
                attempts=attempts,
                error=str(error),
                error_type=type(error).__name__,
                traceback=traceback.format_exc(),
            )
        high = sum(1 for w in report.warnings if w.high_ranked)
        return UnitOutcome(
            unit=unit.name,
            status="warnings" if report.warnings else "clean",
            exit_code=1 if report.warnings else 0,
            attempts=attempts,
            precision=report.precision,
            warnings=len(report.warnings),
            high=high,
            report=report,
        )


def run_batch(
    units: Iterable[BatchUnit],
    options: Optional[AnalysisOptions] = None,
    budget: Optional[ResourceBudget] = None,
    degrade: bool = True,
    keep_going: bool = False,
    max_retries: int = 0,
    refine: bool = False,
    solver_stats: bool = False,
    registry: Optional[ImplicitCallRegistry] = None,
) -> BatchResult:
    """Analyze every unit with per-unit fault isolation.

    No exception escapes: each unit yields a :class:`UnitOutcome`.  With
    ``keep_going`` the sweep always covers every unit; without it, the
    first hard failure (exit code 2/3/4) stops the sweep and the
    remaining units are recorded as ``skipped``.
    """
    result = BatchResult()
    pending = list(units)
    for index, unit in enumerate(pending):
        outcome = _analyze_unit(
            unit,
            options,
            budget,
            degrade,
            refine,
            solver_stats,
            registry,
            max_retries,
        )
        result.outcomes.append(outcome)
        if not keep_going and outcome.exit_code in (2, 3, 4):
            for skipped in pending[index + 1:]:
                result.outcomes.append(
                    UnitOutcome(
                        unit=skipped.name,
                        status="skipped",
                        exit_code=0,
                        attempts=0,
                    )
                )
            break
    return result
