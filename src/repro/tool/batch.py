"""Fault-isolated batch analysis: many units, one sweep, partial results.

The paper's evaluation runs RegionWiz over six packages totalling dozens
of executables; one crashing executable must not kill the sweep.
:func:`run_batch` analyzes a list of :class:`BatchUnit`\\ s with

* **per-unit isolation** -- any exception inside one unit (frontend
  diagnostics, budget exhaustion, internal crashes, injected faults) is
  captured as a structured :class:`UnitOutcome`, never escaping as a
  traceback;
* **``keep_going``** -- continue past failed units (otherwise the sweep
  stops at the first hard failure and the rest are recorded as skipped);
* **bounded retry** -- units failing with *internal* errors are retried
  up to ``max_retries`` times (input errors and budget exhaustion are
  deterministic, so retrying them is pointless);
* a **partial-results JSON summary** (:meth:`BatchResult.to_json`) and a
  **deterministic exit-code policy** (:meth:`BatchResult.exit_code`).

Exit-code policy: per unit, the single-run contract applies (0 clean /
1 warnings / 2 input error / 3 internal / 4 budget-exhausted-even-
degraded); the batch exit code is the *most severe* unit outcome under
the fixed severity order ``3 > 4 > 2 > 1 > 0``.  Skipped units do not
contribute: their ``exit_code`` is ``None`` (``null`` in JSON), so a
stopped sweep can never be mistaken for a mostly-clean one by consumers
keying on exit codes.

Parallel sharding (``jobs > 1``)
--------------------------------

Units are independent by construction -- that independence is exactly
what the fault-isolation design guarantees -- so :func:`run_batch` can
fan them out to a :class:`~concurrent.futures.ProcessPoolExecutor`.
The dispatch is built so parallelism *pays* on paper-scale corpora:

* the per-batch invariant state (:class:`AnalysisOptions`, the
  :class:`ResourceBudget` template, the
  :class:`~repro.callgraph.ImplicitCallRegistry`, the fault-spec
  snapshot, and the tracer/event-log epochs) crosses the pool boundary
  **once per worker** through the pool ``initializer``, not once per
  unit -- a task pickles only ``(index, unit)`` pairs;
* units are dispatched in **contiguous chunks** so small units amortize
  the submit/result round trip, and the same **warm workers** serve
  every chunk of the batch -- worker startup is paid ``jobs`` times per
  sweep, never per unit;
* outcomes are reassembled in **submission order** regardless of
  completion order;
* armed fault-injection specs are re-installed per dispatched chunk
  from the worker-local snapshot so injection scopes correctly inside
  workers;
* worker-side metrics snapshots and trace spans are shipped back and
  merged into the parent's fleet percentiles and Chrome trace export
  (one lane per worker ``pid``);
* ``keep_going=False`` cancels not-yet-started chunks once a hard
  failure lands (a worker also abandons the rest of its own chunk),
  then **normalizes to serial semantics**: every unit after the
  earliest hard failure in submission order is reported ``skipped``,
  even if a worker happened to finish it first.  Because units are
  deterministic and independent, the parallel report is byte-identical
  to the serial one modulo timing/pid fields.

Supervision (crash-proofing)
----------------------------

With ``jobs > 1`` the pool runs under a
:class:`~repro.tool.supervise.BatchSupervisor` by default (see that
module for the full design): a SIGKILL'd/OOM'd worker no longer takes
the sweep down -- its units are retried on a respawned pool and a unit
that repeatedly kills workers is bisected solo and quarantined with a
``crashed`` outcome (exit 3); a hard per-unit wall-clock deadline
(``hard_timeout``, or budget wall clock x grace factor) SIGKILLs hung
units and records ``timeout`` outcomes (exit 4); a JSONL run
``journal`` of completed outcomes makes sweeps resumable
(``resume=True``) after even the parent dies; and SIGINT/SIGTERM drain
in-flight results into a partial report (``BatchResult.interrupted``).
Supervision keeps the serial-equivalence contract: a fault-free
supervised sweep produces byte-identical batch JSON, and transient
kills/hangs converge to the fault-free report (modulo ``attempts`` and
the ``supervision`` telemetry block).

Persistent caching
------------------

Pass ``cache=`` (an :class:`~repro.tool.cache.AnalysisCache` or a
directory path) and successful outcomes are stored content-addressed;
a warm re-run of an unchanged corpus skips analysis entirely, marking
each replayed outcome ``cached``.  Hit/miss counters land in the batch
JSON and :meth:`BatchResult.batch_metrics`.  The parallel scheduler
probes the cache for every unit up front; when a ``keep_going=False``
sweep stops early it retracts the probes past the failure point
(:meth:`AnalysisCache.uncount`), so reported counters match the serial
sweep's exactly.

Cache writes follow serial semantics under early stops: with
``keep_going=False``, results that in-flight workers deliver after the
earliest hard failure are relabelled ``skipped`` in the report, and
their outcomes are **not** persisted -- a serial run would never have
analyzed them, so caching them would let a warm re-run resurrect
results the batch report never produced.  Parallel stores are therefore
deferred until the sweep drains and flushed only for units *before* the
earliest hard failure (all of them when no hard failure occurred).
"""

from __future__ import annotations

import gc
import json
import math
import os
import signal as _signal_module
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.callgraph import ImplicitCallRegistry
from repro.interfaces import (
    RegionInterface,
    apr_pools_interface,
    rc_regions_interface,
)
from repro.lang.errors import CompileError
from repro.obs.events import (
    EventLog,
    current_event_log,
    emit_event,
    install_event_log,
    uninstall_event_log,
)
from repro.obs.history import WarningDiff, merge_diffs
from repro.obs.live import bus_event, current_bus
from repro.obs.metrics import (
    MetricsRegistry,
    aggregate_metrics,
    format_metrics,
    mem_profile_enabled,
    set_mem_profile,
)
from repro.obs.validate import LABELS as _VALIDATION_LABELS
from repro.obs.validate import VALIDATION_SCHEMA_VERSION, ValidationResult
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    _peak_rss_kb,
    current_tracer,
    install_tracer,
    trace_instant,
    trace_span,
    uninstall_tracer,
)
from repro.pointer import AnalysisOptions
from repro.tool.cache import AnalysisCache
from repro.tool.incremental import IncrementalUnitSession
from repro.tool.regionwiz import RegionWizReport, run_regionwiz
from repro.tool.supervise import (
    BatchSupervisor,
    RunJournal,
    SupervisePolicy,
    interruptible,
)
from repro.tool.validate import (
    DEFAULT_VALIDATE_STEPS,
    trace_out_path,
    validate_report,
)
from repro.util import faults
from repro.util.budget import ResourceBudget
from repro.util.errors import BudgetExceeded, InputError

__all__ = ["BatchUnit", "UnitOutcome", "BatchResult", "run_batch", "SEVERITY_ORDER"]

#: Batch exit code = first of these found among unit exit codes.
SEVERITY_ORDER = (3, 4, 2, 1, 0)

#: Unit exit codes that stop a ``keep_going=False`` sweep.
_HARD_FAILURES = (2, 3, 4)

#: Exponential backoff between ``max_retries`` attempts at a unit that
#: failed with an *internal* error: ``min(cap, base * 2**(attempt-1))``
#: seconds.  Retries exist for transient failures (resource spikes, OS
#: hiccups); re-running a crash back-to-back re-creates the exact
#: conditions that just failed.  Kept small: retried units hold a pool
#: worker, and deterministic crashes (the common case) pay the full
#: ladder before giving up.
_RETRY_BACKOFF_BASE = 0.02
_RETRY_BACKOFF_CAP = 0.5


@dataclass(frozen=True)
class BatchUnit:
    """One independently analyzed translation unit.

    ``interface=None`` (the default) auto-detects from the filename --
    ``.rc`` sources use the RC regions interface, everything else APR
    pools -- mirroring the single-run CLI's detection, so ``.rc`` corpus
    units fed through ``--batch`` get the right interface too.
    """

    name: str
    source: str
    filename: str = "<input>"
    interface: Optional[str] = None  # 'apr' | 'rc' | None = detect
    entry: str = "main"

    @property
    def effective_interface(self) -> str:
        if self.interface is not None:
            return self.interface
        return "rc" if self.filename.endswith(".rc") else "apr"

    def region_interface(self) -> RegionInterface:
        if self.effective_interface == "rc":
            return rc_regions_interface()
        return apr_pools_interface()


@dataclass
class UnitOutcome:
    """The structured result of one unit (success or failure).

    Everything the JSON summary needs is carried as plain data
    (``metrics`` is the registry's flat dict, not the registry), so an
    outcome crosses the process-pool boundary and the persistent cache
    without dragging the full :class:`RegionWizReport` along; ``report``
    is populated only for units analyzed in-process.
    """

    unit: str
    #: clean|warnings|input-error|budget-exhausted|internal-error|skipped
    #: plus two supervisor-recorded statuses: ``crashed`` (the worker
    #: *process* died and the unit was quarantined as the poison pill;
    #: exit 3) and ``timeout`` (SIGKILLed past the hard wall-clock
    #: deadline; exit 4, a ``BudgetExceeded`` in ``error_detail``).
    status: str
    exit_code: Optional[int]  # None for skipped units
    attempts: int = 1
    precision: str = "full"
    warnings: int = 0
    high: int = 0
    degraded: bool = False
    degradation_path: Tuple[str, ...] = ()
    #: Flat metrics payload (:meth:`MetricsRegistry.to_dict`) for ok units.
    metrics: Optional[Dict[str, Any]] = None
    #: Dynamic-validation payload
    #: (:meth:`repro.obs.validate.ValidationResult.to_payload`) when the
    #: sweep ran with ``validate=True``; deterministic, so serial and
    #: parallel batch JSON stay byte-identical.
    validation: Optional[Dict[str, Any]] = None
    #: Rendered warning lines (``[HIGH] ...``), for cross-mode equality
    #: checks and cache replay; not part of :meth:`to_dict`.
    warning_lines: List[str] = field(default_factory=list)
    #: Content-stable fingerprints, index-aligned with ``warning_lines``
    #: (see :mod:`repro.obs.fingerprint`); carried through the cache so
    #: replayed outcomes still diff against baselines.
    fingerprints: List[str] = field(default_factory=list)
    #: True when this outcome was replayed from the persistent cache.
    cached: bool = False
    #: True when this outcome was replayed from a run journal by
    #: ``resume=True`` (the unit was completed by an earlier, interrupted
    #: sweep and was not re-analyzed).
    resumed: bool = False
    #: CPU seconds this unit's analysis took in its process (0.0 for
    #: cache replays and skips).  CPU time, not wall time, so the
    #: reading stays meaningful when pool workers contend for cores.
    #: In-memory telemetry only -- deliberately kept out of
    #: :meth:`to_dict` so serial and parallel batch JSON stay
    #: byte-identical.
    elapsed: float = 0.0
    #: The pid of the pool worker that analyzed this unit (None when
    #: analyzed in-process).  In-memory only, like ``elapsed``.
    worker_pid: Optional[int] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    error_detail: Optional[Dict[str, Any]] = None
    traceback: Optional[str] = None
    #: The unit's fresh incremental-state payload when the sweep ran
    #: with ``incremental=True`` (see :mod:`repro.tool.incremental`).
    #: Crosses the pool as plain data but never enters :meth:`to_dict`
    #: or the outcome cache -- the *parent* persists it, reusing the
    #: deferred-store discipline that keeps serial and parallel cache
    #: directories identical.
    incremental_state: Optional[Dict[str, Any]] = None
    #: How the incremental session computed this unit ("served" when the
    #: stored outcome was replayed on a clean manifest diff, else the
    #: session mode: "delta"/"noop"/"resolve"/"cold").  In-memory
    #: telemetry only, like ``elapsed``.
    incremental_mode: Optional[str] = None
    #: The full report for units analyzed in this process (not serialized).
    report: Optional[RegionWizReport] = None

    @property
    def ok(self) -> bool:
        return self.status in ("clean", "warnings")

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "unit": self.unit,
            "status": self.status,
            "exit_code": self.exit_code,
            "attempts": self.attempts,
        }
        if self.ok:
            payload["precision"] = self.precision
            payload["warnings"] = self.warnings
            payload["high"] = self.high
            if self.degraded:
                payload["degraded"] = True
                payload["degradation_path"] = list(self.degradation_path)
            if self.metrics is not None:
                payload["metrics"] = dict(self.metrics)
            if self.validation is not None:
                payload["validation"] = dict(self.validation)
            if self.fingerprints:
                payload["fingerprints"] = list(self.fingerprints)
            if self.cached:
                payload["cached"] = True
        if self.resumed:
            payload["resumed"] = True
        if self.error is not None:
            payload["error"] = self.error
            payload["error_type"] = self.error_type
        if self.error_detail is not None:
            payload["error_detail"] = self.error_detail
        if self.traceback is not None:
            payload["traceback"] = self.traceback
        return payload

    # -- payload round trip (persistent cache and run journal) -------------

    def to_cache_payload(self) -> Dict[str, Any]:
        """The outcome as plain data, minus replay provenance.

        One schema serves both the persistent cache and the supervisor's
        run journal: ``cached``/``resumed`` are stripped because they
        describe *how this copy was obtained*, which the replaying side
        re-decides.
        """
        payload = self.to_dict()
        payload.pop("cached", None)
        payload.pop("resumed", None)
        payload["warning_lines"] = list(self.warning_lines)
        payload["fingerprints"] = list(self.fingerprints)
        return payload

    @classmethod
    def from_payload(
        cls,
        payload: Dict[str, Any],
        cached: bool = False,
        resumed: bool = False,
    ) -> "UnitOutcome":
        """Rebuild an outcome from a cache or journal payload.

        Unlike the cache (which only ever stores ``ok`` outcomes), the
        journal records failures too, so the error fields round-trip.
        """
        return cls(
            unit=payload["unit"],
            status=payload["status"],
            exit_code=payload["exit_code"],
            attempts=int(payload.get("attempts", 1)),
            precision=payload.get("precision", "full"),
            warnings=int(payload.get("warnings", 0)),
            high=int(payload.get("high", 0)),
            degraded=bool(payload.get("degraded", False)),
            degradation_path=tuple(payload.get("degradation_path", ())),
            metrics=payload.get("metrics"),
            validation=payload.get("validation"),
            warning_lines=list(payload.get("warning_lines", ())),
            fingerprints=list(payload.get("fingerprints", ())),
            cached=cached,
            resumed=resumed,
            error=payload.get("error"),
            error_type=payload.get("error_type"),
            error_detail=payload.get("error_detail"),
            traceback=payload.get("traceback"),
        )

    @classmethod
    def from_cache_payload(cls, payload: Dict[str, Any]) -> "UnitOutcome":
        return cls.from_payload(payload, cached=True)


def _skipped(unit_name: str) -> UnitOutcome:
    return UnitOutcome(
        unit=unit_name, status="skipped", exit_code=None, attempts=0
    )


@dataclass
class BatchResult:
    """Every unit's outcome plus the aggregate exit-code policy."""

    outcomes: List[UnitOutcome] = field(default_factory=list)
    #: Persistent-cache hit/miss counters (None: no cache configured).
    cache_counters: Optional[Dict[str, int]] = None
    #: Per-unit baseline diffs (set by the CLI when ``--baseline`` is
    #: given; see :func:`repro.obs.history.diff_outcomes`).
    per_unit_diff: Optional[Dict[str, WarningDiff]] = None
    #: True when the sweep was cut short by SIGINT/SIGTERM: everything
    #: completed before the signal is present, the rest is ``skipped``,
    #: and the CLI exits 130 regardless of :meth:`exit_code`.
    interrupted: bool = False
    #: Supervision telemetry (respawns / watchdog_kills / quarantined /
    #: timeouts / journal_recovered / resumed ...), present only when the
    #: supervisor actually intervened -- a fault-free sweep's JSON is
    #: byte-identical with supervision on or off.
    supervision: Optional[Dict[str, int]] = None
    #: Parent-generated run id (see :func:`repro.obs.live.new_run_id`);
    #: emitted in :meth:`to_json` only when set, so existing serial ≡
    #: parallel equality checks stay byte-exact by popping one key.
    run_id: Optional[str] = None

    def outcome(self, unit: str) -> UnitOutcome:
        for outcome in self.outcomes:
            if outcome.unit == unit:
                return outcome
        raise KeyError(unit)

    @property
    def succeeded(self) -> List[UnitOutcome]:
        return [o for o in self.outcomes if o.ok]

    @property
    def failed(self) -> List[UnitOutcome]:
        return [
            o for o in self.outcomes if not o.ok and o.status != "skipped"
        ]

    @property
    def skipped(self) -> List[UnitOutcome]:
        return [o for o in self.outcomes if o.status == "skipped"]

    def exit_code(self) -> int:
        codes = {
            o.exit_code for o in self.outcomes if o.status != "skipped"
        }
        for code in SEVERITY_ORDER:
            if code in codes:
                return code
        return 0

    def unit_metrics(self) -> List[Dict[str, Any]]:
        """Each successful unit's flat metrics dict (cached units included)."""
        return [o.metrics for o in self.succeeded if o.metrics is not None]

    def fleet_metrics(self) -> Dict[str, Dict[str, float]]:
        """Fleet percentiles over every successful unit's metrics."""
        return aggregate_metrics(self.unit_metrics())

    def batch_metrics(self) -> MetricsRegistry:
        """Batch-level counters: unit counts plus cache hits/misses."""
        registry = MetricsRegistry()
        registry.inc("batch.units", len(self.outcomes))
        registry.inc("batch.succeeded", len(self.succeeded))
        registry.inc("batch.failed", len(self.failed))
        registry.inc("batch.skipped", len(self.skipped))
        registry.inc(
            "batch.cached", sum(1 for o in self.outcomes if o.cached)
        )
        registry.inc(
            "batch.attempts", sum(o.attempts for o in self.outcomes)
        )
        registry.inc(
            "batch.retried",
            sum(1 for o in self.outcomes if o.attempts > 1),
        )
        registry.inc(
            "batch.resumed", sum(1 for o in self.outcomes if o.resumed)
        )
        if self.supervision:
            for key in sorted(self.supervision):
                registry.inc(
                    f"supervision.{key}", self.supervision[key]
                )
        if self.cache_counters is not None:
            # .get(): a zero-unit sweep (or a cache that never probed)
            # may carry partial counters; missing keys read as 0.
            registry.inc("cache.hits", self.cache_counters.get("hits", 0))
            registry.inc("cache.misses", self.cache_counters.get("misses", 0))
        return registry

    def merged_diff(self) -> Optional[WarningDiff]:
        """The fleet-wide baseline diff (None when no baseline was given)."""
        if self.per_unit_diff is None:
            return None
        return merge_diffs(self.per_unit_diff.values())

    def validation_summary(self) -> Optional[Dict[str, Any]]:
        """Fleet-wide dynamic-validation aggregate (None: no unit ran it).

        Sums per-unit label counts and per-ranking-bucket counts over
        every validated unit, then recomputes bucket precision from the
        summed counts (a mean of per-unit precisions would weight a
        one-warning unit the same as a fifty-warning one).
        """
        payloads = [
            o.validation for o in self.outcomes if o.validation is not None
        ]
        if not payloads:
            return None
        statuses: Dict[str, int] = {}
        totals: Dict[str, int] = {label: 0 for label in _VALIDATION_LABELS}
        buckets: Dict[str, Dict[str, Any]] = {}
        replay_mismatches = 0
        for payload in payloads:
            status = payload.get("status", "ok")
            statuses[status] = statuses.get(status, 0) + 1
            for label in _VALIDATION_LABELS:
                totals[label] += int(payload.get(label, 0))
            if payload.get("replay_consistent") is False:
                replay_mismatches += 1
            for bucket, counts in (payload.get("buckets") or {}).items():
                agg = buckets.setdefault(
                    bucket, {label: 0 for label in _VALIDATION_LABELS}
                )
                for label in _VALIDATION_LABELS:
                    agg[label] += int(counts.get(label, 0) or 0)
        for agg in buckets.values():
            observed = agg["confirmed"] + agg["unobserved"]
            agg["precision"] = (
                agg["confirmed"] / observed if observed else None
            )
        summary: Dict[str, Any] = {
            "schema": VALIDATION_SCHEMA_VERSION,
            "units": len(payloads),
            "statuses": dict(sorted(statuses.items())),
            "replay_mismatches": replay_mismatches,
            "buckets": {name: buckets[name] for name in sorted(buckets)},
        }
        summary.update(totals)
        return summary

    def to_json(self, indent: int = 2) -> str:
        """The partial-results summary (stable schema for CI)."""
        payload = {
            "exit_code": self.exit_code(),
            "units": len(self.outcomes),
            "succeeded": len(self.succeeded),
            "failed": len(self.failed),
            "skipped": len(self.skipped),
            "results": [o.to_dict() for o in self.outcomes],
        }
        if self.run_id is not None:
            payload["run_id"] = self.run_id
        if self.interrupted:
            payload["interrupted"] = True
        if self.supervision:
            payload["supervision"] = dict(self.supervision)
        if self.cache_counters is not None:
            payload["cache"] = dict(self.cache_counters)
        fleet = self.fleet_metrics()
        if fleet:
            payload["fleet_metrics"] = fleet
        validation = self.validation_summary()
        if validation is not None:
            payload["validation"] = validation
        if self.per_unit_diff is not None:
            merged = self.merged_diff()
            assert merged is not None
            payload["baseline_diff"] = {
                "counts": merged.counts(),
                "units": {
                    unit: diff.to_dict()
                    for unit, diff in sorted(self.per_unit_diff.items())
                },
            }
        return json.dumps(payload, indent=indent)

    def metrics_summary(self) -> str:
        """Per-unit metric table plus fleet percentiles, for ``--metrics``."""
        lines: List[str] = []
        for o in self.succeeded:
            if o.metrics is None:
                continue
            lines.append(f"metrics for {o.unit}:")
            lines.append(format_metrics(o.metrics))
        fleet = self.fleet_metrics()
        if fleet:
            lines.append(
                f"fleet metrics ({len(self.unit_metrics())} unit(s)):"
            )
            for name, summary in fleet.items():
                rendered = " ".join(
                    f"{key}={value}" for key, value in summary.items()
                )
                lines.append(f"  {name}  {rendered}")
        lines.append("batch metrics:")
        lines.append(format_metrics(self.batch_metrics().to_dict()))
        return "\n".join(lines)

    def summary(self) -> str:
        """Human-readable one-line-per-unit account."""
        lines = [
            f"batch: {len(self.succeeded)}/{len(self.outcomes)} unit(s)"
            f" analyzed, exit {130 if self.interrupted else self.exit_code()}"
        ]
        if self.interrupted:
            lines.append(
                "  sweep interrupted: partial results below, resume with"
                " --journal/--resume"
            )
        for o in self.outcomes:
            if o.ok:
                extra = (
                    f" degraded(precision={o.precision})"
                    if o.precision != "full"
                    else ""
                )
                if o.validation is not None:
                    extra += (
                        f" validated({o.validation.get('confirmed', 0)}"
                        " confirmed)"
                    )
                if o.cached:
                    extra += " (cached)"
                if o.resumed:
                    extra += " (resumed)"
                lines.append(
                    f"  {o.unit}: {o.status} ({o.warnings} warning(s),"
                    f" {o.high} high){extra}"
                )
            elif o.status == "skipped":
                lines.append(f"  {o.unit}: skipped")
            else:
                lines.append(
                    f"  {o.unit}: {o.status} [{o.error_type}] {o.error}"
                )
        merged = self.merged_diff()
        if merged is not None:
            lines.append(merged.format())
        return "\n".join(lines)


def _analyze_unit(
    unit: BatchUnit,
    options: Optional[AnalysisOptions],
    budget: Optional[ResourceBudget],
    degrade: bool,
    refine: bool,
    solver_stats: bool,
    registry: Optional[ImplicitCallRegistry],
    max_retries: int,
    validate: bool = False,
    validate_steps: int = DEFAULT_VALIDATE_STEPS,
    trace_dir: Optional[str] = None,
    incremental_cache: Optional[AnalysisCache] = None,
    identity: Optional[str] = None,
) -> UnitOutcome:
    with trace_span("batch.unit", unit=unit.name) as span:
        started = time.process_time()
        outcome = _analyze_unit_isolated(
            unit,
            options,
            budget,
            degrade,
            refine,
            solver_stats,
            registry,
            max_retries,
            validate=validate,
            validate_steps=validate_steps,
            trace_dir=trace_dir,
            incremental_cache=incremental_cache,
            identity=identity,
        )
        outcome.elapsed = time.process_time() - started
        span.set(
            status=outcome.status,
            exit_code=outcome.exit_code,
            attempts=outcome.attempts,
        )
        return outcome


def _analyze_unit_isolated(
    unit: BatchUnit,
    options: Optional[AnalysisOptions],
    budget: Optional[ResourceBudget],
    degrade: bool,
    refine: bool,
    solver_stats: bool,
    registry: Optional[ImplicitCallRegistry],
    max_retries: int,
    validate: bool = False,
    validate_steps: int = DEFAULT_VALIDATE_STEPS,
    trace_dir: Optional[str] = None,
    incremental_cache: Optional[AnalysisCache] = None,
    identity: Optional[str] = None,
) -> UnitOutcome:
    session: Optional[IncrementalUnitSession] = None
    if incremental_cache is not None and identity is not None:
        session = IncrementalUnitSession(incremental_cache, identity)
        diff = session.probe(unit.source, unit.filename)
        if diff is not None and diff.clean:
            served = session.served_outcome()
            if served is not None:
                try:
                    outcome = UnitOutcome.from_payload(served)
                except (KeyError, TypeError, ValueError):
                    outcome = None
                if (
                    outcome is not None
                    and outcome.unit == unit.name
                    and outcome.ok
                ):
                    # A clean manifest diff proves the stored outcome is
                    # exact for this source (locations included); serve
                    # it without running the pipeline.  ``cached`` stays
                    # False so the parent still persists it under the
                    # *current* source's exact cache key.
                    outcome.incremental_mode = "served"
                    trace_instant("batch.manifest-hit", unit=unit.name)
                    emit_event(
                        "incremental.serve", unit=unit.name, key=identity
                    )
                    return outcome
    attempts = 0
    while True:
        attempts += 1
        try:
            faults.fire("batch-unit", unit=unit.name)
            report = run_regionwiz(
                unit.source,
                filename=unit.filename,
                interface=unit.region_interface(),
                entry=unit.entry,
                options=options,
                registry=registry,
                name=unit.name,
                refine=refine,
                solver_stats=solver_stats,
                budget=budget,
                degrade=degrade,
                incremental=session,
            )
        except (CompileError, InputError) as error:
            # Deterministic input failure: retrying cannot help.
            return UnitOutcome(
                unit=unit.name,
                status="input-error",
                exit_code=2,
                attempts=attempts,
                error=str(error),
                error_type=type(error).__name__,
            )
        except BudgetExceeded as error:
            # Deterministic resource exhaustion (even after degradation
            # when enabled): retrying the same budget cannot help.
            return UnitOutcome(
                unit=unit.name,
                status="budget-exhausted",
                exit_code=4,
                attempts=attempts,
                error=str(error),
                error_type=type(error).__name__,
                error_detail=error.to_dict(),
            )
        except Exception as error:  # internal crash: isolate, maybe retry
            if attempts <= max_retries:
                time.sleep(
                    min(
                        _RETRY_BACKOFF_CAP,
                        _RETRY_BACKOFF_BASE * (2 ** (attempts - 1)),
                    )
                )
                continue
            return UnitOutcome(
                unit=unit.name,
                status="internal-error",
                exit_code=3,
                attempts=attempts,
                error=str(error),
                error_type=type(error).__name__,
                traceback=traceback.format_exc(),
            )
        high = sum(1 for w in report.warnings if w.high_ranked)
        validation_payload: Optional[Dict[str, Any]] = None
        if validate:
            # Dynamic validation runs inside the unit's fault-isolation
            # scope and *before* metrics are snapshotted, so the
            # validation.* gauges land in the outcome's metrics payload.
            # validate_report already degrades interpreter failures to a
            # status; the extra except keeps a simulator crash from
            # turning a successful analysis into a failed unit.
            trace_path = (
                trace_out_path(trace_dir, unit.name)
                if trace_dir is not None
                else None
            )
            try:
                validation_payload = validate_report(
                    report, max_steps=validate_steps, trace_path=trace_path
                ).to_payload()
            except Exception as error:
                validation_payload = ValidationResult(
                    status="validate-error",
                    error=f"{type(error).__name__}: {error}",
                ).to_payload()
        outcome = UnitOutcome(
            unit=unit.name,
            status="warnings" if report.warnings else "clean",
            exit_code=1 if report.warnings else 0,
            attempts=attempts,
            precision=report.precision,
            warnings=len(report.warnings),
            high=high,
            degraded=report.degraded,
            degradation_path=tuple(report.degradation_path),
            metrics=(
                report.metrics.to_dict() if report.metrics is not None else None
            ),
            validation=validation_payload,
            warning_lines=[str(w) for w in report.warnings],
            fingerprints=[w.fingerprint for w in report.warnings],
            report=report,
        )
        if session is not None:
            # Bundle the outcome into the state so a future warm run can
            # serve it on a clean manifest diff, then hand the payload to
            # the caller -- the parent persists it (deferred-store
            # discipline), never the worker.
            session.record_outcome(outcome.to_cache_payload())
            outcome.incremental_state = session.export_state()
            outcome.incremental_mode = session.mode
        return outcome


# ---------------------------------------------------------------------------
# Persistent cache plumbing
# ---------------------------------------------------------------------------


def _unit_cache_key(
    cache: AnalysisCache,
    unit: BatchUnit,
    options: Optional[AnalysisOptions],
    budget: Optional[ResourceBudget],
    degrade: bool,
    refine: bool,
    solver_stats: bool,
    validate_key: Optional[Dict[str, Any]] = None,
) -> str:
    return cache.key(
        source=unit.source,
        filename=unit.filename,
        interface=unit.effective_interface,
        entry=unit.entry,
        options=options,
        budget=budget,
        degrade=degrade,
        refine=refine,
        solver_stats=solver_stats,
        validate=validate_key,
    )


def _cache_lookup(
    cache: Optional[AnalysisCache], key: Optional[str], unit: BatchUnit
) -> Optional[UnitOutcome]:
    if cache is None or key is None:
        return None
    payload = cache.lookup(key)
    if payload is None:
        emit_event("cache.miss", unit=unit.name, key=key)
        return None
    try:
        outcome = UnitOutcome.from_cache_payload(payload)
    except (KeyError, TypeError, ValueError):
        # A structurally valid JSON file with the wrong shape: treat as
        # a corrupt entry -- fall back to analysis.
        cache.hits -= 1
        cache.misses += 1
        emit_event("cache.miss", unit=unit.name, key=key, corrupt=True)
        return None
    if outcome.unit != unit.name or not outcome.ok:
        cache.hits -= 1
        cache.misses += 1
        emit_event("cache.miss", unit=unit.name, key=key, mismatch=True)
        return None
    trace_instant("batch.cache-hit", unit=unit.name)
    emit_event("cache.hit", unit=unit.name, key=key)
    return outcome


def _cache_store(
    cache: Optional[AnalysisCache], key: Optional[str], outcome: UnitOutcome
) -> None:
    if cache is None or key is None or not outcome.ok or outcome.cached:
        return
    cache.store(key, outcome.to_cache_payload())


def _unit_identity_key(
    unit: BatchUnit,
    options: Optional[AnalysisOptions],
    budget: Optional[ResourceBudget],
    degrade: bool,
    refine: bool,
    solver_stats: bool,
    validate_key: Optional[Dict[str, Any]] = None,
) -> str:
    """The unit's source-independent state address (static, like
    :func:`_journal_key` -- workers recompute it without a cache)."""
    return AnalysisCache.identity_key(
        name=unit.name,
        filename=unit.filename,
        interface=unit.effective_interface,
        entry=unit.entry,
        options=options,
        budget=budget,
        degrade=degrade,
        refine=refine,
        solver_stats=solver_stats,
        validate=validate_key,
    )


def _state_store(
    cache: Optional[AnalysisCache],
    identity: Optional[str],
    outcome: UnitOutcome,
) -> None:
    """Persist a unit's fresh incremental state (parent side only)."""
    if (
        cache is None
        or identity is None
        or outcome.incremental_state is None
        or not outcome.ok
    ):
        return
    cache.store_state(identity, outcome.incremental_state)


# ---------------------------------------------------------------------------
# The process-pool shard scheduler
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _WorkerConfig:
    """The per-batch invariant state: everything every unit's analysis
    needs but that never varies within one sweep.  Shipped to each pool
    worker exactly once, through the pool ``initializer`` -- the old
    dispatch re-pickled all of it (options, budget, registry, fault
    specs, epochs) into every per-unit task, which is pure overhead on
    corpora of hundreds of units.
    """

    options: Optional[AnalysisOptions]
    budget: Optional[ResourceBudget]
    degrade: bool
    refine: bool
    solver_stats: bool
    registry: Optional[ImplicitCallRegistry]
    max_retries: int
    fault_specs: List[faults.FaultSpec]
    #: Parent tracer epoch (None: tracing off).
    trace_epoch: Optional[float]
    #: Parent event-log path/epoch (None: event logging off).
    events_path: Optional[str]
    events_epoch: Optional[float]
    keep_going: bool
    #: The supervisor's run journal (None: supervision off) -- workers
    #: heartbeat ``unit.start``, append completed ``unit.done`` payloads,
    #: and record destructive fault firings into it.
    journal_path: Optional[str] = None
    #: Dynamic validation (``--validate``): run each successful unit's
    #: entry point under the traced interpreter and attach the
    #: validation payload to its outcome.
    validate: bool = False
    validate_steps: int = DEFAULT_VALIDATE_STEPS
    #: Directory for per-unit trace artifacts (``--trace-out``).
    trace_dir: Optional[str] = None
    #: Incremental re-analysis (``--incremental``): workers load per-unit
    #: state from the cache directory and run the delta re-solve; fresh
    #: state rides back on the outcome for the parent to persist.
    incremental: bool = False
    cache_root: Optional[str] = None
    #: Parent-generated run id (None when the caller did not thread one).
    run_id: Optional[str] = None
    #: Live telemetry (``--live``/``--metrics-port``): workers piggyback
    #: one small ``telemetry`` record per completed unit on the journal
    #: heartbeat channel (rss/cpu deltas for the parent's fleet view).
    telemetry: bool = False
    #: Per-phase tracemalloc peaks (``--mem-profile``), armed per worker
    #: process via :func:`repro.obs.metrics.set_mem_profile`.
    mem_profile: bool = False


def _config_validate_key(
    config: _WorkerConfig,
) -> Optional[Dict[str, Any]]:
    """The validation key material, reconstructed worker-side (it must
    hash identically to the parent's, or identity keys diverge)."""
    if not config.validate:
        return None
    return {
        "schema": VALIDATION_SCHEMA_VERSION,
        "steps": int(config.validate_steps),
    }


#: This worker's copy of the batch config, set by :func:`_worker_init`.
_WORKER_CONFIG: Optional[_WorkerConfig] = None

#: The worker's journal append handle, opened lazily per process (same
#: one-line-per-write discipline as the event log, so parent and worker
#: appends interleave at line granularity).
_WORKER_JOURNAL = None


def _worker_journal_append(payload: Dict[str, Any]) -> None:
    global _WORKER_JOURNAL
    assert _WORKER_CONFIG is not None and _WORKER_CONFIG.journal_path
    if _WORKER_JOURNAL is None or _WORKER_JOURNAL.closed:
        _WORKER_JOURNAL = open(
            _WORKER_CONFIG.journal_path, "a", buffering=1
        )
    _WORKER_JOURNAL.write(json.dumps(payload, sort_keys=True) + "\n")


def _worker_fault_hook(
    spec: faults.FaultSpec, unit: Optional[str]
) -> None:
    """Journal a destructive fault firing *before* it executes.

    A ``kill``/``hang`` takes the worker down with it, so this journal
    line is the only record the parent ever gets that the armed
    ``times=`` count was consumed; the supervisor replays it against its
    master snapshot (see
    :meth:`repro.tool.supervise.BatchSupervisor._consume_fault`).
    """
    if spec.action not in ("kill", "hang"):
        return
    _worker_journal_append(
        {
            "kind": "fault.fired",
            "point": spec.point,
            "action": spec.action,
            "unit": unit,
            "pid": os.getpid(),
            "t": time.time(),
        }
    )

#: The worker's event log, cached per process: a pool worker handles
#: many chunks, and reopening the log per chunk would restart its seq
#: counter -- seq must stay monotonic per *process* for the global
#: (t_ms, pid, seq) ordering to hold.
_WORKER_EVENT_LOG: Optional[EventLog] = None


def _worker_event_log(path: str, epoch: Optional[float]) -> EventLog:
    global _WORKER_EVENT_LOG
    if _WORKER_EVENT_LOG is None or _WORKER_EVENT_LOG.path != path:
        if _WORKER_EVENT_LOG is not None:
            _WORKER_EVENT_LOG.close()
        _WORKER_EVENT_LOG = EventLog(path, epoch=epoch, append=True)
    return _WORKER_EVENT_LOG


def _worker_init(config: _WorkerConfig) -> None:
    """Pool initializer: receive the batch config once, warm the worker.

    Runs once per worker process at spawn.  Freezes the inherited heap
    out of the cyclic GC: a forked worker inherits everything the
    parent retained (on a fork start-method, possibly whole prior batch
    reports), and the first full collection in the child would walk all
    of it -- touching every object's header, copy-on-write-faulting the
    shared pages, and billing seconds of CPU to whatever unit happened
    to run first.  None of that inherited state is garbage the worker
    could free, so ``gc.freeze`` moves it to the permanent generation.

    Also opens the parent's event log (appending on the parent's
    timeline; each record is one short write, so parent and worker
    lines interleave cleanly) and drops any tracer or event log
    inherited through ``fork`` when the parent has them disabled.
    """
    global _WORKER_CONFIG
    _WORKER_CONFIG = config
    gc.freeze()
    try:
        # The parent runs sweeps under interruptible() (SIGTERM ->
        # KeyboardInterrupt) and workers fork while it is installed; a
        # worker must just die on SIGTERM (pool teardown terminates
        # idle workers), not raise a phantom interrupt into the
        # executor plumbing.
        _signal_module.signal(_signal_module.SIGTERM, _signal_module.SIG_DFL)
    except (ValueError, OSError):
        pass
    if config.events_path is not None:
        install_event_log(
            _worker_event_log(config.events_path, config.events_epoch)
        )
    else:
        uninstall_event_log(None)  # drop any log inherited through fork
    if config.trace_epoch is None:
        uninstall_tracer(None)  # drop any tracer inherited through fork
    if config.journal_path is not None:
        faults.set_fire_hook(_worker_fault_hook)
    else:
        faults.set_fire_hook(None)  # drop a hook inherited through fork
    set_mem_profile(config.mem_profile)


#: One dispatched task: a contiguous run of ``(index, unit, key)``
#: triples -- ``key`` is the unit's content key (journal identity; None
#: when neither journal nor cache is configured).
_WorkerChunk = List[Tuple[int, BatchUnit, Optional[str]]]


def _worker_analyze_chunk(
    chunk: _WorkerChunk,
) -> Tuple[List[Tuple[int, UnitOutcome]], List[SpanRecord], int]:
    """Analyze one chunk of units inside a warm pool worker.

    Re-arms the fault-spec snapshot from the worker-local config (one
    dispatch = one chunk, preserving the documented per-dispatch scope
    of bare ``times=`` specs) and, when the parent is tracing, records
    the chunk under a fresh tracer pinned to the parent's epoch.  Ships
    back the slimmed outcomes, the recorded span roots, and this
    worker's pid.  Under ``keep_going=False`` the rest of the chunk is
    abandoned after a hard failure -- the parent would relabel those
    units ``skipped`` anyway, exactly as a serial run never reaches
    them.

    Under supervision each unit is bracketed by journal heartbeats: a
    ``unit.start`` before analysis (the parent's watchdog clock and, if
    this process dies, the crash attribution) and a ``unit.done``
    carrying the full outcome payload after (so results that completed
    before a later unit killed the worker are adopted, not re-run).
    """
    assert _WORKER_CONFIG is not None, "worker used without initializer"
    config = _WORKER_CONFIG
    journaling = config.journal_path is not None
    incremental_cache: Optional[AnalysisCache] = None
    if config.incremental and config.cache_root is not None:
        # Worker-local handle on the shared cache directory; counters on
        # it are throwaway (the parent owns the reported counters).
        incremental_cache = AnalysisCache(config.cache_root)
    faults.install(config.fault_specs)
    tracer = (
        Tracer(epoch=config.trace_epoch)
        if config.trace_epoch is not None
        else None
    )
    if tracer is not None:
        install_tracer(tracer)
    results: List[Tuple[int, UnitOutcome]] = []
    try:
        for index, unit, key in chunk:
            if journaling:
                _worker_journal_append(
                    {
                        "kind": "unit.start",
                        "index": index,
                        "unit": unit.name,
                        "pid": os.getpid(),
                        "t": time.time(),
                    }
                )
            identity: Optional[str] = None
            if incremental_cache is not None:
                identity = _unit_identity_key(
                    unit,
                    config.options,
                    config.budget,
                    config.degrade,
                    config.refine,
                    config.solver_stats,
                    _config_validate_key(config),
                )
            outcome = _analyze_unit(
                unit,
                config.options,
                config.budget,
                config.degrade,
                config.refine,
                config.solver_stats,
                config.registry,
                config.max_retries,
                validate=config.validate,
                validate_steps=config.validate_steps,
                trace_dir=config.trace_dir,
                incremental_cache=incremental_cache,
                identity=identity,
            )
            outcome.report = None  # the full report does not cross the pool
            outcome.worker_pid = os.getpid()
            results.append((index, outcome))
            if journaling:
                _worker_journal_append(
                    {
                        "kind": "unit.done",
                        "index": index,
                        "unit": unit.name,
                        "key": key,
                        "pid": os.getpid(),
                        "t": time.time(),
                        "outcome": outcome.to_cache_payload(),
                    }
                )
                if config.telemetry:
                    # The live-telemetry piggyback: one extra journal
                    # line per completed unit, riding the heartbeat
                    # channel the supervisor already tails -- no second
                    # IPC path, no cost when telemetry is off.
                    _worker_journal_append(
                        {
                            "kind": "telemetry",
                            "index": index,
                            "unit": unit.name,
                            "pid": os.getpid(),
                            "t": time.time(),
                            "rss_kb": _peak_rss_kb(),
                            "cpu_s": round(time.process_time(), 6),
                            "run": config.run_id,
                        }
                    )
            if not config.keep_going and outcome.exit_code in _HARD_FAILURES:
                break
    finally:
        if tracer is not None:
            uninstall_tracer(None)
        faults.clear()
    roots = tracer.roots if tracer is not None else []
    return results, roots, os.getpid()


def _solo_entry(
    config: _WorkerConfig,
    index: int,
    unit: BatchUnit,
    key: Optional[str],
    conn,
) -> None:
    """Bisection child: one unit, one fresh process, result via pipe.

    Reuses the full chunk path (journal heartbeats, fault snapshot,
    event log) so a solo run is observably identical to a pool run of a
    single-unit chunk.  If the unit kills this process too, the parent
    reads the exitcode/signal off the dead child and quarantines the
    unit; trace spans are not shipped (the pool path's tracer adoption
    needs the executor plumbing, and a bisection rerun's spans are not
    worth a second IPC channel).
    """
    _worker_init(config)
    results, _roots, _pid = _worker_analyze_chunk([(index, unit, key)])
    _, outcome = results[0]
    conn.send(outcome.to_cache_payload())
    conn.close()


def _pool_failure_outcome(unit: BatchUnit, error: BaseException) -> UnitOutcome:
    """A structured outcome for a unit whose *worker* died (not the unit)."""
    return UnitOutcome(
        unit=unit.name,
        status="internal-error",
        exit_code=3,
        attempts=1,
        error=f"worker process failed: {error}",
        error_type=type(error).__name__,
    )


def _chunked(indices: List[int], workers: int, chunk_size: Optional[int]) -> List[List[int]]:
    """Contiguous chunks of submission indices, FIFO order.

    Contiguity + FIFO dispatch is what makes early-stop normalization
    sound: whenever a chunk is cancelled before starting, every unit in
    it has a higher submission index than every unit already completed
    or in flight, so the "earliest hard failure" scan never misses a
    unit a serial run would have reached first.

    The default size targets ~4 chunks per worker: large enough that
    small units amortize the submit/result round trip, small enough
    that the tail of the sweep still load-balances.
    """
    if chunk_size is None:
        chunk_size = max(1, min(8, math.ceil(len(indices) / (workers * 4))))
    return [
        indices[start:start + chunk_size]
        for start in range(0, len(indices), chunk_size)
    ]


def _run_batch_parallel(
    units: List[BatchUnit],
    options: Optional[AnalysisOptions],
    budget: Optional[ResourceBudget],
    degrade: bool,
    keep_going: bool,
    max_retries: int,
    refine: bool,
    solver_stats: bool,
    registry: Optional[ImplicitCallRegistry],
    jobs: int,
    cache: Optional[AnalysisCache],
    cache_keys: List[Optional[str]],
    chunk_size: Optional[int] = None,
    journal: Optional[RunJournal] = None,
    journal_keys: Optional[List[Optional[str]]] = None,
    policy: Optional[SupervisePolicy] = None,
    resumed_slots: Optional[Dict[int, UnitOutcome]] = None,
    validate: bool = False,
    validate_steps: int = DEFAULT_VALIDATE_STEPS,
    trace_dir: Optional[str] = None,
    incremental: bool = False,
    identity_keys: Optional[List[Optional[str]]] = None,
    run_id: Optional[str] = None,
) -> Tuple[List[Optional[UnitOutcome]], Dict[str, int], bool]:
    """Fan unit chunks out to a supervised warm process pool.

    Returns ``(slots, supervision_stats, interrupted)``.  A ``None``
    slot means the unit never ran (cancelled after an early stop, or
    still in flight when the sweep was interrupted); the caller turns
    those -- and, without ``keep_going``, every slot after the earliest
    hard failure -- into ``skipped`` outcomes.

    The :class:`~repro.tool.supervise.BatchSupervisor` owns the pool
    lifecycle: with a journal it recovers from dead workers, enforces
    the hard per-unit deadline, and drains on SIGINT/SIGTERM; without
    one (supervision disabled) the same loop degrades to fail-the-chunk
    semantics with zero extra machinery on the unit path.

    Without ``keep_going``, cache stores are deferred until the pool
    drains and flushed only for units *before* the earliest hard
    failure: an in-flight worker may deliver a result after the stop,
    and persisting it would let a warm re-run resurrect an outcome the
    batch report relabelled ``skipped`` (diverging from the serial
    cache state).  The same deferral covers interrupted sweeps -- only
    outcomes the partial report actually carries are persisted.
    """
    policy = policy or SupervisePolicy()
    slots: List[Optional[UnitOutcome]] = [None] * len(units)
    to_run: List[int] = []
    for index, unit in enumerate(units):
        if resumed_slots and index in resumed_slots:
            slots[index] = resumed_slots[index]
            bus_event("unit.done", index=index, outcome=slots[index])
            continue
        hit = _cache_lookup(cache, cache_keys[index], unit)
        if hit is not None:
            slots[index] = hit
            bus_event("unit.done", index=index, outcome=hit)
        else:
            to_run.append(index)
    if not to_run:
        return slots, {}, False

    tracer = current_tracer()
    event_log = current_event_log()
    keys = journal_keys if journal_keys is not None else cache_keys

    def make_config(fault_specs: List[faults.FaultSpec]) -> _WorkerConfig:
        return _WorkerConfig(
            options=options,
            budget=budget,
            degrade=degrade,
            refine=refine,
            solver_stats=solver_stats,
            registry=registry,
            max_retries=max_retries,
            fault_specs=fault_specs,
            trace_epoch=tracer.epoch if tracer is not None else None,
            events_path=event_log.path if event_log is not None else None,
            events_epoch=event_log.epoch if event_log is not None else None,
            keep_going=keep_going,
            journal_path=journal.path if journal is not None else None,
            validate=validate,
            validate_steps=validate_steps,
            trace_dir=trace_dir,
            incremental=incremental,
            cache_root=cache.root if cache is not None else None,
            run_id=run_id,
            # Worker telemetry piggybacks on the journal, so it needs
            # both a live bus parent-side and a journal to ride on.
            telemetry=current_bus() is not None and journal is not None,
            mem_profile=mem_profile_enabled(),
        )

    def adopt(roots: List[SpanRecord], pid: int) -> None:
        if tracer is not None and roots:
            tracer.adopt(roots, pid=pid)

    supervisor = BatchSupervisor(
        units=units,
        to_run=to_run,
        jobs=jobs,
        keep_going=keep_going,
        policy=policy,
        deadline=policy.deadline(budget),
        journal=journal,
        keys=keys,
        fault_specs=faults.snapshot(),
        make_config=make_config,
        worker_init=_worker_init,
        worker_chunk=_worker_analyze_chunk,
        solo_entry=_solo_entry,
        chunk_fn=lambda indices, workers: _chunked(
            indices, workers, chunk_size
        ),
        adopt=adopt,
        pool_failure=_pool_failure_outcome,
    )
    for index, outcome in supervisor.run().items():
        slots[index] = outcome

    first_failure: Optional[int] = None
    if not keep_going:
        for index, outcome in enumerate(slots):
            if outcome is not None and outcome.exit_code in _HARD_FAILURES:
                first_failure = index
                break
    for index in to_run:
        outcome = slots[index]
        if outcome is None:
            continue
        if first_failure is None or index < first_failure:
            _cache_store(cache, cache_keys[index], outcome)
            if identity_keys is not None:
                _state_store(cache, identity_keys[index], outcome)
    return slots, dict(supervisor.stats), supervisor.interrupted


def _journal_key(
    unit: BatchUnit,
    options: Optional[AnalysisOptions],
    budget: Optional[ResourceBudget],
    degrade: bool,
    refine: bool,
    solver_stats: bool,
    validate_key: Optional[Dict[str, Any]] = None,
) -> str:
    """The unit's content key for journal identity.

    Deliberately the same key material as the persistent cache
    (:meth:`AnalysisCache.key` is static, so no cache directory is
    needed): a resumed sweep must only replay an outcome if the unit's
    source *and* the analysis configuration are unchanged.
    """
    return AnalysisCache.key(
        source=unit.source,
        filename=unit.filename,
        interface=unit.effective_interface,
        entry=unit.entry,
        options=options,
        budget=budget,
        degrade=degrade,
        refine=refine,
        solver_stats=solver_stats,
        validate=validate_key,
    )


def run_batch(
    units: Iterable[BatchUnit],
    options: Optional[AnalysisOptions] = None,
    budget: Optional[ResourceBudget] = None,
    degrade: bool = True,
    keep_going: bool = False,
    max_retries: int = 0,
    refine: bool = False,
    solver_stats: bool = False,
    registry: Optional[ImplicitCallRegistry] = None,
    jobs: int = 1,
    cache: Optional[Union[AnalysisCache, str]] = None,
    chunk_size: Optional[int] = None,
    hard_timeout: Optional[float] = None,
    journal: Optional[str] = None,
    resume: bool = False,
    supervise: bool = True,
    policy: Optional[SupervisePolicy] = None,
    validate: bool = False,
    validate_steps: int = DEFAULT_VALIDATE_STEPS,
    trace_dir: Optional[str] = None,
    incremental: bool = False,
    run_id: Optional[str] = None,
) -> BatchResult:
    """Analyze every unit with per-unit fault isolation.

    No exception escapes: each unit yields a :class:`UnitOutcome`.  With
    ``keep_going`` the sweep always covers every unit; without it, the
    first hard failure (exit code 2/3/4) stops the sweep and the
    remaining units are recorded as ``skipped`` (``exit_code=None``).

    ``jobs > 1`` shards the sweep over that many warm worker processes;
    outcomes come back in submission order either way (see the module
    docstring for the full equivalence argument).  ``chunk_size`` pins
    how many units ride in one dispatched chunk (default: sized for ~4
    chunks per worker).  ``cache`` (an
    :class:`~repro.tool.cache.AnalysisCache` or a directory path)
    enables the persistent result cache.

    ``supervise`` (default, effective with ``jobs > 1``) runs the sweep
    under the crash-proofing supervisor (see :mod:`repro.tool.supervise`):
    dead workers are respawned and their units retried/bisected, and
    ``hard_timeout`` (or the budget's wall clock times the policy's
    grace factor) arms a watchdog that SIGKILLs hung units.  ``journal``
    names a JSONL run journal of completed outcomes; ``resume=True``
    replays completed units from it instead of re-analyzing them (their
    outcomes are marked ``resumed``).  SIGINT/SIGTERM drain in-flight
    results into a partial :class:`BatchResult` with
    ``interrupted=True`` (serial sweeps included).  ``policy`` overrides
    the full :class:`~repro.tool.supervise.SupervisePolicy`
    (``hard_timeout`` is ignored when a policy is given).

    ``incremental=True`` (the ``--incremental`` flag; requires ``cache``)
    gives every unit a persistent incremental state in the cache
    directory (see :mod:`repro.tool.incremental`): on a warm re-run an
    unchanged unit is served from its manifest even when the exact
    source key misses (comment/whitespace edits), and an *edited* unit
    re-solves only the consistency-fact delta against its previous
    fixpoint.  Outcomes are identical to a non-incremental sweep.

    ``validate=True`` (the ``--validate`` flag) runs every successful
    unit's entry point under the traced region interpreter (step budget
    ``validate_steps``), replays the trace, and attaches the dynamic
    validation payload to its outcome; ``trace_dir`` additionally writes
    each unit's trace as ``<unit>.trace.jsonl``.  Validation is part of
    the cache/journal key (toggling it re-analyzes rather than replaying
    unvalidated outcomes), but ``trace_dir`` is not -- it only changes
    where an artifact lands, never the outcome.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if resume and journal is None:
        raise ValueError("resume=True requires a journal path")
    if incremental and cache is None:
        raise ValueError("incremental=True requires a cache")
    if isinstance(cache, str):
        cache = AnalysisCache(cache)
    if policy is None:
        policy = SupervisePolicy(hard_timeout=hard_timeout)
    pending = list(units)
    validate_key: Optional[Dict[str, Any]] = (
        {"schema": VALIDATION_SCHEMA_VERSION, "steps": int(validate_steps)}
        if validate
        else None
    )
    cache_keys: List[Optional[str]] = [
        _unit_cache_key(
            cache,
            unit,
            options,
            budget,
            degrade,
            refine,
            solver_stats,
            validate_key,
        )
        if cache is not None
        else None
        for unit in pending
    ]
    identity_keys: Optional[List[Optional[str]]] = None
    if incremental:
        identity_keys = [
            _unit_identity_key(
                unit,
                options,
                budget,
                degrade,
                refine,
                solver_stats,
                validate_key,
            )
            for unit in pending
        ]

    journal_obj: Optional[RunJournal] = None
    ephemeral: Optional[str] = None
    if journal is not None:
        journal_obj = RunJournal(journal, resume=resume, run_id=run_id)
    elif supervise and jobs > 1 and pending:
        # Supervision needs the heartbeat/outcome channel even when the
        # caller doesn't want a persistent journal: use a throwaway one.
        fd, ephemeral = tempfile.mkstemp(
            prefix="regionwiz-journal-", suffix=".jsonl"
        )
        os.close(fd)
        journal_obj = RunJournal(ephemeral, run_id=run_id)
    try:
        return _run_batch_inner(
            pending,
            options,
            budget,
            degrade,
            keep_going,
            max_retries,
            refine,
            solver_stats,
            registry,
            jobs,
            cache,
            cache_keys,
            chunk_size,
            policy,
            journal_obj,
            supervise,
            validate=validate,
            validate_steps=validate_steps,
            trace_dir=trace_dir,
            validate_key=validate_key,
            incremental=incremental,
            identity_keys=identity_keys,
            run_id=run_id,
        )
    finally:
        if journal_obj is not None:
            journal_obj.close()
        if ephemeral is not None:
            try:
                os.unlink(ephemeral)
            except OSError:
                pass


def _run_batch_inner(
    pending: List[BatchUnit],
    options: Optional[AnalysisOptions],
    budget: Optional[ResourceBudget],
    degrade: bool,
    keep_going: bool,
    max_retries: int,
    refine: bool,
    solver_stats: bool,
    registry: Optional[ImplicitCallRegistry],
    jobs: int,
    cache: Optional[AnalysisCache],
    cache_keys: List[Optional[str]],
    chunk_size: Optional[int],
    policy: SupervisePolicy,
    journal_obj: Optional[RunJournal],
    supervise: bool,
    validate: bool = False,
    validate_steps: int = DEFAULT_VALIDATE_STEPS,
    trace_dir: Optional[str] = None,
    validate_key: Optional[Dict[str, Any]] = None,
    incremental: bool = False,
    identity_keys: Optional[List[Optional[str]]] = None,
    run_id: Optional[str] = None,
) -> BatchResult:
    bus_event(
        "batch.start",
        total=len(pending),
        sizes=[len(unit.source) for unit in pending],
        jobs=jobs,
    )
    journal_keys: List[Optional[str]] = [None] * len(pending)
    if journal_obj is not None:
        journal_keys = [
            _journal_key(
                unit,
                options,
                budget,
                degrade,
                refine,
                solver_stats,
                validate_key,
            )
            for unit in pending
        ]

    # Resume replay: adopt completed outcomes from the journal's prior
    # run(s), keyed by (unit name, content key) so a unit whose source
    # or configuration changed re-analyzes.
    resumed_slots: Dict[int, UnitOutcome] = {}
    if journal_obj is not None and journal_obj.completed:
        for index, unit in enumerate(pending):
            key = journal_keys[index]
            payload = (
                journal_obj.completed.get((unit.name, key)) if key else None
            )
            if payload is None:
                continue
            try:
                outcome = UnitOutcome.from_payload(payload, resumed=True)
            except (KeyError, TypeError, ValueError):
                continue
            resumed_slots[index] = outcome
            emit_event("journal.replay", unit=unit.name, key=key)

    result = BatchResult()
    supervision: Dict[str, int] = {}
    interrupted = False
    if jobs > 1:
        try:
            with interruptible():
                slots, supervision, interrupted = _run_batch_parallel(
                    pending,
                    options,
                    budget,
                    degrade,
                    keep_going,
                    max_retries,
                    refine,
                    solver_stats,
                    registry,
                    jobs,
                    cache,
                    cache_keys,
                    chunk_size,
                    journal=journal_obj if supervise else None,
                    journal_keys=journal_keys,
                    policy=policy,
                    resumed_slots=resumed_slots,
                    validate=validate,
                    validate_steps=validate_steps,
                    trace_dir=trace_dir,
                    incremental=incremental,
                    identity_keys=identity_keys,
                    run_id=run_id,
                )
        except KeyboardInterrupt:
            # Interrupted outside the supervised pool loop (cache probe,
            # resume replay): nothing in flight, keep what's filled.
            interrupted = True
            slots = [None] * len(pending)
            for index, outcome in resumed_slots.items():
                slots[index] = outcome
        first_failure: Optional[int] = None
        if not keep_going and not interrupted:
            for index, outcome in enumerate(slots):
                if outcome is not None and outcome.exit_code in _HARD_FAILURES:
                    first_failure = index
                    break
        for index, (unit, outcome) in enumerate(zip(pending, slots)):
            if outcome is None or (
                first_failure is not None and index > first_failure
            ):
                result.outcomes.append(_skipped(unit.name))
                # The scheduler probed the cache for this unit up front,
                # but a serial run stopping at first_failure never would
                # have: uncount that lookup so the reported counters
                # match the serial sweep's exactly.
                if (
                    not interrupted
                    and cache is not None
                    and cache_keys[index] is not None
                ):
                    was_hit = outcome is not None and outcome.cached
                    cache.uncount(hit=was_hit)
            else:
                result.outcomes.append(outcome)
    else:
        try:
            with interruptible():
                for index, unit in enumerate(pending):
                    outcome = resumed_slots.get(index)
                    if outcome is None:
                        outcome = _cache_lookup(
                            cache, cache_keys[index], unit
                        )
                    if outcome is None:
                        if journal_obj is not None:
                            journal_obj.append(
                                {
                                    "kind": "unit.start",
                                    "index": index,
                                    "unit": unit.name,
                                    "pid": os.getpid(),
                                    "t": time.time(),
                                }
                            )
                        outcome = _analyze_unit(
                            unit,
                            options,
                            budget,
                            degrade,
                            refine,
                            solver_stats,
                            registry,
                            max_retries,
                            validate=validate,
                            validate_steps=validate_steps,
                            trace_dir=trace_dir,
                            incremental_cache=cache if incremental else None,
                            identity=(
                                identity_keys[index]
                                if identity_keys is not None
                                else None
                            ),
                        )
                        _cache_store(cache, cache_keys[index], outcome)
                        if identity_keys is not None:
                            _state_store(
                                cache, identity_keys[index], outcome
                            )
                        if journal_obj is not None:
                            journal_obj.append(
                                {
                                    "kind": "unit.done",
                                    "index": index,
                                    "unit": unit.name,
                                    "key": journal_keys[index],
                                    "pid": os.getpid(),
                                    "t": time.time(),
                                    "outcome": outcome.to_cache_payload(),
                                }
                            )
                    result.outcomes.append(outcome)
                    bus_event("unit.done", index=index, outcome=outcome)
                    if (
                        not keep_going
                        and outcome.exit_code in _HARD_FAILURES
                    ):
                        for skipped in pending[len(result.outcomes):]:
                            result.outcomes.append(_skipped(skipped.name))
                        break
        except KeyboardInterrupt:
            # Satellite fix: everything completed before Ctrl-C used to
            # be silently discarded in the serial path.
            interrupted = True
            emit_event(
                "batch.interrupted",
                completed=len(result.outcomes),
                total=len(pending),
            )
            for skipped in pending[len(result.outcomes):]:
                result.outcomes.append(_skipped(skipped.name))
    result.interrupted = interrupted
    result.run_id = run_id
    resumed_count = sum(1 for o in result.outcomes if o.resumed)
    if resumed_count:
        supervision["resumed"] = resumed_count
    if supervision:
        result.supervision = supervision
    if cache is not None:
        result.cache_counters = cache.counters()
    for outcome in result.outcomes:
        emit_event(
            "batch.unit",
            unit=outcome.unit,
            status=outcome.status,
            exit_code=outcome.exit_code,
            attempts=outcome.attempts,
            cached=outcome.cached,
        )
    bus_event("batch.end", interrupted=interrupted)
    return result
