"""Reports: warning listings, Figure-11-style tables, JSON export."""

from __future__ import annotations

import json
from typing import Iterable, List, Optional, Sequence

from repro.datalog import SolverStats
from repro.obs.history import WarningDiff
from repro.tool.regionwiz import Fig11Row, RegionWizReport

__all__ = [
    "format_report",
    "format_fig11_table",
    "format_solver_stats",
    "format_validation",
    "report_to_json",
]


def format_solver_stats(stats: SolverStats, indent: str = "  ") -> str:
    """Indented rendering of :meth:`SolverStats.summary`."""
    return "\n".join(
        indent + line for line in stats.summary().splitlines()
    )


def format_report(
    report: RegionWizReport,
    verbose: bool = False,
    diff: Optional[WarningDiff] = None,
    validation=None,
) -> str:
    """Human-readable warning listing, high-ranked first.

    ``diff`` (set when the CLI was given ``--baseline``) appends the
    new/persisting/fixed classification block.  ``validation`` (set by
    ``--validate``) adds a per-warning dynamic label and a summary of
    the traced execution.
    """
    lines: List[str] = []
    row = report.fig11_row()
    lines.append(f"RegionWiz report for {report.name}")
    if report.degraded:
        ladder = " -> ".join(report.degradation_path + (report.precision,))
        lines.append(
            f"  degraded(precision={report.precision}):"
            f" budget exceeded at higher precision (ladder: {ladder})"
        )
    lines.append(
        f"  {row.regions} region(s), {row.objects} object(s);"
        f" subregion={row.subregion} ownership={row.ownership}"
        f" heap={row.heap}"
    )
    lines.append(
        f"  verified {row.r_pairs} region pair(s):"
        f" {row.o_pairs} inconsistent object pair(s),"
        f" {row.i_pairs} instruction pair(s), {row.high} high-ranked"
    )
    lines.append(
        f"  phases: call-graph {report.times.call_graph * 1000:.1f}ms,"
        f" cloning {report.times.context_cloning * 1000:.1f}ms,"
        f" correlation {report.times.correlation * 1000:.1f}ms,"
        f" post {report.times.post_processing * 1000:.1f}ms"
    )
    # Solver stats deliberately do NOT appear here: the warning listing is
    # the machine-greppable product on stdout, so --stats goes to stderr
    # (see repro.tool.cli) or into the JSON report.
    new_fingerprints = (
        {entry.fingerprint for entry in diff.new} if diff is not None else set()
    )
    if report.is_consistent:
        lines.append("  region lifetime is consistent: no warnings")
    else:
        lines.append("")
        for index, warning in enumerate(report.warnings, 1):
            rank = "HIGH" if warning.high_ranked else "low"
            marker = " NEW" if warning.fingerprint in new_fingerprints else ""
            if validation is not None and index - 1 < len(validation.labels):
                marker += f" [{validation.labels[index - 1]}]"
            lines.append(
                f"warning {index} [{rank}]{marker}: {warning.description}"
            )
            if verbose:
                if warning.fingerprint:
                    lines.append(f"    fingerprint {warning.fingerprint}")
                for loc in warning.store_locs:
                    lines.append(f"    pointer stored at {loc}")
    if validation is not None:
        lines.append("")
        lines.append(format_validation(validation))
    if diff is not None:
        lines.append("")
        lines.append(diff.format())
    return "\n".join(lines)


def format_validation(validation, indent: str = "  ") -> str:
    """The dynamic-validation summary block (``--validate``)."""
    lines = [f"dynamic validation: {validation.status}"]
    if validation.error:
        lines.append(f"{indent}error: {validation.error}")
    lines.append(
        f"{indent}executed {validation.steps} step(s),"
        f" {validation.events} trace event(s),"
        f" {validation.faults} dynamic fault(s)"
    )
    if validation.replay_consistent is not None:
        agreement = (
            "agrees with" if validation.replay_consistent else "DISAGREES with"
        )
        lines.append(f"{indent}trace replay {agreement} the runtime fault log")
    lines.append(
        f"{indent}warnings: {validation.confirmed} confirmed,"
        f" {validation.unobserved} unobserved,"
        f" {validation.uncovered} uncovered"
    )
    for bucket in ("high", "low"):
        counts = validation.buckets.get(bucket)
        if not counts:
            continue
        precision = counts.get("precision")
        rendered = "n/a" if precision is None else f"{precision:.2f}"
        lines.append(
            f"{indent}{bucket}-ranked: {counts.get('confirmed', 0)} confirmed"
            f" / {counts.get('unobserved', 0)} unobserved"
            f" / {counts.get('uncovered', 0)} uncovered"
            f" (precision {rendered})"
        )
    return "\n".join(lines)


def report_to_json(
    report: RegionWizReport,
    diff: Optional[WarningDiff] = None,
    validation=None,
    run_id: Optional[str] = None,
) -> str:
    """Machine-readable report (stable schema for CI integration).

    ``run_id`` (when given) lands in the payload so the JSON joins
    against registry rows, event streams, and Chrome traces.
    """
    row = report.fig11_row()
    payload = {
        "name": report.name,
        "consistent": report.is_consistent,
        "precision": report.precision,
        "degraded": report.degraded,
        "degradation_path": list(report.degradation_path),
        "statistics": {
            "regions": row.regions,
            "objects": row.objects,
            "subregion": row.subregion,
            "ownership": row.ownership,
            "heap": row.heap,
            "region_pairs": row.r_pairs,
            "object_pairs": row.o_pairs,
            "instruction_pairs": row.i_pairs,
            "high_ranked": row.high,
            "time_seconds": round(row.time_seconds, 6),
        },
        "phases_ms": {
            "call_graph": round(report.times.call_graph * 1000, 3),
            "context_cloning": round(
                report.times.context_cloning * 1000, 3
            ),
            "correlation": round(report.times.correlation * 1000, 3),
            "post_processing": round(
                report.times.post_processing * 1000, 3
            ),
        },
        "warnings": [
            {
                "rank": "high" if warning.high_ranked else "low",
                "fingerprint": warning.fingerprint,
                "source": str(warning.source_loc),
                "target": str(warning.target_loc),
                "stores": [str(loc) for loc in warning.store_locs],
                "contexts": warning.num_contexts,
                "description": warning.description,
            }
            for warning in report.warnings
        ],
    }
    if run_id is not None:
        payload["run_id"] = run_id
    if validation is not None:
        payload["validation"] = validation.to_payload()
        for index, entry in enumerate(payload["warnings"]):
            if index < len(validation.labels):
                entry["validation"] = validation.labels[index]
    if diff is not None:
        payload["baseline_diff"] = diff.to_dict()
    if report.budget is not None:
        payload["budget"] = report.budget.to_dict()
    if report.budget_usage is not None:
        payload["budget_usage"] = report.budget_usage
    if report.metrics is not None:
        payload["metrics"] = report.metrics.to_dict()
    stats = report.times.solver
    if stats is not None:
        payload["solver"] = {
            "backend": stats.backend,
            "engine": stats.engine,
            "facts_loaded": stats.facts_loaded,
            "tuples_derived": stats.tuples_derived,
            "rounds": stats.rounds,
            "rule_evals": stats.rule_evals,
            "rule_eval_ms": round(stats.rule_eval_seconds * 1000, 3),
            "index_builds": stats.index_builds,
            "index_hits": stats.index_hits,
            "solve_ms": round(stats.solve_seconds * 1000, 3),
            "strata": [
                {
                    "relations": list(stratum.relations),
                    "rounds": stratum.rounds,
                    "derived": stratum.derived,
                    "ms": round(stratum.seconds * 1000, 3),
                }
                for stratum in stats.strata
            ],
        }
    return json.dumps(payload, indent=2)


def format_fig11_table(rows: Iterable[Fig11Row]) -> str:
    """Fixed-width table with the same columns as the paper's Figure 11."""
    materialized: List[Sequence] = [Fig11Row.HEADER]
    materialized.extend(row.as_tuple() for row in rows)
    widths = [
        max(len(str(row[col])) for row in materialized)
        for col in range(len(Fig11Row.HEADER))
    ]
    lines = []
    for index, row in enumerate(materialized):
        cells = [str(value).rjust(width) for value, width in zip(row, widths)]
        cells[0] = str(row[0]).ljust(widths[0])  # name column left-aligned
        lines.append("  ".join(cells))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
