"""The RegionWiz driver: pipeline, reports, batch driver, and CLI."""

from repro.tool.batch import BatchResult, BatchUnit, UnitOutcome, run_batch
from repro.tool.cache import AnalysisCache
from repro.tool.open_analysis import (
    HARNESS_ENTRY,
    analyze_open_program,
    build_harness,
)
from repro.tool.regionwiz import (
    PRECISION_LADDER,
    Fig11Row,
    PhaseTimes,
    RegionWizReport,
    Warning_,
    degrade_options,
    run_regionwiz,
)
from repro.tool.report import format_fig11_table, format_report, report_to_json

__all__ = [
    "AnalysisCache",
    "BatchResult",
    "BatchUnit",
    "Fig11Row",
    "HARNESS_ENTRY",
    "PRECISION_LADDER",
    "PhaseTimes",
    "RegionWizReport",
    "UnitOutcome",
    "Warning_",
    "analyze_open_program",
    "build_harness",
    "degrade_options",
    "format_fig11_table",
    "format_report",
    "report_to_json",
    "run_regionwiz",
]
