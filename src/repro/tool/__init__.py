"""The RegionWiz driver: pipeline, reports, and CLI."""

from repro.tool.open_analysis import (
    HARNESS_ENTRY,
    analyze_open_program,
    build_harness,
)
from repro.tool.regionwiz import (
    Fig11Row,
    PhaseTimes,
    RegionWizReport,
    Warning_,
    run_regionwiz,
)
from repro.tool.report import format_fig11_table, format_report

__all__ = [
    "Fig11Row",
    "HARNESS_ENTRY",
    "PhaseTimes",
    "RegionWizReport",
    "Warning_",
    "analyze_open_program",
    "build_harness",
    "format_fig11_table",
    "format_report",
    "run_regionwiz",
]
