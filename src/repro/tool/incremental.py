"""Incremental, demand-driven re-analysis: manifests + delta re-solve.

A warm re-run after a one-function edit should not pay for the whole
unit again.  This module gives each analysis unit a persistent
*incremental state* in the :class:`~repro.tool.cache.AnalysisCache`
directory, addressed by :meth:`AnalysisCache.identity_key` (the unit's
identity with the source text excluded, so an *edited* unit still finds
the state its previous run left behind).  The state carries three
things:

1. **A function-level manifest** — one content fingerprint per function
   definition (plus one for everything else: struct/typedef/global/
   prototype declarations).  Fingerprints hash the parsed AST *including
   source locations*: a change that moves code (and therefore warning
   locations) fingerprints differently, so a clean manifest diff proves
   the stored outcome's rendered warnings are still exact.  Comment and
   whitespace edits that move nothing fingerprint identically — the one
   class of edit the exact source-hash cache key misses.

2. **The eq. 4.12 input facts under stable keys** — the consistency
   query's region/parent/own/access tuples, dense-encoded against an
   entity table whose entries are *stable string keys* (kind, name,
   context, allocation-site source location) rather than run-local
   instruction uids.  Keys only need to be injective within one run;
   cross-run instability merely inflates the delta (a renamed entity
   retracts under its old key and asserts under its new one), never
   breaks correctness, because each run's encoding is self-consistent
   and the update nets to exactly the new fact set.

3. **The solved relation snapshot** — :meth:`Solution.snapshot` of the
   previous fixpoint, which :meth:`Program.resume` reconstructs without
   evaluating a single rule.  The warm path then feeds the fact *delta*
   to :meth:`Solution.update`, whose delete-rederive pass touches only
   affected strata.

Every fallback (no state, schema bump, entity table overflow, corrupt
snapshot) degrades to a cold solve behind the same interface, and the
persisted payload is *canonicalized* before storing — facts and snapshot
re-encoded against a sorted key table — so a warm incremental run leaves
byte-identical state on disk to a cold run over the same source (a
property test holds it to that).
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.consistency import ConsistencyResult, consistency_from_pairs
from repro.core.datalog_check import (
    ALL_RELATIONS,
    INPUT_RELATIONS,
    ConsistencyFacts,
    extract_consistency_facts,
    make_consistency_program,
)
from repro.datalog import DatalogError, UpdateStats
from repro.lang import CompileError, parse
from repro.lang.errors import SourceLocation
from repro.lang.types import CType
from repro.lang import nodes
from repro.obs.events import emit_event
from repro.obs.metrics import MetricsRegistry
from repro.pointer import AbstractObject, PointerAnalysisResult
from repro.tool.cache import AnalysisCache
from repro.util.budget import BudgetMeter

__all__ = [
    "INCREMENTAL_SCHEMA_VERSION",
    "ManifestDiff",
    "UnitManifest",
    "IncrementalUnitSession",
    "fingerprint_decl",
    "manifest_from_source",
    "stable_entity_keys",
]

#: Bump when the state payload layout or the fingerprint serialization
#: changes (old state degrades to a cold solve, never a wrong answer).
INCREMENTAL_SCHEMA_VERSION = 1

#: Domain signature per relation, for key-space translation.
_SIGNATURE: Dict[str, Tuple[str, ...]] = dict(ALL_RELATIONS)

#: Spare entity-table slots reserved when sizing the Datalog domains, so
#: a warm run whose edit introduces a few new objects can extend the
#: stored table in place instead of falling back to a cold solve.
_HEADROOM_MIN = 16


def _headroom(count: int) -> int:
    return count + max(_HEADROOM_MIN, count // 4)


# ---------------------------------------------------------------------------
# Function fingerprints and the unit manifest
# ---------------------------------------------------------------------------


def _serialize(node: Any, parts: List[str]) -> None:
    """Flatten one AST node (or fragment) into fingerprint material.

    Source locations are *included* — a line-shifting edit must change
    the fingerprint, because stored warning text embeds ``file:line``.
    The sema-filled ``ctype`` annotation is skipped (it does not exist at
    parse time and is derived from what is already hashed).  Types render
    through ``str`` — :class:`~repro.lang.types.CType` structs can be
    recursive, and their printed form is already canonical.
    """
    if isinstance(node, CType):
        parts.append(str(node))
    elif isinstance(node, SourceLocation):
        parts.append(str(node))
    elif dataclasses.is_dataclass(node) and not isinstance(node, type):
        parts.append(type(node).__name__)
        for f in dataclasses.fields(node):
            if f.name == "ctype":
                continue
            parts.append(f.name)
            _serialize(getattr(node, f.name), parts)
    elif isinstance(node, (list, tuple)):
        parts.append(f"[{len(node)}")
        for item in node:
            _serialize(item, parts)
        parts.append("]")
    elif node is None:
        parts.append("~")
    else:
        parts.append(repr(node))


def fingerprint_decl(decl: nodes.Node) -> str:
    """Content fingerprint of one top-level declaration."""
    parts: List[str] = []
    _serialize(decl, parts)
    blob = "\x1f".join(parts).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class ManifestDiff:
    """What changed between two manifests, at function granularity."""

    added: Tuple[str, ...] = ()
    removed: Tuple[str, ...] = ()
    changed: Tuple[str, ...] = ()
    preamble_changed: bool = False

    @property
    def clean(self) -> bool:
        """True when nothing changed — the previous outcome still holds."""
        return not (
            self.added
            or self.removed
            or self.changed
            or self.preamble_changed
        )

    @property
    def functions_touched(self) -> int:
        return len(self.added) + len(self.removed) + len(self.changed)


@dataclass
class UnitManifest:
    """Per-function fingerprints for one unit's source.

    ``functions`` maps each function *definition* name to its
    fingerprint (duplicate definitions get ``name#ordinal`` keys);
    ``preamble`` fingerprints everything else in declaration order —
    structs, typedefs, globals, prototypes — whose change can affect any
    function.
    """

    preamble: str
    functions: Dict[str, str] = field(default_factory=dict)

    def diff(self, old: Optional["UnitManifest"]) -> ManifestDiff:
        """The function-level delta from ``old`` to this manifest."""
        if old is None:
            return ManifestDiff(
                added=tuple(sorted(self.functions)),
                preamble_changed=True,
            )
        added = sorted(set(self.functions) - set(old.functions))
        removed = sorted(set(old.functions) - set(self.functions))
        changed = sorted(
            name
            for name, digest in self.functions.items()
            if name in old.functions and old.functions[name] != digest
        )
        return ManifestDiff(
            added=tuple(added),
            removed=tuple(removed),
            changed=tuple(changed),
            preamble_changed=self.preamble != old.preamble,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "preamble": self.preamble,
            "functions": dict(sorted(self.functions.items())),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "UnitManifest":
        return cls(
            preamble=str(payload["preamble"]),
            functions={
                str(name): str(digest)
                for name, digest in payload["functions"].items()
            },
        )


def manifest_from_source(source: str, filename: str) -> UnitManifest:
    """Parse ``source`` and fingerprint it function by function.

    Raises :class:`~repro.lang.CompileError` on unparseable input — the
    caller treats that as "no manifest" (the pipeline will fail on the
    same input anyway).
    """
    unit = parse(source, filename)
    preamble_parts: List[str] = []
    functions: Dict[str, str] = {}
    counts: Dict[str, int] = {}
    for decl in unit.decls:
        if isinstance(decl, nodes.FuncDecl) and decl.is_definition:
            ordinal = counts.get(decl.name, 0)
            counts[decl.name] = ordinal + 1
            key = decl.name if not ordinal else f"{decl.name}#{ordinal}"
            functions[key] = fingerprint_decl(decl)
        else:
            _serialize(decl, preamble_parts)
    blob = "\x1f".join(preamble_parts).encode("utf-8")
    return UnitManifest(
        preamble=hashlib.sha256(blob).hexdigest(),
        functions=functions,
    )


# ---------------------------------------------------------------------------
# Stable entity keys
# ---------------------------------------------------------------------------


def _site_loc(module, site: int) -> str:
    """Source location of an instruction uid ("" for synthetic sites)."""
    if not site or module is None:
        return ""
    try:
        return str(module.instr(site).loc)
    except KeyError:
        return ""


def stable_entity_keys(
    entities: Iterable[AbstractObject], module
) -> Dict[AbstractObject, str]:
    """A cross-run-comparable string key per abstract object.

    The key is built from content the analysis preserves across
    unrelated edits — kind, name, context, and the allocation site's
    *source location* (never its run-local instruction uid).  Colliding
    objects get a deterministic ordinal suffix, which keeps the map
    injective within this run; that is the only property correctness
    needs (see the module docstring).
    """
    groups: Dict[str, List[AbstractObject]] = {}
    for obj in entities:
        base = (
            f"{obj.kind}|{obj.name}|{obj.ctx}|{_site_loc(module, obj.site)}"
        )
        groups.setdefault(base, []).append(obj)
    keys: Dict[AbstractObject, str] = {}
    for base, group in groups.items():
        if len(group) == 1:
            keys[group[0]] = base
        else:
            group.sort(key=lambda obj: (obj.site, str(obj)))
            for ordinal, obj in enumerate(group):
                keys[obj] = f"{base}|{ordinal}"
    return keys


def _offset_key(offset: Optional[int]) -> str:
    return "~" if offset is None else str(offset)


def _decode_offset(key: str) -> Optional[int]:
    return None if key == "~" else int(key)


def _offset_order(key: str) -> Tuple[bool, int]:
    return (key == "~", 0 if key == "~" else int(key))


# ---------------------------------------------------------------------------
# The per-unit incremental session
# ---------------------------------------------------------------------------


def _valid_state(payload: Dict[str, Any]) -> bool:
    """Shallow shape check of a loaded state payload."""
    if payload.get("schema") != INCREMENTAL_SCHEMA_VERSION:
        return False
    manifest = payload.get("manifest")
    if not isinstance(manifest, dict):
        return False
    if not isinstance(manifest.get("preamble"), str):
        return False
    if not isinstance(manifest.get("functions"), dict):
        return False
    for name in ("entities", "offsets"):
        if not isinstance(payload.get(name), list):
            return False
    for name in ("domain_o", "domain_n"):
        if not isinstance(payload.get(name), int):
            return False
    for name in ("facts", "snapshot"):
        if not isinstance(payload.get(name), dict):
            return False
    return True


class IncrementalUnitSession:
    """One unit's incremental state across a single analysis run.

    Usage::

        session = IncrementalUnitSession(cache, identity)
        diff = session.probe(source, filename)      # manifest diff
        if diff is not None and diff.clean:
            payload = session.served_outcome()       # maybe skip entirely
        ...
        report = run_regionwiz(..., incremental=session)
        session.record_outcome(outcome_payload)
        session.store()                              # or export_state()

    :meth:`check_consistency` is the pipeline hook: it replaces the
    direct :func:`~repro.core.check_consistency` call with the
    resume + delta-update path when usable state exists, and records a
    fresh (canonical) state payload either way.  Results are always
    identical to the cold path — the session only ever changes *how* the
    violating pair set is computed, never what it is.
    """

    def __init__(self, cache: AnalysisCache, identity: str) -> None:
        self.cache = cache
        self.identity = identity
        self.state: Optional[Dict[str, Any]] = None
        self.manifest: Optional[UnitManifest] = None
        self.diff: Optional[ManifestDiff] = None
        self.pending: Optional[Dict[str, Any]] = None
        self.update_stats: Optional[UpdateStats] = None
        #: "delta" | "noop" | "resolve" (warm paths) | "cold" | "served".
        self.mode: Optional[str] = None
        #: Why the warm path was abandoned, when it was.
        self.fallback_reason: Optional[str] = None
        payload = cache.lookup_state(identity)
        if payload is not None:
            if _valid_state(payload):
                self.state = payload
            else:
                cache.evict_state(identity)

    # -- manifest ----------------------------------------------------------

    def probe(self, source: str, filename: str) -> Optional[ManifestDiff]:
        """Fingerprint ``source`` and diff against the stored manifest.

        Returns ``None`` when the source does not parse (the pipeline
        will report that error itself).  Must be called before
        :meth:`check_consistency` so the stored state carries the
        current manifest.
        """
        try:
            self.manifest = manifest_from_source(source, filename)
        except CompileError:
            self.manifest = None
            self.diff = None
            return None
        old = None
        if self.state is not None:
            try:
                old = UnitManifest.from_dict(self.state["manifest"])
            except (KeyError, TypeError, AttributeError):
                old = None
        self.diff = self.manifest.diff(old)
        emit_event(
            "incremental.probe",
            identity=self.identity,
            clean=self.diff.clean,
            changed=list(self.diff.changed),
            added=list(self.diff.added),
            removed=list(self.diff.removed),
            preamble_changed=self.diff.preamble_changed,
        )
        return self.diff

    def served_outcome(self) -> Optional[Dict[str, Any]]:
        """The stored outcome payload, iff the manifest diff is clean.

        A clean diff means every function (and the preamble) parses to
        the identical AST *with identical source locations*, so the
        stored outcome — warnings, locations, fingerprints, metrics — is
        exact for the current source.
        """
        if (
            self.state is None
            or self.diff is None
            or not self.diff.clean
        ):
            return None
        outcome = self.state.get("outcome")
        if not isinstance(outcome, dict):
            return None
        self.mode = "served"
        return outcome

    # -- the consistency hook ---------------------------------------------

    def check_consistency(
        self,
        analysis: PointerAnalysisResult,
        module,
        meter: Optional[BudgetMeter] = None,
    ) -> Tuple[ConsistencyResult, Optional[UpdateStats]]:
        """Consistency via resume + delta update (or a cold solve).

        Drop-in for :func:`repro.core.check_consistency`: the returned
        result is byte-equivalent.  The second element reports the delta
        path's :class:`~repro.datalog.UpdateStats` (``None`` on a cold
        solve).
        """
        extract = extract_consistency_facts(analysis)
        keys = stable_entity_keys(extract.entities, module)
        key_to_obj = {key: obj for obj, key in keys.items()}
        keyed = self._keyed_facts(extract, keys)

        solved = None
        if self.state is not None:
            solved = self._warm(keyed, key_to_obj, meter)
        if solved is None:
            solved = self._cold(keyed, key_to_obj, meter)
        pairs, ustats = solved
        self.update_stats = ustats
        consistency = consistency_from_pairs(
            analysis, extract.hierarchy, pairs
        )
        return consistency, ustats

    @staticmethod
    def _keyed_facts(
        extract: ConsistencyFacts, keys: Dict[AbstractObject, str]
    ) -> Dict[str, Set[Tuple[str, ...]]]:
        """The input facts re-encoded over stable string keys."""
        keyed: Dict[str, Set[Tuple[str, ...]]] = {}
        for name, signature in INPUT_RELATIONS:
            out: Set[Tuple[str, ...]] = set()
            for values in extract.facts[name]:
                out.add(
                    tuple(
                        keys[extract.entities[value]]
                        if domain == "O"
                        else _offset_key(extract.offsets[value])
                        for value, domain in zip(values, signature)
                    )
                )
            keyed[name] = out
        return keyed

    def _warm(
        self,
        keyed: Dict[str, Set[Tuple[str, ...]]],
        key_to_obj: Dict[str, AbstractObject],
        meter: Optional[BudgetMeter],
    ):
        """Resume the stored fixpoint and apply the fact delta.

        Returns ``(pairs, UpdateStats)`` or ``None`` to fall back cold.
        The stored entity table is extended append-only, so the stored
        facts and snapshot stay valid in the merged encoding.
        """
        state = self.state
        assert state is not None
        entities: List[str] = [str(key) for key in state["entities"]]
        offsets: List[str] = [str(key) for key in state["offsets"]]
        entity_index = {key: i for i, key in enumerate(entities)}
        offset_index = {key: i for i, key in enumerate(offsets)}

        new_entities: Set[str] = set()
        new_offsets: Set[str] = set()
        for name, signature in INPUT_RELATIONS:
            for values in keyed[name]:
                for value, domain in zip(values, signature):
                    if domain == "O":
                        if value not in entity_index:
                            new_entities.add(value)
                    elif value not in offset_index:
                        new_offsets.add(value)
        for key in sorted(new_entities):
            entity_index[key] = len(entities)
            entities.append(key)
        for key in sorted(new_offsets, key=_offset_order):
            offset_index[key] = len(offsets)
            offsets.append(key)

        domain_o = state["domain_o"]
        domain_n = state["domain_n"]
        if len(entities) > domain_o or len(offsets) > domain_n:
            self.fallback_reason = "domain-overflow"
            return None

        try:
            stored_facts = {
                name: {tuple(values) for values in state["facts"][name]}
                for name, _ in INPUT_RELATIONS
            }
            new_facts = {
                name: self._encode(
                    keyed[name], signature, entity_index, offset_index
                )
                for name, signature in INPUT_RELATIONS
            }
        except (KeyError, TypeError, ValueError):
            self._drop_state("corrupt-state")
            return None

        asserted = {
            name: new_facts[name] - stored_facts[name]
            for name, _ in INPUT_RELATIONS
        }
        retracted = {
            name: stored_facts[name] - new_facts[name]
            for name, _ in INPUT_RELATIONS
        }

        program = make_consistency_program(domain_o, domain_n)
        try:
            for name, tuples in stored_facts.items():
                for values in tuples:
                    program.fact(name, *values)
            solution = program.resume(
                {
                    name: [tuple(values) for values in rows]
                    for name, rows in state["snapshot"].items()
                },
                meter=meter,
            )
            ustats = solution.update(
                asserted=asserted, retracted=retracted, meter=meter
            )
            snapshot = solution.snapshot()
            pairs = {
                (
                    key_to_obj[entities[source]],
                    _decode_offset(offsets[offset]),
                    key_to_obj[entities[target]],
                )
                for source, offset, target in solution.tuples("objectPair")
            }
            keyed_snapshot = self._snapshot_to_keys(
                snapshot, entities, offsets
            )
        except DatalogError:
            self._drop_state("corrupt-state")
            return None
        except (KeyError, IndexError):
            # A decoded entity fell outside the current run's key map or
            # table: the stored state disagrees with this run's universe
            # in a way the delta could not reconcile.
            self._drop_state("decode-mismatch")
            return None

        self.mode = ustats.mode
        self.pending = self._canonical_payload(keyed, keyed_snapshot)
        emit_event(
            "incremental.update",
            identity=self.identity,
            mode=ustats.mode,
            facts_asserted=ustats.facts_asserted,
            facts_retracted=ustats.facts_retracted,
            strata_skipped=ustats.strata_skipped,
            tuples_deleted=ustats.tuples_deleted,
            tuples_inserted=ustats.tuples_inserted,
        )
        return pairs, ustats

    def _cold(
        self,
        keyed: Dict[str, Set[Tuple[str, ...]]],
        key_to_obj: Dict[str, AbstractObject],
        meter: Optional[BudgetMeter],
    ):
        """Full solve from scratch over the canonical key table."""
        entities, offsets = self._canonical_tables(keyed, {})
        entity_index = {key: i for i, key in enumerate(entities)}
        offset_index = {key: i for i, key in enumerate(offsets)}
        program = make_consistency_program(
            _headroom(len(entities)), _headroom(len(offsets))
        )
        for name, signature in INPUT_RELATIONS:
            for values in self._encode(
                keyed[name], signature, entity_index, offset_index
            ):
                program.fact(name, *values)
        solution = program.solve(meter=meter)
        pairs = {
            (
                key_to_obj[entities[source]],
                _decode_offset(offsets[offset]),
                key_to_obj[entities[target]],
            )
            for source, offset, target in solution.tuples("objectPair")
        }
        keyed_snapshot = self._snapshot_to_keys(
            solution.snapshot(), entities, offsets
        )
        self.mode = "cold"
        self.pending = self._canonical_payload(keyed, keyed_snapshot)
        emit_event(
            "incremental.cold",
            identity=self.identity,
            reason=self.fallback_reason or "no-state",
        )
        return pairs, None

    # -- encoding helpers --------------------------------------------------

    @staticmethod
    def _encode(
        tuples: Iterable[Tuple[str, ...]],
        signature: Tuple[str, ...],
        entity_index: Dict[str, int],
        offset_index: Dict[str, int],
    ) -> Set[Tuple[int, ...]]:
        return {
            tuple(
                entity_index[value] if domain == "O" else offset_index[value]
                for value, domain in zip(values, signature)
            )
            for values in tuples
        }

    @staticmethod
    def _snapshot_to_keys(
        snapshot: Dict[str, List[Tuple[int, ...]]],
        entities: List[str],
        offsets: List[str],
    ) -> Dict[str, Set[Tuple[str, ...]]]:
        keyed: Dict[str, Set[Tuple[str, ...]]] = {}
        for name, signature in ALL_RELATIONS:
            keyed[name] = {
                tuple(
                    entities[value] if domain == "O" else offsets[value]
                    for value, domain in zip(values, signature)
                )
                for values in snapshot.get(name, ())
            }
        return keyed

    @staticmethod
    def _canonical_tables(
        keyed_facts: Dict[str, Set[Tuple[str, ...]]],
        keyed_snapshot: Dict[str, Set[Tuple[str, ...]]],
    ) -> Tuple[List[str], List[str]]:
        """Sorted entity/offset key tables covering facts and snapshot."""
        entity_keys: Set[str] = set()
        offset_keys: Set[str] = set()
        for source in (keyed_facts, keyed_snapshot):
            for name, tuples in source.items():
                signature = _SIGNATURE[name]
                for values in tuples:
                    for value, domain in zip(values, signature):
                        if domain == "O":
                            entity_keys.add(value)
                        else:
                            offset_keys.add(value)
        return (
            sorted(entity_keys),
            sorted(offset_keys, key=_offset_order),
        )

    def _canonical_payload(
        self,
        keyed_facts: Dict[str, Set[Tuple[str, ...]]],
        keyed_snapshot: Dict[str, Set[Tuple[str, ...]]],
    ) -> Dict[str, Any]:
        """The state payload, re-encoded over the canonical key table.

        Canonicalization is what makes a warm run's persisted state
        byte-identical to a cold run's: the payload depends only on the
        manifest, the keyed facts, and the keyed fixpoint — all of which
        are path-independent — never on the append order the warm path
        grew its in-memory table in.
        """
        entities, offsets = self._canonical_tables(
            keyed_facts, keyed_snapshot
        )
        entity_index = {key: i for i, key in enumerate(entities)}
        offset_index = {key: i for i, key in enumerate(offsets)}
        facts = {
            name: sorted(
                list(values)
                for values in self._encode(
                    keyed_facts[name], signature, entity_index, offset_index
                )
            )
            for name, signature in INPUT_RELATIONS
        }
        snapshot = {
            name: sorted(
                list(values)
                for values in self._encode(
                    keyed_snapshot[name],
                    signature,
                    entity_index,
                    offset_index,
                )
            )
            for name, signature in ALL_RELATIONS
        }
        return {
            "schema": INCREMENTAL_SCHEMA_VERSION,
            "manifest": (
                self.manifest.to_dict() if self.manifest is not None else None
            ),
            "entities": entities,
            "offsets": offsets,
            "domain_o": _headroom(len(entities)),
            "domain_n": _headroom(len(offsets)),
            "facts": facts,
            "snapshot": snapshot,
            "outcome": None,
        }

    def _drop_state(self, reason: str) -> None:
        self.cache.evict_state(self.identity)
        self.state = None
        self.fallback_reason = reason
        emit_event(
            "incremental.fallback", identity=self.identity, reason=reason
        )

    # -- persistence -------------------------------------------------------

    def record_outcome(self, outcome: Optional[Dict[str, Any]]) -> None:
        """Attach the unit's outcome payload to the pending state."""
        if self.pending is not None:
            self.pending["outcome"] = outcome

    def export_state(self) -> Optional[Dict[str, Any]]:
        """The pending payload for a deferred (parent-side) store.

        ``None`` when there is nothing sound to persist — the pipeline
        never reached the consistency phase, or :meth:`probe` never saw
        a parseable manifest (state without a manifest could not be
        diffed next run).
        """
        if self.pending is None or self.manifest is None:
            return None
        return self.pending

    def store(self) -> bool:
        """Persist the pending state now (single-process callers)."""
        payload = self.export_state()
        if payload is None:
            return False
        self.cache.store_state(self.identity, payload)
        return True

    # -- telemetry ---------------------------------------------------------

    def record_metrics(self, registry: MetricsRegistry) -> None:
        """Fold session telemetry into a run's metrics registry."""
        if self.diff is not None:
            registry.gauge(
                "incremental.functions_changed", self.diff.functions_touched
            )
            registry.gauge(
                "incremental.preamble_changed",
                1 if self.diff.preamble_changed else 0,
            )
        if self.mode is not None:
            registry.gauge(
                "incremental.warm", 1 if self.mode != "cold" else 0
            )
        ustats = self.update_stats
        if ustats is not None:
            registry.gauge("incremental.update_ms", ustats.seconds * 1000.0)
            registry.gauge(
                "incremental.facts_asserted", ustats.facts_asserted
            )
            registry.gauge(
                "incremental.facts_retracted", ustats.facts_retracted
            )
            registry.gauge(
                "incremental.strata_skipped", ustats.strata_skipped
            )
            registry.gauge(
                "incremental.tuples_deleted", ustats.tuples_deleted
            )
            registry.gauge(
                "incremental.tuples_inserted", ustats.tuples_inserted
            )
