"""Crash-proof supervision for the parallel batch executor.

The warm-worker shard scheduler (:func:`repro.tool.batch.run_batch`
with ``jobs > 1``) isolates *exceptions* per unit, but three failure
classes escape in-process isolation entirely:

* a **worker process dies** (segfault, the OOM killer, an injected
  ``kill`` fault) -- ``ProcessPoolExecutor`` marks the whole pool
  broken and every outstanding future fails with
  ``BrokenProcessPool``, taking the sweep down with it;
* a **unit hangs between budget checkpoints** -- cooperative
  :class:`~repro.util.budget.BudgetMeter` polling only runs at fixpoint
  round boundaries, so a worker stuck inside one (or in an injected
  ``hang``) stalls the sweep forever;
* the **parent itself is killed** mid-sweep -- every completed result
  is discarded and the next run starts from zero.

:class:`BatchSupervisor` is the external harness that competition-grade
analyzers (2LS, PredatorHP) rely on, built into the executor:

**Worker-loss recovery.**  Each pool generation runs under a
:class:`RunJournal` -- an O_APPEND JSONL file that workers heartbeat
``unit.start`` records into and append completed ``unit.done`` outcome
payloads to (single short writes, so parent and worker lines interleave
at line granularity exactly like the event log).  When the pool breaks,
the journal tells the parent which units *completed but never shipped*
(adopted straight from their journaled payloads, no re-analysis), which
were *in flight* (retried on a fresh pool after bounded exponential
backoff), and which never started (simply rescheduled).  A unit that is
in flight across more than ``crash_retries`` pool losses is **bisected**
one-unit-per-fresh-process: if the solo process also dies, the unit is
the poison pill and is quarantined with a ``crashed`` outcome (exit 3,
:class:`~repro.util.errors.WorkerCrash` detail carrying the dead pid
and signal); if it survives solo, it was an innocent casualty of a
shared pool and its outcome is adopted.

**Hung-unit watchdog.**  The parent polls the journal's heartbeats and
enforces a hard per-unit wall-clock deadline -- ``--hard-timeout``, or
the budget's wall clock times :attr:`SupervisePolicy.grace_factor` (see
:meth:`~repro.util.budget.ResourceBudget.hard_deadline`).  A unit past
its deadline gets its worker SIGKILLed; the resulting pool break flows
through the same recovery path.  Timeouts are retried like crashes (a
hang may be transient); a unit that *repeatedly* blows the deadline is
recorded as a ``timeout`` outcome (exit 4) carrying a
:class:`~repro.util.errors.HardTimeout` -- a ``BudgetExceeded``
subclass, so hard enforcement folds into the existing budget contract.

**Fault accounting.**  ``kill``/``hang`` faults consume their armed
``times=`` count inside a process that never reports back.  Workers
journal each destructive firing *before* it executes (via
:func:`repro.util.faults.set_fire_hook`); the parent replays those
records against its master spec list and ships the decremented snapshot
to respawned pools, so a ``times=1`` kill is transient sweep-wide and
the retried unit converges to its fault-free outcome -- the property
the serial≡parallel hypothesis tests pin down.

**Resumable sweeps.**  ``unit.done`` records reuse the cache-payload
schema and carry a content key (the same material as
:meth:`repro.tool.cache.AnalysisCache.key`), so a *new parent* given
``resume=True`` replays completed outcomes and re-analyzes only
incomplete units -- surviving even ``kill -9`` of the parent.
:func:`interruptible` converts SIGTERM to ``KeyboardInterrupt`` so both
signals drain in-flight results, write partial batch JSON, and exit 130
without orphaning children.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
from collections import defaultdict
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs.events import emit_event
from repro.obs.live import bus_event
from repro.util.budget import ResourceBudget
from repro.util.errors import HardTimeout, WorkerCrash
from repro.util.faults import FaultSpec

__all__ = [
    "SupervisePolicy",
    "RunJournal",
    "BatchSupervisor",
    "interruptible",
    "JOURNAL_SCHEMA_VERSION",
]

#: Bump when the journal record shape changes; a resumed journal with a
#: different schema is ignored (every unit re-analyzes) rather than
#: misread.
JOURNAL_SCHEMA_VERSION = 1

#: Unit exit codes that stop a ``keep_going=False`` sweep (mirrors
#: :data:`repro.tool.batch._HARD_FAILURES`; duplicated to keep this
#: module importable before batch).
_HARD_FAILURES = (2, 3, 4)


@dataclass(frozen=True)
class SupervisePolicy:
    """Tunables for one supervised sweep (defaults suit production)."""

    #: Explicit per-unit wall-clock ceiling in seconds (``--hard-timeout``).
    #: ``None`` derives one from the budget via ``grace_factor``; with no
    #: wall-clock budget either, the watchdog stays disarmed.
    hard_timeout: Optional[float] = None
    #: Hard deadline = budget wall clock x this (covers every
    #: degradation-ladder rung getting a fresh meter).
    grace_factor: float = 4.0
    #: How many times a unit may be in flight during a pool loss before
    #: it is bisected solo to find the poison pill.
    crash_retries: int = 1
    #: How many watchdog kills a unit may absorb before its outcome is
    #: recorded as ``timeout`` instead of being retried.
    timeout_retries: int = 1
    #: Pool respawns before the supervisor gives up on the sweep
    #: (``None``: scaled to the corpus, ``2 * units + 4``).
    max_respawns: Optional[int] = None
    #: Exponential backoff before respawning the pool:
    #: ``min(cap, base * 2**(respawn - 1))`` seconds.
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: How often the parent wakes to read heartbeats and check deadlines.
    poll_interval: float = 0.05

    def deadline(self, budget: Optional[ResourceBudget]) -> Optional[float]:
        """The effective hard per-unit deadline, or ``None`` (no watchdog)."""
        if self.hard_timeout is not None:
            return self.hard_timeout
        if budget is not None:
            return budget.hard_deadline(self.grace_factor)
        return None


# ---------------------------------------------------------------------------
# The run journal
# ---------------------------------------------------------------------------


class RunJournal:
    """An O_APPEND JSONL journal of sweep progress, shared with workers.

    Record kinds: ``journal.open`` (header, schema + t), ``unit.start``
    (heartbeat: index/unit/pid/t), ``unit.done`` (index/unit/pid/key +
    the outcome's cache payload), ``fault.fired`` (a destructive
    ``kill``/``hang`` fault consumed its armed count).  Every record is
    written as one short line so concurrent appends interleave cleanly;
    a torn final line (the writer died mid-write) is simply ignored.

    ``resume=True`` keeps the existing file, indexes its ``unit.done``
    records into :attr:`completed` (keyed ``(unit_name, content_key)``),
    and appends; otherwise the file is truncated.
    """

    def __init__(
        self,
        path: str,
        resume: bool = False,
        run_id: Optional[str] = None,
    ) -> None:
        self.path = str(path)
        #: ``(unit_name, key) -> outcome payload`` from prior runs.
        self.completed: Dict[Tuple[str, str], Dict[str, Any]] = {}
        records: List[Dict[str, Any]] = []
        if resume and os.path.exists(self.path):
            records = self.load(self.path)
            header_ok = (
                bool(records)
                and records[0].get("kind") == "journal.open"
                and records[0].get("schema") == JOURNAL_SCHEMA_VERSION
            )
            if not header_ok:
                records = []
        if not records:
            open(self.path, "w").close()
        self._handle = open(self.path, "a", buffering=1)
        self._reader = None
        if not records:
            header = {
                "kind": "journal.open",
                "schema": JOURNAL_SCHEMA_VERSION,
                "t": time.time(),
            }
            if run_id is not None:
                header["run_id"] = run_id
            self.append(header)
        for record in records:
            if record.get("kind") != "unit.done":
                continue
            key = record.get("key")
            unit = record.get("unit")
            outcome = record.get("outcome")
            if key and unit and isinstance(outcome, dict):
                self.completed[(unit, key)] = outcome
        # Tail only what arrives after this point: resumed history is
        # already folded into ``completed``.
        self._read_pos = os.path.getsize(self.path)

    def append(self, record: Dict[str, Any]) -> None:
        """Write one record as a single JSONL line (append mode)."""
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")

    def tail(self) -> List[Dict[str, Any]]:
        """Every *complete* record appended since the last call."""
        if self._reader is None:
            self._reader = open(self.path, "rb")
        self._reader.seek(self._read_pos)
        data = self._reader.read()
        if not data:
            return []
        end = data.rfind(b"\n")
        if end < 0:
            return []  # only a torn line so far
        consumed = data[: end + 1]
        self._read_pos += len(consumed)
        records = []
        for line in consumed.splitlines():
            if not line.strip():
                continue
            try:
                records.append(json.loads(line.decode("utf-8")))
            except (ValueError, UnicodeDecodeError):
                continue
        return records

    @staticmethod
    def load(path: str) -> List[Dict[str, Any]]:
        """Every complete, parseable record in ``path`` (tolerant)."""
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return []
        records = []
        for line in data.splitlines():
            if not line.strip():
                continue
            try:
                records.append(json.loads(line.decode("utf-8")))
            except (ValueError, UnicodeDecodeError):
                continue
        return records

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()
        if self._reader is not None and not self._reader.closed:
            self._reader.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


# ---------------------------------------------------------------------------
# Outcome builders (UnitOutcome imported lazily: batch imports us)
# ---------------------------------------------------------------------------


def crashed_outcome(
    unit_name: str,
    attempts: int,
    pid: Optional[int],
    signum: Optional[int],
):
    """A quarantined poison pill: the worker died and so did the retry."""
    from repro.tool.batch import UnitOutcome

    error = WorkerCrash(unit_name, pid=pid, signum=signum)
    return UnitOutcome(
        unit=unit_name,
        status="crashed",
        exit_code=3,
        attempts=attempts,
        error=str(error),
        error_type="WorkerCrash",
        error_detail=error.to_dict(),
    )


def timeout_outcome(
    unit_name: str, attempts: int, limit: float, used: float
):
    """A unit SIGKILLed past the hard deadline (maps to exit 4)."""
    from repro.tool.batch import UnitOutcome

    error = HardTimeout(limit, used)
    return UnitOutcome(
        unit=unit_name,
        status="timeout",
        exit_code=4,
        attempts=attempts,
        error=str(error),
        error_type="HardTimeout",
        error_detail=error.to_dict(),
    )


# ---------------------------------------------------------------------------
# SIGTERM -> KeyboardInterrupt (so one drain path serves both signals)
# ---------------------------------------------------------------------------


def _raise_interrupt(signum, frame):  # pragma: no cover - signal path
    raise KeyboardInterrupt(f"signal {signum}")


@contextmanager
def interruptible() -> Iterator[None]:
    """Convert SIGTERM to ``KeyboardInterrupt`` for the block's duration.

    A supervised sweep drains on Ctrl-C; SIGTERM (the fleet scheduler's
    polite kill) should take the identical partial-results path rather
    than the default die-where-you-stand.  Outside the main thread
    (where ``signal.signal`` raises), this is a no-op.
    """
    try:
        previous = signal.signal(signal.SIGTERM, _raise_interrupt)
    except ValueError:  # not the main thread
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


# ---------------------------------------------------------------------------
# The supervisor
# ---------------------------------------------------------------------------


class BatchSupervisor:
    """Run one sweep's pool generations; recover, watch, and retry.

    The batch layer wires in everything process-pool-shaped
    (``make_config`` rebuilding the worker initializer payload from a
    fault snapshot, the picklable ``worker_init``/``worker_chunk``/
    ``solo_entry`` functions, the chunker, and the tracer ``adopt``
    callback) so this class owns only the supervision state machine:

    ``DISPATCH -> (drain | BROKEN)``; on ``BROKEN``: adopt journaled
    outcomes, attribute in-flight units, bisect repeat offenders,
    backoff, respawn; on watchdog expiry: SIGKILL the worker and fold
    into ``BROKEN``.  Without a journal (supervision off) the loop
    degrades to the legacy behavior: a broken pool fails its chunks
    with structured pool-failure outcomes and no retry happens.
    """

    def __init__(
        self,
        *,
        units: Sequence[Any],
        to_run: List[int],
        jobs: int,
        keep_going: bool,
        policy: SupervisePolicy,
        deadline: Optional[float],
        journal: Optional[RunJournal],
        keys: Sequence[Optional[str]],
        fault_specs: List[FaultSpec],
        make_config: Callable[[List[FaultSpec]], Any],
        worker_init: Callable,
        worker_chunk: Callable,
        solo_entry: Callable,
        chunk_fn: Callable[[List[int], int], List[List[int]]],
        adopt: Callable[[List[Any], int], None],
        pool_failure: Callable[[Any, BaseException], Any],
    ) -> None:
        self.units = units
        self.to_run = list(to_run)
        self.jobs = jobs
        self.keep_going = keep_going
        self.policy = policy
        self.deadline = deadline
        self.journal = journal
        self.keys = keys
        self.make_config = make_config
        self.worker_init = worker_init
        self.worker_chunk = worker_chunk
        self.solo_entry = solo_entry
        self.chunk_fn = chunk_fn
        self.adopt = adopt
        self.pool_failure = pool_failure

        self.slots: Dict[int, Any] = {}
        self.interrupted = False
        self.stats: Dict[str, int] = defaultdict(int)
        self._fault_specs = [replace(spec) for spec in fault_specs]
        self._crash_count: Dict[int, int] = defaultdict(int)
        self._timeout_count: Dict[int, int] = defaultdict(int)
        #: index -> (pid, started_at) for units currently heartbeating.
        self._running: Dict[int, Tuple[Optional[int], float]] = {}
        #: index -> last pid observed analyzing it (crash attribution).
        self._last_pid: Dict[int, Optional[int]] = {}
        #: index -> journaled ``unit.done`` outcome payload.
        self._journal_done: Dict[int, Dict[str, Any]] = {}
        #: pid -> exitcode of the last generation's workers (best effort).
        self._exitcodes: Dict[int, Optional[int]] = {}
        self._watchdog_killed: set = set()
        self._gen_started: set = set()

    # -- public entry ------------------------------------------------------

    def run(self) -> Dict[int, Any]:
        """Supervise until every runnable unit has an outcome."""
        max_respawns = (
            self.policy.max_respawns
            if self.policy.max_respawns is not None
            else 2 * len(self.to_run) + 4
        )
        generation = 0
        while not self.interrupted:
            runnable = self._runnable()
            if not runnable:
                break
            if generation > 0:
                self.stats["respawns"] += 1
                delay = min(
                    self.policy.backoff_cap,
                    self.policy.backoff_base * (2 ** (generation - 1)),
                )
                if delay > 0:
                    time.sleep(delay)
                emit_event(
                    "supervisor.respawn",
                    generation=generation,
                    units=len(runnable),
                    backoff_s=round(delay, 3),
                )
            broken = self._generation(runnable)
            if self.interrupted:
                break
            if not broken:
                break  # clean drain (or early stop): nothing to recover
            if self.journal is None:
                break  # no heartbeats: chunks already failed structurally
            self._recover(runnable)
            generation += 1
            if generation > max_respawns:
                self._give_up()
                break
        return self.slots

    # -- scheduling helpers ------------------------------------------------

    def _first_failure(self) -> Optional[int]:
        """Earliest submission index with a hard failure (2/3/4)."""
        first: Optional[int] = None
        for index, outcome in self.slots.items():
            if outcome.exit_code in _HARD_FAILURES:
                if first is None or index < first:
                    first = index
        return first

    def _runnable(self) -> List[int]:
        pending = [i for i in self.to_run if i not in self.slots]
        if not self.keep_going:
            first = self._first_failure()
            if first is not None:
                # Serial semantics: everything after the earliest hard
                # failure stays unrun (reported skipped by the caller),
                # but units *before* it must still complete.
                pending = [i for i in pending if i < first]
        return pending

    # -- one pool generation ----------------------------------------------

    def _generation(self, runnable: List[int]) -> bool:
        order = list(runnable)
        if self.keep_going:
            # LPT dispatch (see batch._run_batch_parallel): safe because
            # every unit runs regardless of order.
            order.sort(key=lambda i: -len(self.units[i].source))
        workers = min(self.jobs, len(order))
        chunks = self.chunk_fn(order, workers)
        # Satellite: never spawn more workers than there are chunks to
        # serve -- `--jobs 64` on a 3-unit corpus used to fork and
        # gc-freeze 61 idle processes for nothing.
        workers = max(1, min(workers, len(chunks)))
        config = self.make_config(
            [replace(spec) for spec in self._fault_specs]
        )
        self._gen_started = set()
        self._watchdog_killed = set()
        self._running.clear()
        broken = False
        stopping = False
        executor = ProcessPoolExecutor(
            max_workers=workers,
            initializer=self.worker_init,
            initargs=(config,),
        )
        futures: Dict[Any, List[int]] = {}
        try:
            try:
                for indices in chunks:
                    task = [
                        (index, self.units[index], self.keys[index])
                        for index in indices
                    ]
                    futures[executor.submit(self.worker_chunk, task)] = (
                        indices
                    )
            except BrokenProcessPool:
                broken = True  # died during submission: recover below
            not_done = set(futures)
            while not_done:
                done, not_done = wait(
                    not_done,
                    timeout=self.policy.poll_interval,
                    return_when=FIRST_COMPLETED,
                )
                self._consume_journal()
                bus_event("tick", stats=self.stats)
                for future in done:
                    indices = futures[future]
                    try:
                        results, roots, pid = future.result()
                    except CancelledError:
                        continue
                    except BrokenProcessPool:
                        broken = True
                        continue
                    except Exception as error:
                        # A structural dispatch failure (pickling, ...):
                        # deterministic, so retrying cannot help.
                        for index in indices:
                            if index not in self.slots:
                                self._record(
                                    index,
                                    self.pool_failure(
                                        self.units[index], error
                                    ),
                                    adjust=False,
                                )
                        continue
                    self.adopt(roots, pid)
                    for index, outcome in results:
                        self._record(index, outcome)
                if (
                    not self.keep_going
                    and not stopping
                    and self._first_failure() is not None
                ):
                    stopping = True
                    for future in not_done:
                        future.cancel()
                if not broken and not stopping:
                    self._watchdog()
        except KeyboardInterrupt:
            self.interrupted = True
            self.stats["interrupted"] = 1
            self._drain_interrupt(executor, futures)
            return False
        finally:
            procs = []
            try:  # private API, best effort: crash/signal attribution
                procs = list(executor._processes.values())
            except Exception:
                procs = []
            executor.shutdown(wait=not self.interrupted)
            self._exitcodes = {}
            for proc in procs:
                try:
                    self._exitcodes[proc.pid] = proc.exitcode
                except Exception:
                    continue
        self._consume_journal()
        return broken

    # -- journal consumption ----------------------------------------------

    def _consume_journal(self) -> None:
        if self.journal is None:
            return
        for record in self.journal.tail():
            kind = record.get("kind")
            if kind == "unit.start":
                index = record.get("index")
                if not isinstance(index, int):
                    continue
                pid = record.get("pid")
                self._running[index] = (pid, record.get("t", time.time()))
                self._last_pid[index] = pid
                self._gen_started.add(index)
                bus_event(
                    "unit.start",
                    index=index,
                    unit=record.get("unit"),
                    pid=pid,
                )
            elif kind == "telemetry":
                # Worker metric/RSS deltas piggybacked on the heartbeat
                # channel (see batch._worker_analyze_chunk); forwarded
                # to the live bus, never interpreted here.
                bus_event("worker.delta", record=record)
            elif kind == "unit.done":
                index = record.get("index")
                if not isinstance(index, int):
                    continue
                self._running.pop(index, None)
                if isinstance(record.get("outcome"), dict):
                    self._journal_done[index] = record
            elif kind == "fault.fired":
                self._consume_fault(record)

    def _consume_fault(self, record: Dict[str, Any]) -> None:
        """Replay one destructive fault firing against the master specs.

        The worker that fired a ``kill``/``hang`` never reports back, so
        its local ``times`` decrement died with it; this keeps the
        parent's snapshot -- the one respawned pools are armed from --
        consistent with what actually fired.
        """
        point = record.get("point")
        action = record.get("action")
        unit = record.get("unit")
        if action not in ("kill", "hang"):
            return
        for spec in self._fault_specs:
            if spec.point != point or spec.action != action:
                continue
            if spec.unit is not None and spec.unit != unit:
                continue
            if spec.times is None:
                return  # persistent spec: nothing to decrement
            spec.times -= 1
            if spec.times <= 0:
                self._fault_specs.remove(spec)
            return

    # -- outcome recording -------------------------------------------------

    def _record(self, index: int, outcome: Any, adjust: bool = True) -> None:
        if adjust:
            retries = self._crash_count[index] + self._timeout_count[index]
            if retries:
                outcome.attempts += retries
        self.slots[index] = outcome
        self._running.pop(index, None)
        bus_event("unit.done", index=index, outcome=outcome)

    def _adopt_journal_done(self) -> None:
        """Units that completed in a worker but never shipped a result."""
        from repro.tool.batch import UnitOutcome

        for index, record in self._journal_done.items():
            if index in self.slots or index not in self.to_run:
                continue
            try:
                outcome = UnitOutcome.from_payload(record["outcome"])
            except (KeyError, TypeError, ValueError):
                continue
            outcome.worker_pid = record.get("pid")
            self.stats["journal_recovered"] += 1
            emit_event(
                "supervisor.journal-recovered", unit=outcome.unit
            )
            self._record(index, outcome)

    # -- the watchdog ------------------------------------------------------

    def _watchdog(self) -> None:
        if self.deadline is None or self.journal is None:
            return
        now = time.time()
        for index, (pid, started) in list(self._running.items()):
            if index in self.slots:
                continue
            used = now - started
            if used <= self.deadline:
                continue
            self._running.pop(index, None)
            self._watchdog_killed.add(index)
            self._timeout_count[index] += 1
            self.stats["watchdog_kills"] += 1
            unit_name = self.units[index].name
            emit_event(
                "supervisor.watchdog-kill",
                unit=unit_name,
                pid=pid,
                used_s=round(used, 3),
                limit_s=self.deadline,
            )
            if self._timeout_count[index] > self.policy.timeout_retries:
                self.stats["timeouts"] += 1
                self._record(
                    index,
                    timeout_outcome(
                        unit_name,
                        self._timeout_count[index],
                        self.deadline,
                        used,
                    ),
                    adjust=False,
                )
            if pid:
                try:
                    os.kill(pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass

    # -- recovery after a broken pool --------------------------------------

    def _signal_for(self, pid: Optional[int]) -> Optional[int]:
        if pid is None:
            return None
        exitcode = self._exitcodes.get(pid)
        if exitcode is not None and exitcode < 0:
            return -exitcode
        return None

    def _recover(self, runnable: List[int]) -> None:
        self._consume_journal()
        self._adopt_journal_done()
        suspects = []
        for index in runnable:
            if index in self.slots:
                continue
            if (
                index in self._gen_started
                and index not in self._watchdog_killed
            ):
                self._crash_count[index] += 1
                pid = self._last_pid.get(index)
                emit_event(
                    "supervisor.worker-lost",
                    unit=self.units[index].name,
                    pid=pid,
                    signal=self._signal_for(pid),
                    crashes=self._crash_count[index],
                )
                if self._crash_count[index] > self.policy.crash_retries:
                    suspects.append(index)
        self._running.clear()
        for index in suspects:
            self._bisect(index)

    def _bisect(self, index: int) -> None:
        """One unit, one fresh process: find (and quarantine) poison pills."""
        unit = self.units[index]
        emit_event("supervisor.bisect", unit=unit.name)
        config = self.make_config(
            [replace(spec) for spec in self._fault_specs]
        )
        ctx = multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=self.solo_entry,
            args=(config, index, unit, self.keys[index], child_conn),
        )
        proc.start()
        child_conn.close()
        proc.join(self.deadline)
        if proc.is_alive():
            proc.kill()
            proc.join()
            parent_conn.close()
            self._consume_journal()
            self._timeout_count[index] += 1
            self.stats["watchdog_kills"] += 1
            self.stats["timeouts"] += 1
            assert self.deadline is not None
            self._record(
                index,
                timeout_outcome(
                    unit.name,
                    self._crash_count[index] + self._timeout_count[index],
                    self.deadline,
                    self.deadline,
                ),
                adjust=False,
            )
            return
        payload = None
        try:
            if parent_conn.poll(0):
                payload = parent_conn.recv()
        except (EOFError, OSError):
            payload = None
        finally:
            parent_conn.close()
        self._consume_journal()
        if isinstance(payload, dict):
            from repro.tool.batch import UnitOutcome

            try:
                outcome = UnitOutcome.from_payload(payload)
            except (KeyError, TypeError, ValueError):
                outcome = None
            if outcome is not None:
                outcome.worker_pid = proc.pid
                outcome.attempts += (
                    self._crash_count[index] + self._timeout_count[index]
                )
                self._record(index, outcome, adjust=False)
                return
        exitcode = proc.exitcode
        signum = -exitcode if exitcode is not None and exitcode < 0 else None
        self.stats["quarantined"] += 1
        emit_event(
            "supervisor.quarantine",
            unit=unit.name,
            pid=proc.pid,
            signal=signum,
        )
        self._record(
            index,
            crashed_outcome(
                unit.name,
                attempts=self._crash_count[index] + 1,
                pid=proc.pid,
                signum=signum,
            ),
            adjust=False,
        )

    def _give_up(self) -> None:
        """Respawn budget exhausted: fail what's left, structurally."""
        for index in self._runnable():
            unit = self.units[index]
            emit_event("supervisor.gave-up", unit=unit.name)
            self._record(
                index,
                crashed_outcome(
                    unit.name,
                    attempts=self._crash_count[index] + 1,
                    pid=self._last_pid.get(index),
                    signum=None,
                ),
                adjust=False,
            )

    # -- interrupt drain ---------------------------------------------------

    def _drain_interrupt(self, executor, futures: Dict[Any, Any]) -> None:
        """Ctrl-C/SIGTERM: keep what finished, kill children, come home.

        Completed futures were already harvested; journaled ``unit.done``
        payloads cover results that finished inside workers but never
        shipped.  In-flight analyses are killed rather than awaited --
        the whole point of the drain is to exit promptly without
        orphaning children.

        Pending futures are deliberately NOT cancelled: killing the
        workers breaks the pool, and the executor's management thread
        then settles every pending future with ``BrokenProcessPool``
        itself.  Cancelling first makes that ``set_exception`` call
        raise ``InvalidStateError`` inside the management thread, which
        splats a phantom traceback on stderr mid-drain.
        """
        emit_event("supervisor.interrupted")
        procs = []
        try:  # private API, best effort
            procs = list(executor._processes.values())
        except Exception:
            procs = []
        for proc in procs:
            try:
                proc.terminate()
            except Exception:
                continue
        deadline = time.time() + 1.0
        for proc in procs:
            try:
                proc.join(max(0.0, deadline - time.time()))
            except Exception:
                continue
        for proc in procs:
            try:
                if proc.is_alive():
                    proc.kill()
            except Exception:
                continue
        try:
            executor.shutdown(wait=False)
        except Exception:
            pass
        self._consume_journal()
        self._adopt_journal_done()
