"""Command-line interface: ``regionwiz file.c [options]``.

Exit-code contract (single-file mode; ``--batch`` aggregates the same
codes over all units, most severe first under 3 > 4 > 2 > 1 > 0):

====  =========================================================
code  meaning
====  =========================================================
0     analysis completed, no warnings
1     analysis completed with warnings
2     input error (unreadable file, parse/type diagnostics)
3     internal error (a bug in RegionWiz -- traceback printed)
4     resource budget exhausted, even after degradation if
      ``--degrade`` was given
130   batch sweep interrupted (SIGINT/SIGTERM): partial results
      were still written; resume with ``--journal``/``--resume``
====  =========================================================

In batch mode two supervisor-recorded outcomes fold into the same
codes: ``crashed`` (the worker *process* died repeatedly on one unit;
counts as 3) and ``timeout`` (the unit blew the ``--hard-timeout``
wall-clock deadline; counts as 4).

With ``--fail-on-new`` (requires ``--baseline``), codes 0/1 are instead
decided by the baseline diff: exit 1 only when *new* warnings appeared,
so a CI gate stays green across known findings.  Hard failures (2/3/4)
pass through unchanged.

Multiple source files are concatenated into one translation unit; each
chunk is prefixed with a ``#line 1 "<path>"`` marker so diagnostics and
warning locations report the original file and line.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import traceback
from typing import Any, Dict, List, Optional

from repro import __version__
from repro.interfaces import apr_pools_interface, rc_regions_interface
from repro.lang.errors import CompileError
from repro.obs.events import EventLog, install_event_log, uninstall_event_log
from repro.obs.export import MetricsServer, write_metrics_file
from repro.obs.history import (
    WarningDiff,
    diff_entries,
    diff_outcomes,
    entries_from_outcomes,
    entries_from_report,
    load_baseline,
    save_baseline,
)
from repro.obs.html import write_html_report
from repro.obs.live import (
    LiveView,
    TelemetryBus,
    install_bus,
    new_run_id,
    uninstall_bus,
)
from repro.obs.metrics import format_metrics, set_mem_profile
from repro.obs.registry import RunRecord, RunRegistry
from repro.obs.trace import (
    Tracer,
    current_tracer,
    install_tracer,
    uninstall_tracer,
)
from repro.pointer import AnalysisOptions
from repro.tool.batch import BatchUnit, run_batch
from repro.tool.regionwiz import RegionWizReport, run_regionwiz
from repro.tool.report import format_report, format_solver_stats
from repro.tool.validate import trace_out_path
from repro.util.budget import ResourceBudget
from repro.util.errors import BudgetExceeded, InputError

#: Provenance chains embedded in the HTML report are capped: --explain
#: recomputes the full Datalog derivation per warning, so unbounded
#: expansion would dominate large reports.
_HTML_EXPLAIN_CAP = 10

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="regionwiz",
        description=(
            "Find region lifetime inconsistencies in C programs using"
            " region-based memory management (APR pools or RC regions)."
        ),
    )
    parser.add_argument("files", nargs="+", help="C source files (concatenated)")
    parser.add_argument(
        "--interface",
        choices=["apr", "rc"],
        default=None,
        help=(
            "region interface the program uses (default: rc when every"
            " input file ends in .rc, apr otherwise)"
        ),
    )
    parser.add_argument(
        "--entry", default="main", help="program entry function (default: main)"
    )
    parser.add_argument(
        "--open",
        action="store_true",
        dest="open_program",
        help=(
            "library mode: synthesize a harness calling every exported"
            " function with unconstrained arguments (no main required)"
        ),
    )
    parser.add_argument(
        "--context-insensitive",
        action="store_true",
        help="disable context cloning (Andersen baseline)",
    )
    parser.add_argument(
        "--no-heap-cloning",
        action="store_true",
        help="disable per-context heap specialization",
    )
    parser.add_argument(
        "--field-insensitive",
        action="store_true",
        help="collapse all field offsets to zero",
    )
    parser.add_argument(
        "--refine",
        action="store_true",
        help=(
            "apply the Section 4.3 def-use refinement (suppresses"
            " same-region-variable false positives; IPSSA-style, unsound)"
        ),
    )
    parser.add_argument(
        "--sound-offsets",
        action="store_true",
        help="track unknown/dynamic offsets instead of ignoring them",
    )
    parser.add_argument(
        "--max-contexts",
        type=int,
        default=1 << 16,
        help="clamp per-function context counts (default: 65536)",
    )
    budgets = parser.add_argument_group(
        "resource budgets",
        "limits enforced at analysis checkpoints; exceeding one aborts"
        " with exit code 4 (or degrades precision under --degrade)",
    )
    budgets.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget for the whole analysis",
    )
    budgets.add_argument(
        "--max-derived",
        type=int,
        default=None,
        metavar="N",
        help="cap on derived points-to/Datalog tuples",
    )
    budgets.add_argument(
        "--max-objects",
        type=int,
        default=None,
        metavar="N",
        help="cap on abstract objects + regions",
    )
    budgets.add_argument(
        "--max-total-contexts",
        type=int,
        default=None,
        metavar="N",
        help=(
            "hard cap on total numbered contexts (unlike --max-contexts,"
            " which silently clamps per function)"
        ),
    )
    budgets.add_argument(
        "--degrade",
        action="store_true",
        help=(
            "on budget exhaustion, retry at lower precision"
            " (heap cloning off, then context-insensitive, then"
            " field-insensitive) instead of failing"
        ),
    )
    batch = parser.add_argument_group("batch mode")
    batch.add_argument(
        "--batch",
        action="store_true",
        help=(
            "analyze each file as an independent unit with fault"
            " isolation, printing a per-unit summary"
        ),
    )
    batch.add_argument(
        "--keep-going",
        action="store_true",
        help="in batch mode, continue past failed units",
    )
    batch.add_argument(
        "--max-retries",
        type=int,
        default=0,
        metavar="N",
        help="in batch mode, retry units failing with internal errors",
    )
    batch.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "in batch mode, analyze units on N worker processes"
            " (outcomes stay in submission order; default: 1, serial)"
        ),
    )
    batch.add_argument(
        "--chunk",
        type=int,
        default=None,
        metavar="N",
        dest="chunk_size",
        help=(
            "in parallel batch mode, dispatch N units per worker task"
            " (default: sized for ~4 chunks per worker)"
        ),
    )
    batch.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        dest="cache_dir",
        help=(
            "in batch mode, reuse/store per-unit results in a persistent"
            " content-addressed cache under DIR (keyed by source text,"
            " interface, entry, options, and tool version)"
        ),
    )
    batch.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache even if --cache was given",
    )
    batch.add_argument(
        "--incremental",
        action="store_true",
        help=(
            "keep per-unit incremental analysis state in the --cache"
            " directory: warm re-runs diff function-level manifests,"
            " serve unchanged units, and re-solve only the fact delta"
            " for edited ones (also works in single-file mode)"
        ),
    )
    batch.add_argument(
        "--hard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "in parallel batch mode, SIGKILL any unit still running"
            " after SECONDS of wall clock and record a timeout outcome"
            " (exit 4); default: budget wall clock x grace factor, or"
            " no hard limit without a wall-clock budget"
        ),
    )
    batch.add_argument(
        "--journal",
        metavar="FILE",
        default=None,
        help=(
            "in batch mode, append completed unit outcomes to a JSONL"
            " run journal at FILE (enables --resume after a crashed or"
            " interrupted sweep)"
        ),
    )
    batch.add_argument(
        "--resume",
        action="store_true",
        help=(
            "replay outcomes already completed in the --journal file"
            " (matched by unit content + analysis configuration) and"
            " re-analyze only the rest"
        ),
    )
    validation = parser.add_argument_group(
        "dynamic validation",
        "execute the program under the region interpreter with event"
        " tracing, replay the trace, and label every warning"
        " confirmed/unobserved/uncovered against observed faults",
    )
    validation.add_argument(
        "--validate",
        action="store_true",
        help=(
            "run the entry point under the traced interpreter and"
            " annotate each warning with a dynamic verdict (in batch"
            " mode, per unit with fault isolation)"
        ),
    )
    validation.add_argument(
        "--validate-steps",
        type=int,
        default=200_000,
        metavar="N",
        dest="validate_steps",
        help=(
            "interpreter step budget for --validate runs (default:"
            " 200000; exceeding it degrades labels, never the analysis)"
        ),
    )
    validation.add_argument(
        "--trace-out",
        metavar="DIR",
        default=None,
        dest="trace_out",
        help=(
            "with --validate, write each unit's region event trace as"
            " <unit>.trace.jsonl under DIR (versioned JSONL, replayable"
            " with repro.obs.replay)"
        ),
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="show low-ranked warnings too (default: high-ranked only)",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="show store locations"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="json_output",
        help="emit a machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        dest="solver_stats",
        help=(
            "collect and print Datalog solver statistics to stderr"
            " (fixpoint rounds, tuples derived, index hits, per-stratum"
            " timings); always embedded in --json reports"
        ),
    )
    obs = parser.add_argument_group(
        "observability",
        "tracing, metrics, and warning provenance; diagnostic output"
        " goes to stderr so stdout stays the warning report",
    )
    obs.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "record a span trace of the whole run and write Chrome"
            " trace_event JSON to PATH (load in chrome://tracing or"
            " Perfetto)"
        ),
    )
    obs.add_argument(
        "--profile",
        action="store_true",
        help="print the span tree as an indented text profile on stderr",
    )
    obs.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "print the unified metrics registry on stderr (per-unit"
            " table plus fleet percentiles under --batch)"
        ),
    )
    obs.add_argument(
        "--explain",
        type=int,
        default=None,
        metavar="N",
        help=(
            "print the Datalog derivation chain behind warning N"
            " (1-based, report order) instead of the warning listing"
        ),
    )
    obs.add_argument(
        "--query",
        metavar="FILE:LINE",
        default=None,
        help=(
            "answer one question instead of the full analysis: restrict"
            " the consistency check to the pointer accesses at FILE:LINE"
            " via the demand-transformed (magic-sets) Datalog program"
            " and report only warnings those accesses participate in"
        ),
    )
    obs.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help=(
            "append a structured JSONL event log to PATH: phase"
            " boundaries, ladder degradations, budget trips, cache"
            " probes, batch unit outcomes, and warning emissions"
            " (workers share the parent's file and timeline)"
        ),
    )
    obs.add_argument(
        "--html-report",
        metavar="PATH",
        default=None,
        dest="html_report",
        help=(
            "write a single self-contained HTML report (inline CSS/JS,"
            " no network fetches): warning table with fingerprints and"
            " diff status, metrics, profile tree, batch unit grid"
        ),
    )
    history = parser.add_argument_group(
        "warning history",
        "content-stable fingerprints make warnings diffable across"
        " runs; baselines are JSONL files of (unit, fingerprint) records",
    )
    history.add_argument(
        "--save-baseline",
        metavar="PATH",
        default=None,
        dest="save_baseline",
        help="write this run's warnings as a baseline JSONL file",
    )
    history.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=(
            "diff this run against a saved baseline, classifying each"
            " warning as new/persisting/fixed in the report"
        ),
    )
    history.add_argument(
        "--fail-on-new",
        action="store_true",
        dest="fail_on_new",
        help=(
            "CI gate: exit 1 only when warnings NOT in --baseline"
            " appear (known warnings exit 0; hard failures unchanged)"
        ),
    )
    live = parser.add_argument_group(
        "live telemetry and run history",
        "operational observability: a live fleet status line, an"
        " OpenMetrics surface, and a persistent run registry; inspect"
        " past runs with the `regionwiz history` subcommand",
    )
    live.add_argument(
        "--live",
        action="store_true",
        help=(
            "render a rate-limited fleet status line on stderr during"
            " --batch: units done, throughput, cache hit rate, ETA"
            " (bytes-weighted), respawn/watchdog counts; plain periodic"
            " lines when stderr is not a TTY"
        ),
    )
    live.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        dest="metrics_out",
        help=(
            "write a final OpenMetrics text snapshot of the run"
            " (fleet progress plus analysis metrics) to FILE"
        ),
    )
    live.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        dest="metrics_port",
        help=(
            "serve /metrics (OpenMetrics) and /healthz on"
            " 127.0.0.1:PORT for the duration of the run; PORT 0 binds"
            " an ephemeral port, announced on stderr before analysis"
            " starts"
        ),
    )
    live.add_argument(
        "--registry",
        metavar="FILE",
        default=None,
        help=(
            "append this run (outcome counts, metrics snapshot,"
            " wall/CPU time) to a persistent sqlite run registry;"
            " query it later with `regionwiz history --registry FILE`"
        ),
    )
    live.add_argument(
        "--mem-profile",
        action="store_true",
        dest="mem_profile",
        help=(
            "record per-phase peak heap usage via tracemalloc as"
            " pipeline.<phase>.peak_mem_bytes gauges (slows analysis;"
            " off by default)"
        ),
    )
    return parser


def _read_sources(paths: List[str]) -> List[str]:
    """Read every file, raising :class:`InputError` on the first failure."""
    chunks = []
    for path in paths:
        try:
            with open(path) as handle:
                chunks.append(handle.read())
        except OSError as error:
            raise InputError(f"cannot read {path}: {error}") from error
    return chunks


def _concatenate(paths: List[str], chunks: List[str]) -> str:
    """Join chunks with ``#line`` markers so locations stay per-file."""
    parts = []
    for path, chunk in zip(paths, chunks):
        if not chunk.endswith("\n"):
            chunk += "\n"
        parts.append(f'#line 1 "{path}"\n{chunk}')
    return "".join(parts)


def _budget_from_args(args: argparse.Namespace) -> Optional[ResourceBudget]:
    if (
        args.timeout is None
        and args.max_derived is None
        and args.max_objects is None
        and args.max_total_contexts is None
    ):
        return None
    return ResourceBudget(
        wall_clock_seconds=args.timeout,
        max_derived_tuples=args.max_derived,
        max_contexts=args.max_total_contexts,
        max_objects=args.max_objects,
    )


def _detect_interface(paths: List[str], explicit: Optional[str]) -> str:
    """Explicit ``--interface`` wins; otherwise ``.rc`` files mean rc."""
    if explicit is not None:
        return explicit
    if paths and all(path.endswith(".rc") for path in paths):
        return "rc"
    return "apr"


def _run_batch_mode(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        print("regionwiz: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.resume and not args.journal:
        print(
            "regionwiz: --resume requires --journal FILE", file=sys.stderr
        )
        return 2
    chunks = _read_sources(args.files)
    units = [
        BatchUnit(
            name=path,
            source=chunk,
            filename=path,
            # None lets BatchUnit auto-detect rc from a .rc filename,
            # matching the single-run CLI's per-file detection.
            interface=args.interface,
            entry=args.entry,
        )
        for path, chunk in zip(args.files, chunks)
    ]
    options = _options_from_args(args)
    cache = None if args.no_cache else args.cache_dir
    result = run_batch(
        units,
        options=options,
        budget=_budget_from_args(args),
        degrade=args.degrade,
        keep_going=args.keep_going,
        max_retries=args.max_retries,
        refine=args.refine,
        solver_stats=args.solver_stats,
        jobs=args.jobs,
        cache=cache,
        chunk_size=args.chunk_size,
        hard_timeout=args.hard_timeout,
        journal=args.journal,
        resume=args.resume,
        validate=args.validate,
        validate_steps=args.validate_steps,
        trace_dir=args.trace_out,
        incremental=args.incremental,
        run_id=getattr(args, "run_id", None),
    )
    fleet = result.fleet_metrics()
    batch_metrics: Dict[str, Any] = dict(result.batch_metrics().to_dict())
    for name, stats in sorted(fleet.items()):
        mean = stats.get("mean")
        if isinstance(mean, (int, float)):
            batch_metrics[f"{name}.mean"] = mean
    args._telemetry_summary = {
        "mode": "batch",
        "units": len(result.outcomes),
        "succeeded": len(result.succeeded),
        "failed": len(result.failed),
        "skipped": len(result.skipped),
        "warnings": sum(o.warnings for o in result.succeeded),
        "high": sum(o.high for o in result.succeeded),
        "metrics": batch_metrics,
    }
    merged: Optional[WarningDiff] = None
    if args.baseline:
        baseline = load_baseline(args.baseline)
        result.per_unit_diff = diff_outcomes(result.outcomes, baseline)
        merged = result.merged_diff()
    if args.save_baseline:
        save_baseline(
            args.save_baseline, entries_from_outcomes(result.outcomes)
        )
    if args.json_output:
        print(result.to_json())
    else:
        print(result.summary())
    if args.metrics:
        print(result.metrics_summary(), file=sys.stderr)
    if args.html_report:
        write_html_report(
            args.html_report,
            title="RegionWiz batch report",
            batch=result,
            diff=merged,
            per_unit_diff=result.per_unit_diff,
            profile=_profile_tree(),
        )
    if result.interrupted:
        # Partial results were printed above; the conventional
        # 128+SIGINT code tells callers the sweep did not finish.
        return 130
    code = result.exit_code()
    if args.fail_on_new and code in (0, 1):
        assert merged is not None  # --fail-on-new requires --baseline
        return 1 if merged.has_new else 0
    return code


def _incremental_summary(session) -> str:
    """One stderr line describing what the incremental session did."""
    mode = session.mode or "cold"
    parts = [f"incremental: {mode}"]
    if session.diff is not None and not session.diff.clean:
        parts.append(f"functions changed: {session.diff.functions_touched}")
        if session.diff.preamble_changed:
            parts.append("preamble changed")
    if session.fallback_reason is not None:
        parts.append(f"fallback: {session.fallback_reason}")
    stats = session.update_stats
    if stats is not None and stats.mode == "delta":
        parts.append(
            f"facts +{stats.facts_asserted}/-{stats.facts_retracted}"
        )
        parts.append(
            f"strata skipped {stats.strata_skipped}/{stats.strata_total}"
        )
    return "  ".join(parts)


def _profile_tree() -> Optional[str]:
    """The active tracer's span tree, for the HTML report's profile pane."""
    tracer = current_tracer()
    if tracer is None or not tracer.roots:
        return None
    return tracer.format_tree()


def _html_explanations(report: RegionWizReport) -> Optional[Dict[str, str]]:
    """fingerprint -> derivation chain for the first few warnings."""
    from repro.obs.provenance import explain_warning

    explanations: Dict[str, str] = {}
    for number, warning in enumerate(report.warnings[:_HTML_EXPLAIN_CAP], 1):
        try:
            explanations[warning.fingerprint] = explain_warning(
                report, number
            ).format()
        except Exception:  # provenance is best-effort decoration here
            continue
    return explanations or None


def _options_from_args(args: argparse.Namespace) -> AnalysisOptions:
    return AnalysisOptions(
        context_sensitive=not args.context_insensitive,
        heap_cloning=not args.no_heap_cloning,
        field_sensitive=not args.field_insensitive,
        track_unknown_offsets=args.sound_offsets,
        max_contexts=args.max_contexts,
    )


def _corpus_label(paths: List[str]) -> str:
    """Stable short label identifying the input set for the registry."""
    names = sorted({os.path.basename(path) for path in paths})
    if len(names) > 8:
        names = names[:8] + [f"+{len(names) - 8}"]
    return ",".join(names)


def _finish_telemetry(
    args: argparse.Namespace,
    code: int,
    bus: Optional[TelemetryBus],
    registry_store: Optional[RunRegistry],
    wall_start: float,
    cpu_start: float,
) -> int:
    """Record the run in the registry and write the final metrics file.

    Runs after ``_run`` with the exit code in hand so the registry row
    captures the real outcome; a failed ``--metrics-out`` write only
    overrides soft exit codes (0/1), never a harder failure.
    """
    summary = getattr(args, "_telemetry_summary", None) or {}
    metrics: Dict[str, Any] = {}
    if bus is not None:
        metrics.update(bus.snapshot())
    metrics.update(summary.get("metrics") or {})
    if registry_store is not None:
        record = RunRecord(
            run_id=args.run_id,
            timestamp=time.time(),
            version=__version__,
            mode=summary.get("mode")
            or ("batch" if args.batch else "single"),
            corpus=_corpus_label(args.files),
            units=int(summary.get("units", 0)),
            succeeded=int(summary.get("succeeded", 0)),
            failed=int(summary.get("failed", 0)),
            skipped=int(summary.get("skipped", 0)),
            warnings=int(summary.get("warnings", 0)),
            high=int(summary.get("high", 0)),
            exit_code=code,
            wall_s=round(time.time() - wall_start, 6),
            cpu_s=round(sum(os.times()[:4]) - cpu_start, 6),
            metrics=metrics,
        )
        try:
            registry_store.record(record)
        except InputError as error:
            print(f"regionwiz: {error}", file=sys.stderr)
            if code in (0, 1):
                return 2
    if args.metrics_out:
        try:
            write_metrics_file(args.metrics_out, metrics)
        except OSError as error:
            print(
                f"regionwiz: cannot write {args.metrics_out}: {error}",
                file=sys.stderr,
            )
            if code in (0, 1):
                return 2
    return code


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = list(sys.argv[1:])
    if argv and argv[0] == "history":
        # Subcommand dispatch happens before argparse: the main parser
        # has a required FILE positional that `history` does not take.
        from repro.obs.registry import run_history_command

        return run_history_command(list(argv[1:]))
    args = build_parser().parse_args(argv)
    args.run_id = new_run_id()
    args._telemetry_summary = None
    wall_start = time.time()
    cpu_start = sum(os.times()[:4])
    registry_store: Optional[RunRegistry] = None
    if args.registry:
        try:
            registry_store = RunRegistry(args.registry)
        except InputError as error:
            print(f"regionwiz: {error}", file=sys.stderr)
            return 2
    bus: Optional[TelemetryBus] = None
    previous_bus: Optional[TelemetryBus] = None
    view: Optional[LiveView] = None
    server: Optional[MetricsServer] = None
    tracer: Optional[Tracer] = None
    previous: Optional[Tracer] = None
    event_log: Optional[EventLog] = None
    previous_log: Optional[EventLog] = None
    bus_installed = False
    try:
        if args.live or args.metrics_port is not None or args.metrics_out:
            bus = TelemetryBus(run_id=args.run_id, jobs=args.jobs)
            previous_bus = install_bus(bus)
            bus_installed = True
            if args.live:
                if args.batch:
                    view = LiveView(bus)
                    bus.attach(view)
                else:
                    print(
                        "regionwiz: --live shows fleet progress and does"
                        " nothing outside --batch",
                        file=sys.stderr,
                    )
        if args.metrics_port is not None:
            assert bus is not None
            try:
                server = MetricsServer(
                    args.metrics_port, bus.snapshot, run_id=args.run_id
                )
                server.start()
            except InputError as error:
                print(f"regionwiz: {error}", file=sys.stderr)
                return 2
            # Announced before analysis starts so a scraper can attach
            # immediately (PORT 0 binds an ephemeral port).
            print(
                f"regionwiz: serving http://127.0.0.1:{server.port}"
                "/metrics (and /healthz)",
                file=sys.stderr,
            )
        set_mem_profile(args.mem_profile)
        # --html-report embeds the profile tree, so it wants a tracer too.
        if args.trace or args.profile or args.html_report:
            tracer = Tracer(run_id=args.run_id)
            previous = install_tracer(tracer)
        if args.events:
            try:
                event_log = EventLog(args.events, run_id=args.run_id)
            except OSError as error:
                print(
                    f"regionwiz: cannot write event log"
                    f" {args.events}: {error}",
                    file=sys.stderr,
                )
                return 2
            previous_log = install_event_log(event_log)
        code = _run(args)
        return _finish_telemetry(
            args, code, bus, registry_store, wall_start, cpu_start
        )
    finally:
        if event_log is not None:
            uninstall_event_log(previous_log)
            event_log.close()
        if tracer is not None:
            uninstall_tracer(previous)
            if args.trace:
                tracer.write_chrome_trace(args.trace)
            if args.profile:
                print(tracer.format_tree(), file=sys.stderr)
        set_mem_profile(False)
        if view is not None:
            view.close()
        if bus_installed:
            uninstall_bus(previous_bus)
        if server is not None:
            server.close()
        if registry_store is not None:
            registry_store.close()


def _parse_query(spec: str) -> "tuple[str, int]":
    """Split a ``--query FILE:LINE`` spec (raises :class:`InputError`)."""
    path, sep, line_text = spec.rpartition(":")
    if not sep or not path:
        raise InputError(
            f"--query expects FILE:LINE, got {spec!r}"
        )
    try:
        line = int(line_text)
    except ValueError:
        raise InputError(
            f"--query expects an integer line number, got {line_text!r}"
        ) from None
    if line < 1:
        raise InputError(f"--query line must be >= 1, got {line}")
    return path, line


def _run(args: argparse.Namespace) -> int:
    if args.fail_on_new and not args.baseline:
        print(
            "regionwiz: --fail-on-new requires --baseline", file=sys.stderr
        )
        return 2
    if args.trace_out and not args.validate:
        print(
            "regionwiz: --trace-out requires --validate", file=sys.stderr
        )
        return 2
    if args.incremental and (args.no_cache or not args.cache_dir):
        print(
            "regionwiz: --incremental requires --cache DIR",
            file=sys.stderr,
        )
        return 2
    if args.query is not None:
        conflict = (
            "--batch"
            if args.batch
            else "--open"
            if args.open_program
            else "--incremental"
            if args.incremental
            else None
        )
        if conflict is not None:
            print(
                f"regionwiz: --query cannot be combined with {conflict}",
                file=sys.stderr,
            )
            return 2
    try:
        if args.batch:
            return _run_batch_mode(args)
        chunks = _read_sources(args.files)
        source = _concatenate(args.files, chunks)
        interface = (
            rc_regions_interface()
            if _detect_interface(args.files, args.interface) == "rc"
            else apr_pools_interface()
        )
        options = _options_from_args(args)
        budget = _budget_from_args(args)
        if args.open_program:
            from repro.tool.open_analysis import analyze_open_program

            report = analyze_open_program(
                source,
                interface,
                filename=args.files[0],
                options=options,
                name=args.files[0],
                solver_stats=args.solver_stats,
                budget=budget,
                degrade=args.degrade,
            )
        else:
            query = (
                _parse_query(args.query) if args.query is not None else None
            )
            session = None
            if args.incremental:
                from repro.tool.cache import AnalysisCache
                from repro.tool.incremental import IncrementalUnitSession

                cache = AnalysisCache(args.cache_dir)
                identity = AnalysisCache.identity_key(
                    name=args.files[0],
                    filename=args.files[0],
                    interface=_detect_interface(
                        args.files, args.interface
                    ),
                    entry=args.entry,
                    options=options,
                    budget=budget,
                    degrade=args.degrade,
                    refine=args.refine,
                    solver_stats=args.solver_stats,
                )
                session = IncrementalUnitSession(cache, identity)
                session.probe(source, args.files[0])
            report = run_regionwiz(
                source,
                filename=args.files[0],
                interface=interface,
                entry=args.entry,
                options=options,
                name=args.files[0],
                refine=args.refine,
                solver_stats=args.solver_stats,
                budget=budget,
                degrade=args.degrade,
                incremental=session,
                query=query,
            )
            if session is not None:
                session.store()
                print(_incremental_summary(session), file=sys.stderr)
    except (CompileError, InputError) as error:
        print(f"regionwiz: {error}", file=sys.stderr)
        return 2
    except BudgetExceeded as error:
        print(f"regionwiz: {error}", file=sys.stderr)
        return 4
    except Exception:  # a RegionWiz bug: surface it, don't mask it as 2
        traceback.print_exc()
        print("regionwiz: internal error", file=sys.stderr)
        return 3
    # Counted before the high-ranked filter so the registry row records
    # the analysis result, not the display filter.
    args._telemetry_summary = {
        "mode": "single",
        "units": 1,
        "succeeded": 1,
        "failed": 0,
        "skipped": 0,
        "warnings": len(report.warnings),
        "high": sum(1 for w in report.warnings if w.high_ranked),
        "metrics": (
            report.metrics.to_dict() if report.metrics is not None else {}
        ),
    }
    if not args.all:
        report.warnings = [w for w in report.warnings if w.high_ranked]
    validation = None
    if args.validate:
        from repro.tool.validate import validate_report

        # Validation runs after the high-ranked filter so labels align
        # with the warnings the report actually displays.
        trace_path = (
            trace_out_path(args.trace_out, report.name)
            if args.trace_out
            else None
        )
        validation = validate_report(
            report,
            max_steps=args.validate_steps,
            trace_path=trace_path,
        )
        if validation.status != "ok":
            print(
                f"regionwiz: validation {validation.status}:"
                f" {validation.error}",
                file=sys.stderr,
            )
    try:
        diff: Optional[WarningDiff] = None
        if args.baseline:
            baseline = [
                entry
                for entry in load_baseline(args.baseline)
                if entry.unit == report.name
            ]
            diff = diff_entries(entries_from_report(report), baseline)
        if args.save_baseline:
            save_baseline(args.save_baseline, entries_from_report(report))
    except InputError as error:
        print(f"regionwiz: {error}", file=sys.stderr)
        return 2
    if args.solver_stats and report.times.solver is not None:
        print("solver statistics:", file=sys.stderr)
        print(format_solver_stats(report.times.solver), file=sys.stderr)
    if args.metrics and report.metrics is not None:
        print("metrics:", file=sys.stderr)
        print(format_metrics(report.metrics.to_dict()), file=sys.stderr)
    if args.explain is not None:
        from repro.obs.provenance import explain_warning

        total = len(report.warnings)
        if args.explain < 1 or args.explain > total:
            valid = f"valid range: 1..{total}" if total else "no warnings"
            print(
                f"regionwiz: --explain {args.explain} is out of range"
                f" ({valid})",
                file=sys.stderr,
            )
            return 2
        try:
            explanation = explain_warning(report, args.explain)
        except (IndexError, ValueError) as error:
            print(f"regionwiz: {error}", file=sys.stderr)
            return 2
        print(explanation.format())
        return 1 if report.warnings else 0
    if args.json_output:
        from repro.tool.report import report_to_json

        print(
            report_to_json(
                report,
                diff=diff,
                validation=validation,
                run_id=getattr(args, "run_id", None),
            )
        )
    else:
        print(
            format_report(
                report,
                verbose=args.verbose,
                diff=diff,
                validation=validation,
            )
        )
    if args.html_report:
        write_html_report(
            args.html_report,
            title=f"RegionWiz report: {report.name}",
            report=report,
            diff=diff,
            profile=_profile_tree(),
            explanations=_html_explanations(report),
            validation=(
                validation.to_payload() if validation is not None else None
            ),
        )
    if args.fail_on_new:
        assert diff is not None  # validated above
        return 1 if diff.has_new else 0
    return 1 if report.warnings else 0


if __name__ == "__main__":
    sys.exit(main())
