"""Command-line interface: ``regionwiz file.c [options]``."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.interfaces import apr_pools_interface, rc_regions_interface
from repro.lang.errors import CompileError
from repro.pointer import AnalysisOptions
from repro.tool.regionwiz import run_regionwiz
from repro.tool.report import format_report

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="regionwiz",
        description=(
            "Find region lifetime inconsistencies in C programs using"
            " region-based memory management (APR pools or RC regions)."
        ),
    )
    parser.add_argument("files", nargs="+", help="C source files (concatenated)")
    parser.add_argument(
        "--interface",
        choices=["apr", "rc"],
        default="apr",
        help="region interface the program uses (default: apr)",
    )
    parser.add_argument(
        "--entry", default="main", help="program entry function (default: main)"
    )
    parser.add_argument(
        "--open",
        action="store_true",
        dest="open_program",
        help=(
            "library mode: synthesize a harness calling every exported"
            " function with unconstrained arguments (no main required)"
        ),
    )
    parser.add_argument(
        "--context-insensitive",
        action="store_true",
        help="disable context cloning (Andersen baseline)",
    )
    parser.add_argument(
        "--no-heap-cloning",
        action="store_true",
        help="disable per-context heap specialization",
    )
    parser.add_argument(
        "--field-insensitive",
        action="store_true",
        help="collapse all field offsets to zero",
    )
    parser.add_argument(
        "--refine",
        action="store_true",
        help=(
            "apply the Section 4.3 def-use refinement (suppresses"
            " same-region-variable false positives; IPSSA-style, unsound)"
        ),
    )
    parser.add_argument(
        "--sound-offsets",
        action="store_true",
        help="track unknown/dynamic offsets instead of ignoring them",
    )
    parser.add_argument(
        "--max-contexts",
        type=int,
        default=1 << 16,
        help="clamp per-function context counts (default: 65536)",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="show low-ranked warnings too (default: high-ranked only)",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="show store locations"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="json_output",
        help="emit a machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        dest="solver_stats",
        help=(
            "collect and print Datalog solver statistics (fixpoint"
            " rounds, tuples derived, index hits, per-stratum timings)"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    chunks = []
    for path in args.files:
        try:
            with open(path) as handle:
                chunks.append(handle.read())
        except OSError as error:
            print(f"regionwiz: cannot read {path}: {error}", file=sys.stderr)
            return 2
    source = "\n".join(chunks)
    interface = (
        rc_regions_interface() if args.interface == "rc" else apr_pools_interface()
    )
    options = AnalysisOptions(
        context_sensitive=not args.context_insensitive,
        heap_cloning=not args.no_heap_cloning,
        field_sensitive=not args.field_insensitive,
        track_unknown_offsets=args.sound_offsets,
        max_contexts=args.max_contexts,
    )
    try:
        if args.open_program:
            from repro.tool.open_analysis import analyze_open_program

            report = analyze_open_program(
                source,
                interface,
                filename=args.files[0],
                options=options,
                name=args.files[0],
                solver_stats=args.solver_stats,
            )
        else:
            report = run_regionwiz(
                source,
                filename=args.files[0],
                interface=interface,
                entry=args.entry,
                options=options,
                name=args.files[0],
                refine=args.refine,
                solver_stats=args.solver_stats,
            )
    except (CompileError, ValueError) as error:
        print(f"regionwiz: {error}", file=sys.stderr)
        return 2
    if not args.all:
        report.warnings = [w for w in report.warnings if w.high_ranked]
    if args.json_output:
        from repro.tool.report import report_to_json

        print(report_to_json(report))
    else:
        print(format_report(report, verbose=args.verbose))
    return 1 if report.warnings else 0


if __name__ == "__main__":
    sys.exit(main())
