"""Persistent content-addressed cache for batch analysis outcomes.

A warm re-run of an unchanged corpus should skip analysis entirely: the
batch driver (:func:`repro.tool.batch.run_batch`) consults an
:class:`AnalysisCache` before analyzing each unit and stores every
successful outcome afterwards.  Entries are keyed by a SHA-256 over
*everything that can change the report*:

* the unit's source text, filename (it appears in warning locations),
  effective region interface, and entry function;
* the :class:`~repro.pointer.AnalysisOptions` precision knobs;
* the degradation settings (``degrade`` flag plus the
  :class:`~repro.util.budget.ResourceBudget` limits -- a different
  budget can land on a different ladder rung);
* the ``refine`` and ``solver_stats`` switches (they change the warning
  set and the metrics payload respectively);
* the tool version (``repro.__version__``), the analysis-semantics stamp
  (:data:`repro.tool.regionwiz.ANALYSIS_VERSION`), and the cache schema
  version.

Only *successful* outcomes (``clean``/``warnings``) are cached: input
errors are cheap to rediscover and internal errors may be transient, so
re-serving either from a cache would mask fixes and retries.

Entries are one JSON file per key, written atomically (temp file +
``os.replace``) so concurrent writers -- parallel batch workers' parent
processes, or two sweeps sharing a cache directory -- can never leave a
torn file.  A corrupted or unreadable entry is treated as a miss (and
deleted best-effort), never an error: the cache is an accelerator, not a
source of truth.  Eviction itself races under ``--jobs`` -- two readers
can both detect the same corrupt entry and unlink it -- so
:meth:`AnalysisCache._evict` tolerates losing (``FileNotFoundError`` and
any other ``OSError`` are a successful eviction from the caller's point
of view: the entry is gone).

The cache directory doubles as the home of *incremental analysis state*
(:mod:`repro.tool.incremental`): per-unit manifest + solver-snapshot
files addressed by :meth:`AnalysisCache.identity_key` -- the unit's
identity (filename, interface, entry, configuration, versions) with the
source text deliberately excluded, so an edited unit still finds the
state its previous run left behind.  State files follow the same
atomic-write / corrupt-entry-degrades-to-miss discipline.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

from repro.pointer import AnalysisOptions
from repro.util.budget import ResourceBudget

__all__ = ["AnalysisCache", "CACHE_SCHEMA_VERSION"]

#: Bump when the on-disk entry layout changes (old entries become misses).
#: 2: outcome payloads carry warning ``fingerprints`` (baseline diffing
#: must work from cached outcomes, so pre-fingerprint entries are stale).
CACHE_SCHEMA_VERSION = 2


class AnalysisCache:
    """One cache directory: lookup/store plus hit/miss counters."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        self.hits = 0
        self.misses = 0
        os.makedirs(self.root, exist_ok=True)

    # -- keys --------------------------------------------------------------

    @staticmethod
    def key(
        source: str,
        filename: str,
        interface: str,
        entry: str,
        options: Optional[AnalysisOptions],
        budget: Optional[ResourceBudget],
        degrade: bool,
        refine: bool,
        solver_stats: bool,
        validate: Optional[Dict[str, Any]] = None,
    ) -> str:
        """The content hash addressing one unit's outcome.

        ``validate`` is the dynamic-validation configuration (schema
        version plus step budget) when ``--validate`` is on; it enters
        the key material only when set, so caches built before the
        validation feature keep their hashes.
        """
        from repro import __version__
        from repro.tool.regionwiz import ANALYSIS_VERSION

        material = {
            "schema": CACHE_SCHEMA_VERSION,
            "tool_version": __version__,
            "analysis_version": ANALYSIS_VERSION,
            "source": source,
            "filename": filename,
            "interface": interface,
            "entry": entry,
            "options": dataclasses.asdict(options or AnalysisOptions()),
            "budget": budget.to_dict() if budget is not None else None,
            "degrade": bool(degrade),
            "refine": bool(refine),
            "solver_stats": bool(solver_stats),
        }
        if validate is not None:
            material["validate"] = validate
        blob = json.dumps(material, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    @staticmethod
    def identity_key(
        name: str,
        filename: str,
        interface: str,
        entry: str,
        options: Optional[AnalysisOptions],
        budget: Optional[ResourceBudget],
        degrade: bool,
        refine: bool,
        solver_stats: bool,
        validate: Optional[Dict[str, Any]] = None,
    ) -> str:
        """The content hash addressing one unit's *identity*.

        Same key material as :meth:`key` minus the source text: an edit
        changes the outcome key (a miss) but not the identity key, which
        is what lets an incremental warm run find the state its previous
        run stored and diff manifests against it.  ``name`` is the
        unit's batch name -- package corpora reuse filenames across
        units, and two units sharing one state slot would thrash it.
        """
        from repro import __version__
        from repro.tool.regionwiz import ANALYSIS_VERSION

        material = {
            "schema": CACHE_SCHEMA_VERSION,
            "tool_version": __version__,
            "analysis_version": ANALYSIS_VERSION,
            "name": name,
            "filename": filename,
            "interface": interface,
            "entry": entry,
            "options": dataclasses.asdict(options or AnalysisOptions()),
            "budget": budget.to_dict() if budget is not None else None,
            "degrade": bool(degrade),
            "refine": bool(refine),
            "solver_stats": bool(solver_stats),
        }
        if validate is not None:
            material["validate"] = validate
        blob = json.dumps(material, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def _state_path(self, identity: str) -> str:
        return os.path.join(self.root, f"{identity}.state.json")

    # -- lookup / store ----------------------------------------------------

    def _evict(self, path: str) -> None:
        """Best-effort removal of a corrupt entry.

        Under ``--jobs`` several workers can detect the same corruption
        concurrently; whoever unlinks second gets ``FileNotFoundError``.
        Losing that race *is* success -- the entry is gone either way --
        so every ``OSError`` is swallowed and the caller proceeds with
        its miss.
        """
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass  # another worker evicted first: same outcome
        except OSError:
            pass  # unremovable (permissions, ...): stale entry stays

    def _read_payload(self, path: str) -> Optional[Dict[str, Any]]:
        """Load one JSON payload; corruption evicts and returns None."""
        try:
            with open(path) as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                raise ValueError("bad cache entry shape")
        except FileNotFoundError:
            return None
        except (OSError, ValueError):  # ValueError covers JSONDecodeError
            self._evict(path)
            return None
        return payload

    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored outcome payload, or ``None`` (counts a hit/miss).

        Any corruption -- unreadable file, bad JSON, wrong schema --
        degrades to a miss so the unit falls back to analysis.
        """
        path = self._path(key)
        payload = self._read_payload(path)
        if payload is not None and (
            payload.get("schema") != CACHE_SCHEMA_VERSION
            or not isinstance(payload.get("outcome"), dict)
        ):
            self._evict(path)
            payload = None
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload["outcome"]

    def _write_atomic(self, path: str, payload: Dict[str, Any]) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def store(self, key: str, outcome: Dict[str, Any]) -> None:
        """Atomically persist one outcome payload under ``key``."""
        payload = {"schema": CACHE_SCHEMA_VERSION, "outcome": outcome}
        self._write_atomic(self._path(key), payload)

    # -- incremental state -------------------------------------------------

    def lookup_state(self, identity: str) -> Optional[Dict[str, Any]]:
        """The stored incremental-state payload for one unit identity.

        Shape validation beyond "a JSON object" belongs to the caller
        (:mod:`repro.tool.incremental` version-checks its own schema);
        unreadable or torn files degrade to ``None`` with the same
        race-tolerant eviction as outcome entries.
        """
        return self._read_payload(self._state_path(identity))

    def store_state(self, identity: str, payload: Dict[str, Any]) -> None:
        """Atomically persist one unit's incremental state."""
        self._write_atomic(self._state_path(identity), payload)

    def evict_state(self, identity: str) -> None:
        """Drop one unit's incremental state (corruption, schema bump)."""
        self._evict(self._state_path(identity))

    # -- telemetry ---------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """``{"hits": ..., "misses": ...}`` for this cache's lifetime."""
        return {"hits": self.hits, "misses": self.misses}

    def uncount(self, hit: bool) -> None:
        """Retract one counted lookup (a hit or a miss).

        The parallel batch scheduler probes the cache for every unit up
        front; when a ``keep_going=False`` sweep stops early, the probes
        past the failure point correspond to lookups a serial run never
        performs, and the scheduler retracts them so reported counters
        are mode-independent.
        """
        if hit:
            self.hits = max(0, self.hits - 1)
        else:
            self.misses = max(0, self.misses - 1)
