"""Persistent content-addressed cache for batch analysis outcomes.

A warm re-run of an unchanged corpus should skip analysis entirely: the
batch driver (:func:`repro.tool.batch.run_batch`) consults an
:class:`AnalysisCache` before analyzing each unit and stores every
successful outcome afterwards.  Entries are keyed by a SHA-256 over
*everything that can change the report*:

* the unit's source text, filename (it appears in warning locations),
  effective region interface, and entry function;
* the :class:`~repro.pointer.AnalysisOptions` precision knobs;
* the degradation settings (``degrade`` flag plus the
  :class:`~repro.util.budget.ResourceBudget` limits -- a different
  budget can land on a different ladder rung);
* the ``refine`` and ``solver_stats`` switches (they change the warning
  set and the metrics payload respectively);
* the tool version (``repro.__version__``), the analysis-semantics stamp
  (:data:`repro.tool.regionwiz.ANALYSIS_VERSION`), and the cache schema
  version.

Only *successful* outcomes (``clean``/``warnings``) are cached: input
errors are cheap to rediscover and internal errors may be transient, so
re-serving either from a cache would mask fixes and retries.

Entries are one JSON file per key, written atomically (temp file +
``os.replace``) so concurrent writers -- parallel batch workers' parent
processes, or two sweeps sharing a cache directory -- can never leave a
torn file.  A corrupted or unreadable entry is treated as a miss (and
deleted best-effort), never an error: the cache is an accelerator, not a
source of truth.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

from repro.pointer import AnalysisOptions
from repro.util.budget import ResourceBudget

__all__ = ["AnalysisCache", "CACHE_SCHEMA_VERSION"]

#: Bump when the on-disk entry layout changes (old entries become misses).
#: 2: outcome payloads carry warning ``fingerprints`` (baseline diffing
#: must work from cached outcomes, so pre-fingerprint entries are stale).
CACHE_SCHEMA_VERSION = 2


class AnalysisCache:
    """One cache directory: lookup/store plus hit/miss counters."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        self.hits = 0
        self.misses = 0
        os.makedirs(self.root, exist_ok=True)

    # -- keys --------------------------------------------------------------

    @staticmethod
    def key(
        source: str,
        filename: str,
        interface: str,
        entry: str,
        options: Optional[AnalysisOptions],
        budget: Optional[ResourceBudget],
        degrade: bool,
        refine: bool,
        solver_stats: bool,
        validate: Optional[Dict[str, Any]] = None,
    ) -> str:
        """The content hash addressing one unit's outcome.

        ``validate`` is the dynamic-validation configuration (schema
        version plus step budget) when ``--validate`` is on; it enters
        the key material only when set, so caches built before the
        validation feature keep their hashes.
        """
        from repro import __version__
        from repro.tool.regionwiz import ANALYSIS_VERSION

        material = {
            "schema": CACHE_SCHEMA_VERSION,
            "tool_version": __version__,
            "analysis_version": ANALYSIS_VERSION,
            "source": source,
            "filename": filename,
            "interface": interface,
            "entry": entry,
            "options": dataclasses.asdict(options or AnalysisOptions()),
            "budget": budget.to_dict() if budget is not None else None,
            "degrade": bool(degrade),
            "refine": bool(refine),
            "solver_stats": bool(solver_stats),
        }
        if validate is not None:
            material["validate"] = validate
        blob = json.dumps(material, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    # -- lookup / store ----------------------------------------------------

    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored outcome payload, or ``None`` (counts a hit/miss).

        Any corruption -- unreadable file, bad JSON, wrong schema --
        degrades to a miss so the unit falls back to analysis.
        """
        path = self._path(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
            if (
                not isinstance(payload, dict)
                or payload.get("schema") != CACHE_SCHEMA_VERSION
                or not isinstance(payload.get("outcome"), dict)
            ):
                raise ValueError("bad cache entry shape")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):  # ValueError covers JSONDecodeError
            self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return payload["outcome"]

    def store(self, key: str, outcome: Dict[str, Any]) -> None:
        """Atomically persist one outcome payload under ``key``."""
        payload = {"schema": CACHE_SCHEMA_VERSION, "outcome": outcome}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self._path(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- telemetry ---------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """``{"hits": ..., "misses": ...}`` for this cache's lifetime."""
        return {"hits": self.hits, "misses": self.misses}

    def uncount(self, hit: bool) -> None:
        """Retract one counted lookup (a hit or a miss).

        The parallel batch scheduler probes the cache for every unit up
        front; when a ``keep_going=False`` sweep stops early, the probes
        past the failure point correspond to lookups a serial run never
        performs, and the scheduler retracts them so reported counters
        are mode-independent.
        """
        if hit:
            self.hits = max(0, self.hits - 1)
        else:
            self.misses = max(0, self.misses - 1)
