"""Dynamic validation driver: execute, trace, replay, correlate.

``validate_report`` is the ``--validate`` engine: it runs the analyzed
unit's entry point under the region interpreter with a traced runtime,
replays the trace through the simulator, and correlates the runtime's
fault log with the report's static warnings.  The outcome annotates the
report (``validation`` payload, ``validation.*`` metrics) without ever
changing the static analysis verdict: a crash or budget trip during
validation degrades the labels to ``uncovered``/partial coverage, it
does not turn a successful analysis into a failed run.
"""

from __future__ import annotations

import os
import re
from typing import Optional, Sequence

from repro.obs.events import EventLog
from repro.obs.replay import replay_trace
from repro.obs.trace import trace_span
from repro.obs.validate import ValidationResult, correlate_warnings
from repro.runtime import RegionTracer, run_program
from repro.util.errors import BudgetExceeded

__all__ = ["validate_report", "trace_out_path", "DEFAULT_VALIDATE_STEPS"]

#: Default interpreter step budget for ``--validate`` runs.
DEFAULT_VALIDATE_STEPS = 200_000


def trace_out_path(directory: str, name: str) -> str:
    """``DIR/<sanitized unit name>.trace.jsonl`` (directory created).

    Shared by the single-run CLI and the batch driver so a unit's trace
    artifact lands at the same path in either mode.
    """
    os.makedirs(directory, exist_ok=True)
    safe = re.sub(r"[^A-Za-z0-9_.-]", "_", name)
    return os.path.join(directory, f"{safe}.trace.jsonl")


def validate_report(
    report,
    warnings: Optional[Sequence] = None,
    max_steps: int = DEFAULT_VALIDATE_STEPS,
    max_heap_bytes: Optional[int] = None,
    trace_path: Optional[str] = None,
) -> ValidationResult:
    """Validate ``report``'s warnings against one traced execution.

    ``warnings`` defaults to ``report.warnings``; pass the filtered list
    when the CLI displays only high-ranked warnings so labels align with
    what the user sees.  ``trace_path`` additionally streams the trace
    to a JSONL file (the ``--trace-out`` artifact).

    The execution's faults — not the replay's — are the ground truth for
    labeling; the replay cross-check lands in ``replay_consistent``.
    """
    if warnings is None:
        warnings = report.warnings
    entry = getattr(report, "entry", "main") or "main"
    interface = getattr(report, "interface", None)

    info = report.sema.functions.get(entry)
    if interface is None or info is None or info.decl.body is None:
        result = correlate_warnings(warnings, [], set())
        result.status = "no-entry"
        result.error = f"entry point {entry!r} is not a defined function"
        return result

    log = None
    if trace_path is not None:
        log = EventLog(trace_path)
    tracer = RegionTracer(log=log)
    status = "ok"
    error: Optional[str] = None
    steps = 0
    runtime = None
    try:
        with trace_span("validate.execute", unit=report.name, entry=entry):
            execution = run_program(
                report.sema,
                interface,
                entry=entry,
                max_steps=max_steps,
                max_heap_bytes=max_heap_bytes,
                tracer=tracer,
            )
        steps = execution.steps
        runtime = execution.runtime
    except BudgetExceeded as exc:
        status = "budget-exhausted"
        error = str(exc)
        steps = max_steps
    except Exception as exc:  # InterpError, RuntimeError_, RecursionError...
        status = "interp-error"
        error = f"{type(exc).__name__}: {exc}"
    finally:
        if log is not None:
            log.close()

    # Replay whatever trace exists — a partial trace still yields
    # partial coverage and any faults observed before the failure.
    with trace_span("validate.replay", unit=report.name):
        replay = replay_trace(tracer.records)
    faults = runtime.faults if runtime is not None else replay.runtime_faults
    with trace_span("validate.correlate", unit=report.name):
        result = correlate_warnings(warnings, faults, replay.covered_spans)
    result.status = status
    result.error = error
    result.steps = steps
    result.events = len(tracer.records)
    result.replay_consistent = replay.consistent
    if report.metrics is not None:
        result.fold_into(report.metrics)
    return result
