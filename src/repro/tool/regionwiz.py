"""The RegionWiz tool: the four-phase pipeline of Section 5.

1. **Call graph construction** -- direct, indirect, and implicit calls,
   pruned by reachability from the entry point.
2. **Context cloning** -- Whaley-Lam path numbering over the SCC-reduced
   call graph.
3. **Conditional correlation computation** -- the context-sensitive,
   field-sensitive pointer analysis with heap cloning, producing the
   subregion/ownership/heap effects, then the regionPair/objectPair
   verification.
4. **Post processing** -- condensation to instruction pairs and the
   ranking heuristic.

:func:`run_regionwiz` drives all four on C source text and returns a
:class:`RegionWizReport` carrying the warnings (with source locations) and
the Figure 11 statistics row.

Robustness layer: every phase polls an optional
:class:`~repro.util.budget.ResourceBudget` through cooperative
checkpoints, and on :class:`~repro.util.errors.BudgetExceeded` the driver
can walk the **graceful degradation ladder** (``degrade=True``), retrying
at successively lower precision::

    full -> no-heap-cloning -> context-insensitive -> field-insensitive

Each rung only *merges* abstract objects/contexts/fields, i.e. it widens
the effect sets ``F``/``Phi`` of Definition 3.3 -- a sound
over-approximation, so a degraded run may report more warnings but never
fewer real inconsistencies.  The rung used is recorded on the report
(``report.precision``) and surfaced by the text/JSON renderers as
``degraded(precision=...)``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # import cycle: tool.incremental imports tool.cache
    from repro.tool.incremental import IncrementalUnitSession

from repro.callgraph import (
    CallGraph,
    ImplicitCallRegistry,
    build_call_graph,
    default_registry,
)
from repro.core import (
    ConsistencyResult,
    IPair,
    RankedWarnings,
    build_hierarchy,
    check_consistency,
    rank_warnings,
    solve_object_pairs,
)
from repro.core.consistency import consistency_from_pairs
from repro.core.datalog_check import (
    accesses_at_location,
    solve_demand_pairs,
)
from repro.datalog import SolverStats, UpdateStats
from repro.interfaces import RegionInterface, apr_pools_interface
from repro.ir import IRModule, lower
from repro.lang import SemaResult, SourceLocation, analyze, parse
from repro.obs.events import emit_event
from repro.obs.fingerprint import warning_fingerprint
from repro.obs.metrics import MetricsRegistry, mem_profile_enabled
from repro.obs.trace import trace_span
from repro.pointer import (
    AnalysisOptions,
    ContextNumbering,
    PointerAnalysisResult,
    analyze_pointers,
    number_contexts,
)
from repro.util import faults
from repro.util.budget import BudgetMeter, ResourceBudget
from repro.util.errors import BudgetExceeded

__all__ = [
    "Warning_",
    "PhaseTimes",
    "Fig11Row",
    "RegionWizReport",
    "ANALYSIS_VERSION",
    "PRECISION_LADDER",
    "degrade_options",
    "run_regionwiz",
]

#: Version stamp of the analysis *semantics* (what facts are derived,
#: how warnings are ranked and described).  Part of every persistent
#: cache key (:mod:`repro.tool.cache`): bump it whenever a change can
#: alter a report for unchanged input, so stale cached outcomes can
#: never be served.
ANALYSIS_VERSION = 1

#: The graceful degradation ladder, most precise first.  Each rung keeps
#: the previous rung's weakening (cumulative), so precision decreases
#: monotonically along the ladder.
PRECISION_LADDER = (
    "full",
    "no-heap-cloning",
    "context-insensitive",
    "field-insensitive",
)


def degrade_options(options: AnalysisOptions, rung: str) -> AnalysisOptions:
    """The analysis options for one ladder rung (cumulative weakening)."""
    if rung not in PRECISION_LADDER:
        raise ValueError(f"unknown precision rung {rung!r}")
    if rung == "full":
        return options
    degraded = replace(options, heap_cloning=False)
    if rung in ("context-insensitive", "field-insensitive"):
        degraded = replace(degraded, context_sensitive=False)
    if rung == "field-insensitive":
        degraded = replace(degraded, field_sensitive=False)
    return degraded


@dataclass(frozen=True)
class Warning_:
    """A reported instruction pair with everything needed to inspect it."""

    source_site: int
    target_site: int
    source_loc: SourceLocation
    target_loc: SourceLocation
    store_locs: Tuple[SourceLocation, ...]
    high_ranked: bool
    num_contexts: int
    description: str
    #: Content-stable identity (see :mod:`repro.obs.fingerprint`); the
    #: same finding keeps the same fingerprint across engine choice,
    #: sharding, ranking tweaks, and warning order.
    fingerprint: str = ""

    def __str__(self) -> str:
        rank = "HIGH" if self.high_ranked else "low "
        return f"[{rank}] {self.description}"


@dataclass
class PhaseTimes:
    call_graph: float = 0.0
    context_cloning: float = 0.0
    correlation: float = 0.0
    post_processing: float = 0.0
    #: Datalog solver telemetry for the consistency query; populated only
    #: when :func:`run_regionwiz` is called with ``solver_stats=True``.
    solver: Optional[SolverStats] = None
    #: Delta re-solve telemetry when the run used an incremental session
    #: and the warm path ran (None on cold solves and normal runs).
    update: Optional[UpdateStats] = None
    #: Per-phase tracemalloc peaks in bytes (``--mem-profile`` only;
    #: empty otherwise, so reports stay byte-identical with it off).
    mem_peaks: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return (
            self.call_graph
            + self.context_cloning
            + self.correlation
            + self.post_processing
        )


@dataclass
class Fig11Row:
    """One row of the paper's Figure 11 quantitative table."""

    name: str
    time_seconds: float
    regions: int
    objects: int
    subregion: int
    ownership: int
    heap: int
    r_pairs: int
    o_pairs: int
    i_pairs: int
    high: int
    # Solver telemetry (populated when the run collected SolverStats;
    # deliberately not part of HEADER/as_tuple -- the Figure 11 table
    # shape matches the paper).
    solver_rounds: int = 0
    solver_derived: int = 0
    solver_ms: float = 0.0
    #: Precision rung the numbers were computed at ("full" unless the
    #: degradation ladder kicked in); not part of HEADER/as_tuple.
    precision: str = "full"

    HEADER = (
        "name", "time", "R", "H", "sub.", "own.", "heap",
        "R-pair", "O-pair", "I-pair", "high",
    )

    def as_tuple(self) -> Tuple:
        return (
            self.name,
            f"{self.time_seconds:.2f}s",
            self.regions,
            self.objects,
            self.subregion,
            self.ownership,
            self.heap,
            self.r_pairs,
            self.o_pairs,
            self.i_pairs,
            self.high,
        )


@dataclass
class RegionWizReport:
    sema: SemaResult
    module: IRModule
    graph: CallGraph
    numbering: ContextNumbering
    analysis: PointerAnalysisResult
    consistency: ConsistencyResult
    ranked: RankedWarnings
    warnings: List[Warning_]
    times: PhaseTimes
    name: str = "program"
    #: Precision rung this report was computed at (see PRECISION_LADDER).
    precision: str = "full"
    #: Rungs that were attempted and exceeded the budget before this one.
    degradation_path: Tuple[str, ...] = ()
    #: The budget the run was held to (None: unlimited).
    budget: Optional[ResourceBudget] = None
    #: Meter counters from the successful attempt (None: no budget).
    budget_usage: Optional[Dict[str, int]] = None
    #: Unified metrics registry for this run (see :mod:`repro.obs.metrics`).
    metrics: Optional[MetricsRegistry] = None
    #: Entry point and interface the analysis ran with, kept so dynamic
    #: validation (``--validate``) can execute the same configuration.
    entry: str = "main"
    interface: Optional[RegionInterface] = None

    @property
    def degraded(self) -> bool:
        """True when the degradation ladder lowered precision."""
        return self.precision != "full"

    @property
    def high_warnings(self) -> List[Warning_]:
        return [w for w in self.warnings if w.high_ranked]

    @property
    def is_consistent(self) -> bool:
        return not self.warnings

    def fig11_row(self) -> Fig11Row:
        solver = self.times.solver
        return Fig11Row(
            name=self.name,
            time_seconds=self.times.total,
            regions=self.consistency.num_regions,
            objects=self.consistency.num_objects,
            subregion=self.consistency.subregion_size,
            ownership=self.consistency.ownership_size,
            heap=self.consistency.heap_size,
            r_pairs=self.consistency.region_pair_count,
            o_pairs=self.consistency.o_pair_count,
            i_pairs=self.ranked.i_pair_count,
            high=self.ranked.high_count,
            solver_rounds=0 if solver is None else solver.rounds,
            solver_derived=0 if solver is None else solver.tuples_derived,
            solver_ms=0.0 if solver is None else solver.solve_seconds * 1e3,
            precision=self.precision,
        )


def _loc_of_site(module: IRModule, site: int) -> SourceLocation:
    try:
        return module.instr(site).loc
    except KeyError:
        return SourceLocation.UNKNOWN


def _describe(module: IRModule, ipair: IPair) -> str:
    source_loc = _loc_of_site(module, ipair.source_site)
    target_loc = _loc_of_site(module, ipair.target_site)
    base = (
        f"object allocated at {source_loc} may hold a dangling pointer to"
        f" object allocated at {target_loc}"
    )
    if not ipair.object_pairs:
        # Refinement can strip every contributing object pair; degrade to
        # a description without owner sets rather than crash mid-report.
        return f"{base} ({ipair.num_contexts} context(s))"
    sample = ipair.object_pairs[0]
    return (
        f"{base}"
        f" (owners: {', '.join(sorted(str(r) for r in sample.source_owners))}"
        f" vs {', '.join(sorted(str(r) for r in sample.target_owners))};"
        f" {ipair.num_contexts} context(s))"
    )


def _mem_reset() -> None:
    """Start/reset tracemalloc peak tracking for one pipeline phase.

    No-op unless ``--mem-profile`` armed the process-wide flag: the
    disabled path is one boolean read per phase, keeping the same <3%
    discipline as tracing.  tracemalloc itself is *not* free -- that is
    exactly why the peaks hide behind an explicit opt-in.
    """
    if not mem_profile_enabled():
        return
    import tracemalloc

    if not tracemalloc.is_tracing():
        tracemalloc.start()
    tracemalloc.reset_peak()


def _mem_peak(times: PhaseTimes, phase: str) -> None:
    """Record the tracemalloc peak since the last :func:`_mem_reset`."""
    if not mem_profile_enabled():
        return
    import tracemalloc

    if tracemalloc.is_tracing():
        times.mem_peaks[phase] = tracemalloc.get_traced_memory()[1]


@contextmanager
def _phase_events(phase: str, unit: str):
    """Bracket one pipeline phase with ``phase.start``/``phase.end``
    records on the active event log (no-op when ``--events`` is off)."""
    emit_event("phase.start", phase=phase, unit=unit)
    start = time.perf_counter()
    try:
        yield
    finally:
        emit_event(
            "phase.end",
            phase=phase,
            unit=unit,
            duration_ms=round((time.perf_counter() - start) * 1000.0, 3),
        )


def _run_pipeline(
    source: str,
    filename: str,
    interface: RegionInterface,
    entry: str,
    options: AnalysisOptions,
    registry: ImplicitCallRegistry,
    name: str,
    refine: bool,
    solver_stats: bool,
    meter: Optional[BudgetMeter],
    incremental: Optional["IncrementalUnitSession"] = None,
    query: Optional[Tuple[str, int]] = None,
) -> RegionWizReport:
    """One pipeline attempt at fixed precision (no degradation)."""
    times = PhaseTimes()

    # Frontend (the paper gets IR from Phoenix; we parse and lower).
    _mem_reset()
    with trace_span("phase.frontend") as span, _phase_events("frontend", name):
        faults.fire("frontend", unit=name, meter=meter)
        sema = analyze(parse(source, filename))
        module = lower(sema)
        span.set(functions=len(module.functions))
    _mem_peak(times, "frontend")

    # Phase 1: call graph construction.
    _mem_reset()
    start = time.perf_counter()
    with trace_span("phase.call-graph") as span, _phase_events(
        "call-graph", name
    ):
        faults.fire("call-graph", unit=name, meter=meter)
        graph = build_call_graph(
            module, entry=entry, registry=registry, meter=meter
        )
        span.set(reachable=len(graph.reachable), edges=graph.num_edges)
    times.call_graph = time.perf_counter() - start
    _mem_peak(times, "call_graph")

    # Phase 2: context cloning.
    _mem_reset()
    start = time.perf_counter()
    with trace_span("phase.context-cloning") as span, _phase_events(
        "context-cloning", name
    ):
        faults.fire("context-cloning", unit=name, meter=meter)
        numbering = number_contexts(
            graph,
            context_sensitive=options.context_sensitive,
            max_contexts=options.max_contexts,
            meter=meter,
        )
        span.set(contexts=numbering.total_contexts)
    times.context_cloning = time.perf_counter() - start
    _mem_peak(times, "context_cloning")

    # Phase 3: conditional correlation computation.
    _mem_reset()
    start = time.perf_counter()
    with trace_span("phase.correlation") as span, _phase_events(
        "correlation", name
    ):
        faults.fire("correlation", unit=name, meter=meter)
        analysis = analyze_pointers(graph, interface, options, numbering, meter)
        if query is not None:
            # Demand transformation: only the accesses anchored at the
            # queried file:line are seeded, so the subregion/ownership
            # closure is explored from them alone -- the full
            # le/regionPair closure is never materialized.
            hierarchy = build_hierarchy(
                analysis.regions, analysis.subregion
            )
            queried = accesses_at_location(
                analysis, module, query[0], query[1]
            )
            pairs, demand_stats = solve_demand_pairs(
                analysis, hierarchy, queries=queried, meter=meter
            )
            consistency = consistency_from_pairs(
                analysis, hierarchy, pairs, accesses=queried
            )
            if solver_stats:
                times.solver = demand_stats
        elif incremental is not None:
            consistency, times.update = incremental.check_consistency(
                analysis, module, meter
            )
            if solver_stats:
                _, times.solver = solve_object_pairs(analysis, meter=meter)
        else:
            consistency = check_consistency(analysis)
            if solver_stats:
                _, times.solver = solve_object_pairs(analysis, meter=meter)
        span.set(
            regions=len(analysis.regions),
            objects=len(analysis.objects),
            object_pairs=consistency.o_pair_count,
        )
    times.correlation = time.perf_counter() - start
    _mem_peak(times, "correlation")

    # Phase 4: post processing.
    _mem_reset()
    start = time.perf_counter()
    with trace_span("phase.post-processing") as span, _phase_events(
        "post-processing", name
    ):
        faults.fire("post-processing", unit=name, meter=meter)
        if meter is not None:
            meter.checkpoint("post-processing")
        ranked = rank_warnings(consistency)
        if refine:
            from repro.core.refine import refine_warnings

            ranked = refine_warnings(ranked, module, interface)
        warnings = []
        for ipair in ranked:
            store_locs = tuple(
                sorted(
                    (_loc_of_site(module, uid) for uid in ipair.store_uids),
                    key=str,
                )
            )
            warning = Warning_(
                source_site=ipair.source_site,
                target_site=ipair.target_site,
                source_loc=_loc_of_site(module, ipair.source_site),
                target_loc=_loc_of_site(module, ipair.target_site),
                store_locs=store_locs,
                high_ranked=ipair.high_ranked,
                num_contexts=ipair.num_contexts,
                description=_describe(module, ipair),
            )
            warning = replace(
                warning,
                fingerprint=warning_fingerprint(warning, interface.name),
            )
            emit_event(
                "warning",
                unit=name,
                fingerprint=warning.fingerprint,
                rank="high" if warning.high_ranked else "low",
                description=warning.description,
            )
            warnings.append(warning)
        span.set(
            i_pairs=ranked.i_pair_count,
            high=ranked.high_count,
        )
    times.post_processing = time.perf_counter() - start
    _mem_peak(times, "post_processing")

    return RegionWizReport(
        sema=sema,
        module=module,
        graph=graph,
        numbering=numbering,
        analysis=analysis,
        consistency=consistency,
        ranked=ranked,
        warnings=warnings,
        times=times,
        name=name,
        entry=entry,
        interface=interface,
    )


def _collect_metrics(report: RegionWizReport) -> MetricsRegistry:
    """Fold one run's readings into the unified ``repro.obs`` registry."""
    registry = MetricsRegistry()
    times = report.times
    registry.gauge("pipeline.call_graph_ms", times.call_graph * 1000.0)
    registry.gauge("pipeline.context_cloning_ms", times.context_cloning * 1000.0)
    registry.gauge("pipeline.correlation_ms", times.correlation * 1000.0)
    registry.gauge("pipeline.post_processing_ms", times.post_processing * 1000.0)
    registry.gauge("pipeline.total_ms", times.total * 1000.0)
    registry.gauge("callgraph.reachable", len(report.graph.reachable))
    registry.gauge("callgraph.edges", report.graph.num_edges)
    registry.gauge("pointer.contexts", report.numbering.total_contexts)
    registry.gauge("pointer.regions", len(report.analysis.regions))
    registry.gauge("pointer.objects", len(report.analysis.objects))
    registry.gauge("pointer.iterations", report.analysis.iterations)
    registry.gauge("effects.subregion", report.consistency.subregion_size)
    registry.gauge("effects.ownership", report.consistency.ownership_size)
    registry.gauge("effects.heap", report.consistency.heap_size)
    registry.gauge("warnings.region_pairs", report.consistency.region_pair_count)
    registry.gauge("warnings.object_pairs", report.consistency.o_pair_count)
    registry.gauge("warnings.i_pairs", report.ranked.i_pair_count)
    registry.gauge("warnings.high", report.ranked.high_count)
    registry.gauge("ladder.degraded", 1 if report.degraded else 0)
    registry.gauge("ladder.failed_rungs", len(report.degradation_path))
    for phase, peak in sorted(times.mem_peaks.items()):
        registry.gauge(f"pipeline.{phase}.peak_mem_bytes", peak)
    if times.solver is not None:
        registry.absorb_solver_stats(times.solver)
    if times.update is not None:
        registry.absorb_update_stats(times.update)
    if report.budget_usage is not None:
        registry.absorb_budget_usage(report.budget_usage)
    return registry


def run_regionwiz(
    source: str,
    filename: str = "<input>",
    interface: Optional[RegionInterface] = None,
    entry: str = "main",
    options: Optional[AnalysisOptions] = None,
    registry: Optional[ImplicitCallRegistry] = None,
    name: str = "program",
    refine: bool = False,
    solver_stats: bool = False,
    budget: Optional[ResourceBudget] = None,
    degrade: bool = False,
    incremental: Optional["IncrementalUnitSession"] = None,
    query: Optional[Tuple[str, int]] = None,
) -> RegionWizReport:
    """Run the full RegionWiz pipeline on C source text.

    ``refine=True`` additionally applies the Section 4.3 def-use
    refinement (IPSSA-style, deliberately unsound) to suppress warnings
    whose region arguments provably came from the same variable.

    ``solver_stats=True`` re-runs the consistency query on the Datalog
    engine and attaches its :class:`~repro.datalog.SolverStats` to
    ``report.times.solver`` (surfaced by ``--stats`` in the CLI).

    ``budget`` bounds each attempt (wall clock, derived tuples, contexts,
    abstract objects); a fresh meter is started per attempt.  Without
    ``degrade``, exceeding the budget raises
    :class:`~repro.util.errors.BudgetExceeded`.  With ``degrade=True``
    the driver walks :data:`PRECISION_LADDER`, retrying at the next lower
    precision until an attempt fits; the rung used lands in
    ``report.precision`` and the rungs that blew the budget in
    ``report.degradation_path``.  If even the lowest rung exceeds the
    budget, the last ``BudgetExceeded`` propagates.

    ``incremental`` (an
    :class:`~repro.tool.incremental.IncrementalUnitSession`, already
    probed against this source) routes the consistency phase through the
    resume + delta-update path; the result is identical to a normal run,
    and the session is left holding the fresh state payload for the
    caller to persist.  ``query`` (``(filename, line)``) instead runs
    the demand-transformed consistency query seeded with only the
    accesses anchored at that location -- the report's warnings are
    restricted to that seed.  The two are mutually exclusive; ``query``
    wins.
    """
    if interface is None:
        interface = apr_pools_interface()
    if options is None:
        options = AnalysisOptions()
    if registry is None:
        registry = default_registry()

    # Candidate rungs, skipping ones that don't change the options the
    # caller asked for (e.g. an already context-insensitive run).
    candidates: List[Tuple[str, AnalysisOptions]] = []
    for rung in PRECISION_LADDER:
        rung_options = degrade_options(options, rung)
        if candidates and rung_options == candidates[-1][1]:
            continue
        candidates.append((rung, rung_options))
    if not degrade:
        candidates = candidates[:1]

    failed_rungs: List[str] = []
    last_error: Optional[BudgetExceeded] = None
    for rung, rung_options in candidates:
        meter = budget.start() if budget is not None else None
        try:
            with trace_span("ladder.attempt", precision=rung, unit=name):
                report = _run_pipeline(
                    source,
                    filename,
                    interface,
                    entry,
                    rung_options,
                    registry,
                    name,
                    refine,
                    solver_stats,
                    meter,
                    incremental=incremental,
                    query=query,
                )
        except BudgetExceeded as error:
            emit_event(
                "ladder.degrade",
                unit=name,
                precision=rung,
                resource=error.resource,
                limit=error.limit,
                used=error.used,
                phase=error.phase,
            )
            failed_rungs.append(rung)
            last_error = error
            continue
        report.precision = rung
        report.degradation_path = tuple(failed_rungs)
        report.budget = budget
        report.budget_usage = meter.usage() if meter is not None else None
        report.metrics = _collect_metrics(report)
        if incremental is not None:
            incremental.record_metrics(report.metrics)
        return report
    assert last_error is not None
    raise last_error
