"""Observability: tracing, metrics, provenance, and warning lifecycle.

Cross-cutting facilities every later performance PR measures itself
against:

* :mod:`repro.obs.trace` -- a hierarchical span tracer threaded through
  the four pipeline phases, Datalog strata/rules, degradation-ladder
  rungs, and batch units; exports Chrome ``trace_event`` JSON
  (``--trace``) and a text profile tree (``--profile``);
* :mod:`repro.obs.metrics` -- a unified metrics registry absorbing
  ``SolverStats`` and ``BudgetMeter`` readings into one namespaced
  store, serialized into JSON reports and aggregated across batch runs;
* :mod:`repro.obs.provenance` -- Datalog derivation traces behind
  ``--explain``, turning each warning into a rule-by-rule chain from
  allocation sites through the ownership closure and the missing
  subregion order to the offending access;
* :mod:`repro.obs.fingerprint` -- content-stable warning identities,
  invariant across engine choice, sharding, ranking, and ordering;
* :mod:`repro.obs.history` -- the JSONL baseline store and the
  new/persisting/fixed differ behind ``--baseline``/``--save-baseline``
  and the ``--fail-on-new`` CI gate;
* :mod:`repro.obs.events` -- the structured JSONL event log
  (``--events``): phase boundaries, ladder degradations, budget trips,
  cache probes, batch outcomes, and warning emissions as one
  machine-parseable stream shared across worker processes;
* :mod:`repro.obs.html` -- the single-file ``--html-report`` fusing
  warnings + diff + metrics + profile + batch grid with no network
  fetches.
"""

from repro.obs.events import (
    EventLog,
    current_event_log,
    emit_event,
    events_enabled,
    install_event_log,
    uninstall_event_log,
)
from repro.obs.fingerprint import pair_fingerprint, warning_fingerprint
from repro.obs.history import (
    BaselineEntry,
    WarningDiff,
    diff_entries,
    load_baseline,
    save_baseline,
)
from repro.obs.html import render_html_report, write_html_report
from repro.obs.metrics import MetricsRegistry, aggregate_metrics, format_metrics
from repro.obs.replay import ReplayResult, replay_trace
from repro.obs.validate import (
    VALIDATION_SCHEMA_VERSION,
    ValidationResult,
    correlate_warnings,
    label_warning,
)
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    current_tracer,
    install_tracer,
    trace_instant,
    trace_span,
    tracing,
    tracing_to,
    uninstall_tracer,
)

__all__ = [
    "BaselineEntry",
    "EventLog",
    "MetricsRegistry",
    "ReplayResult",
    "SpanRecord",
    "Tracer",
    "VALIDATION_SCHEMA_VERSION",
    "ValidationResult",
    "WarningDiff",
    "aggregate_metrics",
    "correlate_warnings",
    "current_event_log",
    "current_tracer",
    "diff_entries",
    "emit_event",
    "events_enabled",
    "format_metrics",
    "install_event_log",
    "install_tracer",
    "label_warning",
    "load_baseline",
    "pair_fingerprint",
    "render_html_report",
    "replay_trace",
    "save_baseline",
    "trace_instant",
    "trace_span",
    "tracing",
    "tracing_to",
    "uninstall_event_log",
    "uninstall_tracer",
    "warning_fingerprint",
    "write_html_report",
]
