"""Observability: pipeline tracing, metrics, and warning provenance.

Three cross-cutting facilities every later performance PR measures
itself against:

* :mod:`repro.obs.trace` -- a hierarchical span tracer threaded through
  the four pipeline phases, Datalog strata/rules, degradation-ladder
  rungs, and batch units; exports Chrome ``trace_event`` JSON
  (``--trace``) and a text profile tree (``--profile``);
* :mod:`repro.obs.metrics` -- a unified metrics registry absorbing
  ``SolverStats`` and ``BudgetMeter`` readings into one namespaced
  store, serialized into JSON reports and aggregated across batch runs;
* :mod:`repro.obs.provenance` -- Datalog derivation traces behind
  ``--explain``, turning each warning into a rule-by-rule chain from
  allocation sites through the ownership closure and the missing
  subregion order to the offending access.
"""

from repro.obs.metrics import MetricsRegistry, aggregate_metrics, format_metrics
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    current_tracer,
    install_tracer,
    trace_instant,
    trace_span,
    tracing,
    tracing_to,
    uninstall_tracer,
)

__all__ = [
    "MetricsRegistry",
    "SpanRecord",
    "Tracer",
    "aggregate_metrics",
    "current_tracer",
    "format_metrics",
    "install_tracer",
    "trace_instant",
    "trace_span",
    "tracing",
    "tracing_to",
    "uninstall_tracer",
]
