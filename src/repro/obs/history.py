"""Warning history: a JSONL baseline store and run-over-run diffing.

The paper's post-processing makes warnings consumable by a human reading
*one* report; a service run repeatedly over an evolving tree also needs
them consumable *over time* -- which findings are new since the last
blessed run, which were fixed, which persist.  This module provides the
machine-checkable result artifact that discipline needs:

* :func:`save_baseline` writes one JSON record per warning (unit,
  fingerprint, rank, description) to a JSONL file, sorted and
  deduplicated so identical warning sets serialize byte-identically;
* :func:`load_baseline` reads one back, raising a clean
  :class:`~repro.util.errors.InputError` (CLI exit 2) on unreadable or
  malformed files;
* :func:`diff_entries` classifies each current warning as ``new`` (not
  in the baseline) or ``persisting``, and each baseline entry absent
  from the current run as ``fixed``;
* :func:`diff_outcomes` applies the same per unit across a batch sweep,
  considering only units the sweep actually analyzed -- a skipped or
  failed unit's baseline entries are neither fixed nor persisting, so a
  partial sweep can never fake a fix.

Identity is the (unit, fingerprint) pair -- see
:mod:`repro.obs.fingerprint` for what the fingerprint does and does not
hash.  ``--fail-on-new`` builds the CI gate on top: exit 1 only when
``new`` is non-empty.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.util.errors import InputError

__all__ = [
    "BaselineEntry",
    "WarningDiff",
    "entries_from_report",
    "entries_from_outcomes",
    "save_baseline",
    "load_baseline",
    "diff_entries",
    "diff_outcomes",
    "merge_diffs",
]


@dataclass(frozen=True)
class BaselineEntry:
    """One warning's identity in the history store."""

    unit: str
    fingerprint: str
    rank: str = "low"  # 'high' | 'low' -- informational, not identity
    description: str = ""

    @property
    def key(self) -> Tuple[str, str]:
        """The identity: rank and description are carried for humans."""
        return (self.unit, self.fingerprint)

    def to_dict(self) -> Dict[str, str]:
        return {
            "unit": self.unit,
            "fingerprint": self.fingerprint,
            "rank": self.rank,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BaselineEntry":
        return cls(
            unit=str(payload["unit"]),
            fingerprint=str(payload["fingerprint"]),
            rank=str(payload.get("rank", "low")),
            description=str(payload.get("description", "")),
        )


def entries_from_report(report, warnings=None) -> List[BaselineEntry]:
    """Baseline entries for a single-run report.

    ``warnings`` lets the CLI pass its post-filter list (the default
    report hides low-ranked warnings unless ``--all``), so the baseline
    records exactly what the run reported.
    """
    if warnings is None:
        warnings = report.warnings
    return [
        BaselineEntry(
            unit=report.name,
            fingerprint=w.fingerprint,
            rank="high" if w.high_ranked else "low",
            description=w.description,
        )
        for w in warnings
    ]


def entries_from_outcomes(outcomes) -> List[BaselineEntry]:
    """Baseline entries across a batch sweep's successful outcomes.

    Works from the slimmed :class:`~repro.tool.batch.UnitOutcome`
    payloads (``fingerprints`` + ``warning_lines``), so cached and
    worker-analyzed units contribute without a full report.
    """
    entries: List[BaselineEntry] = []
    for outcome in outcomes:
        if not outcome.ok:
            continue
        for fingerprint, line in zip(
            outcome.fingerprints, outcome.warning_lines
        ):
            rank = "high" if line.startswith("[HIGH]") else "low"
            description = line.split("] ", 1)[1] if "] " in line else line
            entries.append(
                BaselineEntry(
                    unit=outcome.unit,
                    fingerprint=fingerprint,
                    rank=rank,
                    description=description,
                )
            )
    return entries


def _dedupe(entries: Iterable[BaselineEntry]) -> List[BaselineEntry]:
    """First entry per (unit, fingerprint) key, in input order."""
    seen: Dict[Tuple[str, str], BaselineEntry] = {}
    for entry in entries:
        seen.setdefault(entry.key, entry)
    return list(seen.values())


def save_baseline(path: str, entries: Iterable[BaselineEntry]) -> None:
    """Atomically write a sorted, deduplicated JSONL baseline.

    Sorting by (unit, fingerprint) makes the artifact byte-stable:
    saving the same warning set -- whatever order the engine or sharding
    produced it in -- yields the same file.
    """
    ordered = sorted(_dedupe(entries), key=lambda e: e.key)
    directory = os.path.dirname(os.path.abspath(path))
    tmp: Optional[str] = None
    try:
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        with os.fdopen(fd, "w") as handle:
            for entry in ordered:
                handle.write(json.dumps(entry.to_dict(), sort_keys=True))
                handle.write("\n")
        os.replace(tmp, path)
    except OSError as error:
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        raise InputError(f"cannot write baseline {path}: {error}") from error


def load_baseline(path: str) -> List[BaselineEntry]:
    """Read a JSONL baseline, with clean input errors on bad files."""
    try:
        with open(path) as handle:
            lines = handle.readlines()
    except OSError as error:
        raise InputError(f"cannot read baseline {path}: {error}") from error
    entries: List[BaselineEntry] = []
    for number, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            entries.append(BaselineEntry.from_dict(payload))
        except (ValueError, KeyError, TypeError) as error:
            raise InputError(
                f"malformed baseline {path} at line {number}: {error}"
            ) from error
    return entries


@dataclass
class WarningDiff:
    """The classification of one run against one baseline."""

    new: List[BaselineEntry]
    persisting: List[BaselineEntry]
    fixed: List[BaselineEntry]

    @property
    def has_new(self) -> bool:
        return bool(self.new)

    @property
    def clean(self) -> bool:
        """No movement at all (self-diff of an unchanged run)."""
        return not self.new and not self.fixed

    def counts(self) -> Dict[str, int]:
        return {
            "new": len(self.new),
            "persisting": len(self.persisting),
            "fixed": len(self.fixed),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counts": self.counts(),
            "new": [e.to_dict() for e in self.new],
            "persisting": [e.fingerprint for e in self.persisting],
            "fixed": [e.to_dict() for e in self.fixed],
        }

    def format(self, indent: str = "  ") -> str:
        """The human-readable diff block appended to text reports."""
        counts = self.counts()
        lines = [
            "baseline diff: "
            + ", ".join(f"{counts[k]} {k}" for k in ("new", "persisting", "fixed"))
        ]
        for label, entries in (("new", self.new), ("fixed", self.fixed)):
            for entry in entries:
                lines.append(
                    f"{indent}{label} [{entry.rank}] {entry.unit}:"
                    f" {entry.description or entry.fingerprint}"
                    f" (fp {entry.fingerprint})"
                )
        return "\n".join(lines)


def diff_entries(
    current: Iterable[BaselineEntry],
    baseline: Iterable[BaselineEntry],
) -> WarningDiff:
    """Classify ``current`` against ``baseline`` by (unit, fingerprint)."""
    current = _dedupe(current)
    baseline = _dedupe(baseline)
    baseline_keys = {entry.key for entry in baseline}
    current_keys = {entry.key for entry in current}
    return WarningDiff(
        new=[e for e in current if e.key not in baseline_keys],
        persisting=[e for e in current if e.key in baseline_keys],
        fixed=[e for e in baseline if e.key not in current_keys],
    )


def diff_outcomes(
    outcomes, baseline: Iterable[BaselineEntry]
) -> Dict[str, WarningDiff]:
    """Per-unit diffs across a batch sweep (analyzed units only).

    Baseline entries for units the sweep skipped or failed are excluded
    entirely: a unit that did not run can neither fix nor persist its
    findings, and counting them would make partial sweeps look like
    mass fixes.  Returned dict is keyed by unit, sorted, one entry per
    analyzed unit (empty diffs included so consumers see full coverage).
    """
    analyzed = {o.unit for o in outcomes if o.ok}
    current = entries_from_outcomes(outcomes)
    per_unit: Dict[str, WarningDiff] = {}
    for unit in sorted(analyzed):
        per_unit[unit] = diff_entries(
            [e for e in current if e.unit == unit],
            [e for e in baseline if e.unit == unit],
        )
    return per_unit


def merge_diffs(diffs: Iterable[WarningDiff]) -> WarningDiff:
    """Fold per-unit diffs into one fleet-wide classification."""
    merged = WarningDiff(new=[], persisting=[], fixed=[])
    for diff in diffs:
        merged.new.extend(diff.new)
        merged.persisting.extend(diff.persisting)
        merged.fixed.extend(diff.fixed)
    return merged
