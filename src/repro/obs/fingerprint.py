"""Content-stable fingerprints for RegionWiz warnings.

Differential reporting (``--baseline``/``--save-baseline``, see
:mod:`repro.obs.history`) needs a *stable identity* for each warning: a
finding reported today and the same finding reported tomorrow must hash
to the same value, or every run would look like a wall of "new"
warnings.  The fingerprint is a SHA-256 over exactly the content that
defines the finding:

* the region **interface** the program was checked against (``apr``/``rc``);
* the **rule kind** (currently always ``region-lifetime`` -- the
  eq. 4.12 objectPair query; other conditional-correlation
  instantiations get their own kind);
* the condensed instruction pair's **file:line spans** (the paper's
  §5.4 condensation already collapses contexts to allocation-site
  pairs; the *column* is excluded so formatting-only edits on the same
  line keep the identity);
* the **normalized owner/object descriptions** -- owner region names
  with their ``#<context>`` markers stripped and the resulting set
  deduplicated and sorted.

Deliberately **excluded** from the hash (DESIGN.md §11):

* context numbers and the per-warning context count -- they depend on
  the Whaley-Lam path numbering, which shifts with unrelated call-graph
  edits and with the ``--max-contexts`` clamp;
* the Datalog backend/engine (``set``/``bdd``, ``indexed``/``legacy``)
  and the ``--jobs`` sharding level -- pure evaluation strategy;
* the ranking score (``high``/``low``) -- re-ranking a known finding
  must not make it "new";
* the warning's position in the report -- ordering is presentation.

Two warnings that agree on all hashed components collapse to one
fingerprint by design: they are the same finding.
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import Iterable, Tuple

__all__ = [
    "FINGERPRINT_VERSION",
    "KIND_REGION_LIFETIME",
    "loc_span",
    "normalize_owner",
    "normalized_owners",
    "pair_fingerprint",
    "warning_fingerprint",
]

#: Bump when the hashed material changes shape -- old baselines then
#: diff as all-new/all-fixed instead of silently mismatching.
FINGERPRINT_VERSION = 1

#: The rule kind of every warning the region-lifetime instantiation
#: emits (the eq. 4.12 objectPair query condensed to I-pairs).
KIND_REGION_LIFETIME = "region-lifetime"

#: ``name#ctx`` context markers on abstract-object names (see
#: :meth:`repro.pointer.analysis.AbstractObject.__str__`).
_CONTEXT_MARKER = re.compile(r"#\d+")

#: The owner clause of a rendered warning description
#: (``... (owners: a, b vs c; 3 context(s))``).
_OWNERS_CLAUSE = re.compile(r"owners: (?P<source>[^;]*) vs (?P<target>[^;)]*)")


def loc_span(loc) -> str:
    """``file:line`` of a :class:`~repro.lang.SourceLocation`.

    The column is deliberately dropped: reindenting the allocation does
    not change the finding.
    """
    return f"{loc.filename}:{loc.line}"


def normalize_owner(name: str) -> str:
    """An owner/object name with its ``#<context>`` marker stripped."""
    return _CONTEXT_MARKER.sub("", name).strip()


def normalized_owners(
    description: str,
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """The (source, target) owner-name sets of a rendered description.

    Context markers are stripped and each side is deduplicated and
    sorted, so owner sets differing only in context numbering -- e.g.
    ``r#1, r#2`` vs ``r#3`` -- normalize identically.  Descriptions
    without an owner clause (refinement can strip every contributing
    object pair) yield two empty tuples.
    """
    match = _OWNERS_CLAUSE.search(description)
    if match is None:
        return (), ()

    def side(text: str) -> Tuple[str, ...]:
        return tuple(
            sorted(
                {
                    normalize_owner(part)
                    for part in text.split(",")
                    if part.strip()
                }
            )
        )

    return side(match.group("source")), side(match.group("target"))


def pair_fingerprint(
    interface: str,
    source_span: str,
    target_span: str,
    source_owners: Iterable[str] = (),
    target_owners: Iterable[str] = (),
    kind: str = KIND_REGION_LIFETIME,
) -> str:
    """The fingerprint of one condensed instruction pair.

    This is the ground-truth hash: :func:`warning_fingerprint` is a
    convenience wrapper that extracts these components from a rendered
    :class:`~repro.tool.regionwiz.Warning_`.  Owner names are normalized
    (context markers stripped), deduplicated, and sorted here too, so
    callers may pass raw ``AbstractObject`` renderings.
    """
    material = {
        "version": FINGERPRINT_VERSION,
        "interface": interface,
        "kind": kind,
        "source": source_span,
        "target": target_span,
        "source_owners": sorted({normalize_owner(o) for o in source_owners}),
        "target_owners": sorted({normalize_owner(o) for o in target_owners}),
    }
    blob = json.dumps(material, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def warning_fingerprint(
    warning, interface: str, kind: str = KIND_REGION_LIFETIME
) -> str:
    """The content-stable fingerprint of one rendered warning.

    ``warning`` is anything with ``source_loc``, ``target_loc``, and
    ``description`` attributes (a :class:`~repro.tool.regionwiz.Warning_`);
    ``interface`` is the region interface name (``apr``/``rc``).
    """
    source_owners, target_owners = normalized_owners(warning.description)
    return pair_fingerprint(
        interface,
        loc_span(warning.source_loc),
        loc_span(warning.target_loc),
        source_owners,
        target_owners,
        kind,
    )
