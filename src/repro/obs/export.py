"""OpenMetrics text exposition of the metrics surface.

Two consumers, one format:

* ``--metrics-out FILE`` writes a final snapshot after the run;
* ``--metrics-port N`` serves ``/metrics`` and ``/healthz`` over a
  stdlib :class:`~http.server.ThreadingHTTPServer` for the duration of
  the run -- the first externally consumable surface of the
  analysis-as-a-service daemon on the roadmap.

The exposition maps the registry's dotted names onto Prometheus
conventions: ``datalog.fixpoint_ms`` becomes ``repro_datalog_fixpoint_ms``,
histogram summaries expand into one series per statistic
(``..._p50``, ``..._max``, ...), and every series is declared a gauge --
the registry snapshot is a point-in-time state dump, not a monotone
counter contract we could promise across process restarts.  Non-numeric
gauges (e.g. ``datalog.update.mode``) are skipped: OpenMetrics sample
values must be numbers.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Mapping, Optional

from ..util.errors import InputError

__all__ = [
    "metric_name",
    "to_openmetrics",
    "write_metrics_file",
    "MetricsServer",
]

#: Content type for the /metrics endpoint (OpenMetrics text format).
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_HISTOGRAM_STATS = ("count", "min", "mean", "p50", "p90", "p99", "max", "sum")


def metric_name(name: str, prefix: str = "repro_") -> str:
    """Map a dotted registry name onto a Prometheus-legal series name.

    Every non-alphanumeric run collapses to ``_`` and the ``repro_``
    namespace prefix is prepended: ``datalog.fixpoint_ms`` →
    ``repro_datalog_fixpoint_ms``.
    """
    cleaned = []
    for ch in name:
        cleaned.append(ch if ch.isalnum() else "_")
    flat = "".join(cleaned).strip("_")
    while "__" in flat:
        flat = flat.replace("__", "_")
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return prefix + flat


def _numeric(value: Any) -> Optional[float]:
    """The sample value, or None when it can't go on the wire."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(round(float(value), 9))


def to_openmetrics(
    metrics: Mapping[str, Any], prefix: str = "repro_"
) -> str:
    """Render a flat metrics dict as OpenMetrics exposition text.

    Histogram summary dicts (the registry's ``{count, min, mean, p50,
    p90, p99, max}`` shape) expand into one series per statistic;
    string-valued gauges are skipped.  The output is sorted, each series
    preceded by its ``# TYPE`` declaration, and terminated by ``# EOF``
    as the OpenMetrics spec requires.
    """
    series: Dict[str, float] = {}
    for name, value in metrics.items():
        if isinstance(value, Mapping):
            for stat in _HISTOGRAM_STATS:
                if stat not in value:
                    continue
                stat_value = _numeric(value[stat])
                if stat_value is not None:
                    series[metric_name(f"{name}.{stat}", prefix)] = stat_value
            continue
        sample = _numeric(value)
        if sample is not None:
            series[metric_name(name, prefix)] = sample
    lines = []
    for name in sorted(series):
        short = name[len(prefix):] if name.startswith(prefix) else name
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"# HELP {name} repro metric {short}")
        lines.append(f"{name} {_format_value(series[name])}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_metrics_file(path: str, metrics: Mapping[str, Any]) -> None:
    """Write one OpenMetrics snapshot to ``path`` (textfile-collector shape)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_openmetrics(metrics))


class _Handler(BaseHTTPRequestHandler):
    """Serves /metrics (OpenMetrics) and /healthz (JSON liveness)."""

    server_version = "regionwiz"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            provider = self.server.metrics_provider  # type: ignore[attr-defined]
            try:
                body = to_openmetrics(provider()).encode("utf-8")
            except Exception as exc:  # pragma: no cover - defensive
                self._send(500, "text/plain; charset=utf-8",
                           f"metrics provider failed: {exc}\n".encode())
                return
            self._send(200, OPENMETRICS_CONTENT_TYPE, body)
        elif path == "/healthz":
            payload = {
                "status": "ok",
                "run_id": self.server.run_id,  # type: ignore[attr-defined]
                "uptime_s": round(
                    time.perf_counter()
                    - self.server.started_at,  # type: ignore[attr-defined]
                    3,
                ),
            }
            body = (json.dumps(payload, sort_keys=True) + "\n").encode()
            self._send(200, "application/json; charset=utf-8", body)
        else:
            self._send(404, "text/plain; charset=utf-8", b"not found\n")

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args: Any) -> None:
        """Scrapes are routine; keep them out of the CLI's stderr."""


class MetricsServer:
    """A run-scoped /metrics + /healthz endpoint on a daemon thread.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    construction (the CLI prints it to stderr before analysis starts so
    a scraper can attach immediately).  A port already in use surfaces
    as :class:`InputError` -- an operator mistake, not a crash.
    """

    def __init__(
        self,
        port: int,
        provider: Callable[[], Mapping[str, Any]],
        run_id: Optional[str] = None,
        host: str = "127.0.0.1",
    ) -> None:
        try:
            self._server = ThreadingHTTPServer((host, port), _Handler)
        except OSError as exc:
            raise InputError(
                f"--metrics-port {port}: cannot bind on {host}: {exc}"
            ) from exc
        self._server.daemon_threads = True
        self._server.metrics_provider = provider  # type: ignore[attr-defined]
        self._server.run_id = run_id  # type: ignore[attr-defined]
        self._server.started_at = time.perf_counter()  # type: ignore[attr-defined]
        self.host = host
        self.port = int(self._server.server_address[1])
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="regionwiz-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        # shutdown() blocks until serve_forever() exits, so it must only
        # run when the serving thread was actually started.
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
