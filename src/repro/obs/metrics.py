"""A unified, namespaced metrics registry for RegionWiz runs.

PR 1's :class:`~repro.datalog.SolverStats` and PR 2's
:class:`~repro.util.budget.BudgetMeter` each grew their own counters;
this registry absorbs both (plus pipeline-level readings) into one
dotted-name store -- ``datalog.rounds``, ``pointer.contexts``,
``budget.derived_facts``, ... -- with three metric kinds:

* **counters** -- monotone totals (:meth:`MetricsRegistry.inc`);
* **gauges** -- last-value readings (:meth:`MetricsRegistry.gauge`);
* **histograms** -- sampled distributions (:meth:`MetricsRegistry.observe`)
  summarized as count/min/mean/p50/p90/p99/max.

:meth:`MetricsRegistry.to_dict` gives the flat serialization embedded in
the JSON report (``--json``) and per batch unit;
:func:`aggregate_metrics` folds many units' dicts into fleet percentiles
for the ``--batch`` summary.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = [
    "MetricsRegistry",
    "aggregate_metrics",
    "format_metrics",
    "set_mem_profile",
    "mem_profile_enabled",
]

# Per-phase tracemalloc peaks (--mem-profile) are gated by a process
# global rather than a threaded-through argument: the flag is set once
# per process (CLI parse time in the parent, _worker_init in workers)
# and the disabled path in the pipeline stays one boolean read per
# phase -- the same "provably free when off" discipline as tracing.
_MEM_PROFILE = False


def set_mem_profile(enabled: bool) -> None:
    """Enable/disable per-phase tracemalloc peak gauges process-wide."""
    global _MEM_PROFILE
    _MEM_PROFILE = bool(enabled)


def mem_profile_enabled() -> bool:
    return _MEM_PROFILE


def _percentile(ordered: Sequence[float], q: float) -> float:
    """q-th percentile (nearest-rank) of an ascending-sorted sequence."""
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class MetricsRegistry:
    """Namespaced counters, gauges, and histograms for one analysis run."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        """Add to a counter (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge to its latest reading."""
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one histogram sample."""
        self._histograms.setdefault(name, []).append(value)

    # -- queries -----------------------------------------------------------

    def value(self, name: str) -> Optional[float]:
        """Counter or gauge value by name (None if unknown)."""
        if name in self._counters:
            return self._counters[name]
        return self._gauges.get(name)

    # -- absorption of existing telemetry ----------------------------------

    def absorb_solver_stats(self, stats: Any) -> None:
        """Fold a :class:`~repro.datalog.SolverStats` into ``datalog.*``."""
        self.inc("datalog.facts_loaded", stats.facts_loaded)
        self.inc("datalog.tuples_derived", stats.tuples_derived)
        self.inc("datalog.rounds", stats.rounds)
        self.inc("datalog.rule_evals", stats.rule_evals)
        self.inc("datalog.rule_eval_ms", stats.rule_eval_seconds * 1000.0)
        self.inc("datalog.solve_ms", stats.solve_seconds * 1000.0)
        self.inc("datalog.strata", len(stats.strata))
        if stats.backend == "set":
            self.inc("datalog.index_builds", stats.index_builds)
            self.inc("datalog.index_hits", stats.index_hits)
            self.gauge("datalog.index_hit_rate", stats.index_hit_rate)
        else:
            self.inc("datalog.bdd_cache_lookups", stats.bdd_cache_lookups)
            self.inc("datalog.bdd_cache_hits", stats.bdd_cache_hits)
            self.gauge("datalog.bdd_cache_hit_rate", stats.bdd_cache_hit_rate)
        for stratum in stats.strata:
            self.observe("datalog.stratum_ms", stratum.seconds * 1000.0)

    def absorb_update_stats(self, stats: Any) -> None:
        """Fold a :class:`~repro.datalog.UpdateStats` into ``datalog.update.*``.

        Records the delta re-solve's footprint (the incremental
        analysis path) so a warm run's metrics show what the edit cost
        instead of what a cold closure would have.
        """
        self.gauge("datalog.update.mode", stats.mode)
        self.inc("datalog.update.facts_asserted", stats.facts_asserted)
        self.inc("datalog.update.facts_retracted", stats.facts_retracted)
        self.inc("datalog.update.strata_total", stats.strata_total)
        self.inc("datalog.update.strata_skipped", stats.strata_skipped)
        self.inc("datalog.update.tuples_deleted", stats.tuples_deleted)
        self.inc("datalog.update.tuples_inserted", stats.tuples_inserted)
        self.inc("datalog.update.rederived", stats.rederived)
        self.inc("datalog.update.rounds", stats.rounds)
        self.inc("datalog.update.ms", stats.seconds * 1000.0)

    def absorb_budget_usage(self, usage: Mapping[str, int]) -> None:
        """Fold :meth:`BudgetMeter.usage` counters into ``budget.*``.

        ``derived_tuples`` lands as ``budget.derived_facts`` -- the name
        the report schema and batch aggregation key on.
        """
        renames = {"derived_tuples": "budget.derived_facts"}
        for key, value in usage.items():
            self.gauge(renames.get(key, f"budget.{key}"), value)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Flat name -> value dict (histograms become summary sub-dicts)."""
        payload: Dict[str, Any] = {}
        for name, value in self._counters.items():
            payload[name] = round(value, 6) if isinstance(value, float) else value
        for name, value in self._gauges.items():
            payload[name] = round(value, 6) if isinstance(value, float) else value
        for name, samples in self._histograms.items():
            ordered = sorted(samples)
            if not ordered:  # defensively skip an empty distribution
                continue
            payload[name] = {
                "count": len(ordered),
                "min": round(ordered[0], 6),
                "mean": round(sum(ordered) / len(ordered), 6),
                "p50": round(_percentile(ordered, 0.50), 6),
                "p90": round(_percentile(ordered, 0.90), 6),
                "p99": round(_percentile(ordered, 0.99), 6),
                "max": round(ordered[-1], 6),
            }
        return dict(sorted(payload.items()))


def aggregate_metrics(
    unit_metrics: Iterable[Mapping[str, Any]],
) -> Dict[str, Dict[str, float]]:
    """Fleet percentiles across many units' :meth:`to_dict` outputs.

    Scalar metrics only (histogram sub-dicts are skipped -- their
    per-unit summaries are already in the per-unit payloads).  Returns
    ``{name: {count,min,mean,p50,p90,max,sum}}`` over the units that
    reported the metric.
    """
    samples: Dict[str, List[float]] = {}
    for metrics in unit_metrics:
        for name, value in metrics.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                samples.setdefault(name, []).append(float(value))
    aggregated: Dict[str, Dict[str, float]] = {}
    for name, values in sorted(samples.items()):
        ordered = sorted(values)
        if not ordered:  # zero-unit / all-skipped sweeps aggregate to {}
            continue
        aggregated[name] = {
            "count": len(ordered),
            "min": round(ordered[0], 6),
            "mean": round(sum(ordered) / len(ordered), 6),
            "p50": round(_percentile(ordered, 0.50), 6),
            "p90": round(_percentile(ordered, 0.90), 6),
            "max": round(ordered[-1], 6),
            "sum": round(sum(ordered), 6),
        }
    return aggregated


def format_metrics(metrics: Mapping[str, Any], indent: str = "  ") -> str:
    """Aligned ``name  value`` listing of a :meth:`to_dict` payload."""
    if not metrics:
        return f"{indent}(no metrics)"
    width = max(len(name) for name in metrics)
    lines = []
    for name, value in sorted(metrics.items()):
        if isinstance(value, Mapping):
            rendered = " ".join(f"{k}={v}" for k, v in value.items())
        elif isinstance(value, float):
            rendered = f"{value:.3f}".rstrip("0").rstrip(".")
        else:
            rendered = str(value)
        lines.append(f"{indent}{name.ljust(width)}  {rendered}")
    return "\n".join(lines)
