"""Persistent run registry with regression gating (``regionwiz history``).

Every invocation that opts in (``--registry FILE``) appends one row to
an sqlite3 database: run id, timestamp, ``repro.__version__``, corpus,
outcome counts, a metrics snapshot (JSON), and wall/CPU time.  Nothing
ties one run's metrics to the next without this -- the ``BENCH_*.json``
trajectory records answer "how fast was this bench on this commit", the
registry answers "how has *this corpus* trended across the last N runs
on *this machine*", which is what a CI regression gate needs.

The regression statistic is deliberately boring: the latest run's value
of a metric is compared against the **median of the previous N runs**
of the same (mode, corpus); it regresses when
``latest > threshold * median``.  Median-of-N absorbs the one noisy CI
run that a mean would chase, and a multiplicative threshold matches how
wall-clock noise actually scales.  ``--fail-on-regression`` turns a
detected regression into exit 1; asking for the gate with fewer than
``--min-runs`` prior runs is an :class:`InputError` (exit 2) -- a
silently passing gate with no history is the worst possible default.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..util.errors import InputError

__all__ = [
    "RunRecord",
    "RunRegistry",
    "RegressionReport",
    "sparkline",
    "run_history_command",
]

#: Bump when the runs table shape changes (additive columns: no bump).
REGISTRY_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id TEXT NOT NULL UNIQUE,
    timestamp REAL NOT NULL,
    version TEXT NOT NULL,
    mode TEXT NOT NULL,
    corpus TEXT NOT NULL,
    units INTEGER NOT NULL DEFAULT 0,
    succeeded INTEGER NOT NULL DEFAULT 0,
    failed INTEGER NOT NULL DEFAULT 0,
    skipped INTEGER NOT NULL DEFAULT 0,
    warnings INTEGER NOT NULL DEFAULT 0,
    high INTEGER NOT NULL DEFAULT 0,
    exit_code INTEGER NOT NULL DEFAULT 0,
    wall_s REAL NOT NULL DEFAULT 0.0,
    cpu_s REAL NOT NULL DEFAULT 0.0,
    metrics TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS runs_corpus ON runs (mode, corpus, id);
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

#: Columns a --metric flag may name directly (everything else resolves
#: through the JSON metrics snapshot).
_NUMERIC_COLUMNS = frozenset(
    {
        "units",
        "succeeded",
        "failed",
        "skipped",
        "warnings",
        "high",
        "exit_code",
        "wall_s",
        "cpu_s",
    }
)


@dataclass
class RunRecord:
    """One registry row (the append-only unit of history)."""

    run_id: str
    timestamp: float
    version: str
    mode: str
    corpus: str
    units: int = 0
    succeeded: int = 0
    failed: int = 0
    skipped: int = 0
    warnings: int = 0
    high: int = 0
    exit_code: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    metrics: Dict[str, Any] = field(default_factory=dict)

    def metric(self, name: str) -> Optional[float]:
        """Resolve a metric by column name first, JSON snapshot second."""
        if name in _NUMERIC_COLUMNS:
            return float(getattr(self, name))
        value = self.metrics.get(name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return float(value)


@dataclass
class RegressionReport:
    """The verdict of one regression check."""

    metric: str
    mode: str
    corpus: str
    latest: float
    median: float
    threshold: float
    prior_runs: int
    regressed: bool

    def describe(self) -> str:
        ratio = self.latest / self.median if self.median else float("inf")
        verdict = "REGRESSION" if self.regressed else "ok"
        return (
            f"{self.metric} [{self.mode}:{self.corpus}]: latest"
            f" {self.latest:g} vs median({self.prior_runs})"
            f" {self.median:g} ({ratio:.2f}x,"
            f" gate {self.threshold:g}x) -- {verdict}"
        )


class RunRegistry:
    """Append-only sqlite3 store of analysis runs.

    sqlite gives atomic appends from concurrent CI jobs for free, and a
    single file artifact uploads cleanly.  ``run_id`` is UNIQUE with
    ``INSERT OR IGNORE`` so replaying a journal or re-importing bench
    files is idempotent.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        if parent and not os.path.isdir(parent):
            raise InputError(
                f"--registry {path}: directory {parent} does not exist"
            )
        try:
            self._db = sqlite3.connect(path, timeout=10.0)
        except sqlite3.Error as exc:
            raise InputError(f"--registry {path}: cannot open: {exc}") from exc
        try:
            self._db.executescript(_SCHEMA)
            self._db.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("schema", str(REGISTRY_SCHEMA_VERSION)),
            )
            self._db.commit()
        except sqlite3.Error as exc:
            raise InputError(
                f"--registry {path}: not a usable registry database: {exc}"
            ) from exc

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "RunRegistry":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- writing -----------------------------------------------------------

    def record(self, record: RunRecord) -> bool:
        """Append one run; False when its run_id was already present."""
        cursor = self._db.execute(
            """
            INSERT OR IGNORE INTO runs
                (run_id, timestamp, version, mode, corpus, units,
                 succeeded, failed, skipped, warnings, high, exit_code,
                 wall_s, cpu_s, metrics)
            VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
            """,
            (
                record.run_id,
                record.timestamp,
                record.version,
                record.mode,
                record.corpus,
                record.units,
                record.succeeded,
                record.failed,
                record.skipped,
                record.warnings,
                record.high,
                record.exit_code,
                record.wall_s,
                record.cpu_s,
                json.dumps(record.metrics, sort_keys=True),
            ),
        )
        self._db.commit()
        return cursor.rowcount > 0

    # -- reading -----------------------------------------------------------

    def runs(
        self,
        mode: Optional[str] = None,
        corpus: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[RunRecord]:
        """Matching runs, oldest first (insertion order, not timestamp)."""
        query = (
            "SELECT run_id, timestamp, version, mode, corpus, units,"
            " succeeded, failed, skipped, warnings, high, exit_code,"
            " wall_s, cpu_s, metrics FROM runs"
        )
        clauses, params = [], []
        if mode is not None:
            clauses.append("mode = ?")
            params.append(mode)
        if corpus is not None:
            clauses.append("corpus = ?")
            params.append(corpus)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY id DESC"
        if limit is not None:
            query += " LIMIT ?"
            params.append(int(limit))
        rows = self._db.execute(query, params).fetchall()
        records = []
        for row in reversed(rows):
            try:
                metrics = json.loads(row[14])
            except (TypeError, ValueError):
                metrics = {}
            records.append(
                RunRecord(
                    run_id=row[0],
                    timestamp=row[1],
                    version=row[2],
                    mode=row[3],
                    corpus=row[4],
                    units=row[5],
                    succeeded=row[6],
                    failed=row[7],
                    skipped=row[8],
                    warnings=row[9],
                    high=row[10],
                    exit_code=row[11],
                    wall_s=row[12],
                    cpu_s=row[13],
                    metrics=metrics if isinstance(metrics, dict) else {},
                )
            )
        return records

    # -- regression gating -------------------------------------------------

    def check_regression(
        self,
        metric: str = "wall_s",
        last: int = 5,
        threshold: float = 1.5,
        min_runs: int = 1,
        mode: Optional[str] = None,
        corpus: Optional[str] = None,
    ) -> RegressionReport:
        """Latest run vs median of the previous ``last`` runs.

        Filters default to the latest run's own (mode, corpus) so a CI
        job gating one corpus isn't confused by rows from another.
        Raises :class:`InputError` when the registry holds fewer than
        ``min_runs`` *prior* comparable runs -- an empty gate must be
        loud, not green.
        """
        everything = self.runs(mode=mode, corpus=corpus)
        if not everything:
            raise InputError(
                f"--fail-on-regression: registry {self.path} holds no"
                " matching runs"
            )
        latest = everything[-1]
        prior = [
            run
            for run in everything[:-1]
            if run.mode == latest.mode and run.corpus == latest.corpus
        ]
        prior_values = [
            value
            for value in (run.metric(metric) for run in prior)
            if value is not None
        ][-last:]
        if len(prior_values) < min_runs:
            raise InputError(
                f"--fail-on-regression: only {len(prior_values)} prior"
                f" run(s) of {latest.mode}:{latest.corpus} record"
                f" {metric!r}; need at least {min_runs}"
            )
        latest_value = latest.metric(metric)
        if latest_value is None:
            raise InputError(
                f"--fail-on-regression: latest run {latest.run_id} does"
                f" not record metric {metric!r}"
            )
        median = _median(prior_values)
        regressed = bool(median > 0 and latest_value > threshold * median)
        if median <= 0:
            # A zero/negative median can't anchor a multiplicative
            # gate; regress only if the latest is strictly positive.
            regressed = latest_value > 0 and threshold <= 1.0
        return RegressionReport(
            metric=metric,
            mode=latest.mode,
            corpus=latest.corpus,
            latest=latest_value,
            median=median,
            threshold=threshold,
            prior_runs=len(prior_values),
            regressed=regressed,
        )

    # -- bench backfill ----------------------------------------------------

    def import_bench(self, root: str = ".") -> int:
        """Backfill from ``BENCH_*.json`` files (legacy JSONL or trajectory).

        Rows get a content-hash run id so re-imports are no-ops.
        Returns the number of newly inserted rows.
        """
        imported = 0
        try:
            names = sorted(os.listdir(root))
        except OSError as exc:
            raise InputError(f"--import-bench: cannot list {root}: {exc}") from exc
        for name in names:
            if not (name.startswith("BENCH_") and name.endswith(".json")):
                continue
            path = os.path.join(root, name)
            for entry in _bench_entries(path):
                imported += self._import_bench_entry(name, entry)
        return imported

    def _import_bench_entry(
        self, filename: str, entry: Mapping[str, Any]
    ) -> int:
        bench = str(entry.get("bench") or filename[len("BENCH_"):-len(".json")])
        digest = hashlib.sha256(
            json.dumps(entry, sort_keys=True).encode("utf-8")
        ).hexdigest()[:16]
        timestamp = _parse_timestamp(entry.get("timestamp"))
        metrics = {
            key: value
            for key, value in entry.items()
            if not isinstance(value, bool)
            and isinstance(value, (int, float))
        }
        wall = entry.get("wall_s")
        record = RunRecord(
            run_id=f"bench-{digest}",
            timestamp=timestamp,
            version=str(entry.get("version", "")),
            mode="bench",
            corpus=bench,
            units=int(entry.get("units", 0) or 0),
            wall_s=float(wall) if isinstance(wall, (int, float)) else 0.0,
            metrics=metrics,
        )
        return 1 if self.record(record) else 0


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _parse_timestamp(raw: Any) -> float:
    if isinstance(raw, (int, float)) and not isinstance(raw, bool):
        return float(raw)
    if isinstance(raw, str):
        try:
            return time.mktime(time.strptime(raw, "%Y-%m-%dT%H:%M:%SZ"))
        except ValueError:
            pass
    return 0.0


def _bench_entries(path: str) -> List[Dict[str, Any]]:
    """Parse one BENCH file: trajectory format first, legacy JSONL second."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError:
        return []
    try:
        whole = json.loads(text)
    except ValueError:
        whole = None
    if isinstance(whole, dict):
        trajectory = whole.get("trajectory")
        if isinstance(trajectory, list):
            return [e for e in trajectory if isinstance(e, dict)]
        return [whole]
    entries = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if isinstance(entry, dict):
            entries.append(entry)
    return entries


# ---------------------------------------------------------------------------
# History rendering
# ---------------------------------------------------------------------------

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A unicode sparkline of ``values`` (empty string when empty)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_BLOCKS[0] * len(values)
    span = hi - lo
    top = len(_SPARK_BLOCKS) - 1
    return "".join(
        _SPARK_BLOCKS[int(round((value - lo) / span * top))]
        for value in values
    )


def format_history(
    runs: Sequence[RunRecord], metrics: Sequence[str]
) -> str:
    """Per-metric trend lines over ``runs`` (oldest → newest)."""
    if not runs:
        return "history: no runs recorded"
    lines = [
        f"history: {len(runs)} run(s),"
        f" {runs[0].run_id} .. {runs[-1].run_id}"
    ]
    groups: Dict[Any, List[RunRecord]] = {}
    for run in runs:
        groups.setdefault((run.mode, run.corpus), []).append(run)
    for (mode, corpus), group in sorted(groups.items()):
        lines.append(f"  {mode}:{corpus} ({len(group)} run(s))")
        for metric in metrics:
            values = [
                value
                for value in (run.metric(metric) for run in group)
                if value is not None
            ]
            if not values:
                lines.append(f"    {metric:<24} (not recorded)")
                continue
            trend = sparkline(values)
            lines.append(
                f"    {metric:<24} {trend}  latest {values[-1]:g}"
                f"  min {min(values):g}  max {max(values):g}"
            )
    return "\n".join(lines)


def history_series(
    runs: Sequence[RunRecord], metrics: Sequence[str]
) -> Dict[str, List[float]]:
    """Metric → value series over ``runs`` (for the HTML report section)."""
    series: Dict[str, List[float]] = {}
    for metric in metrics:
        values = [
            value
            for value in (run.metric(metric) for run in runs)
            if value is not None
        ]
        if values:
            series[metric] = values
    return series


# ---------------------------------------------------------------------------
# The `regionwiz history` subcommand
# ---------------------------------------------------------------------------


def run_history_command(argv: Sequence[str]) -> int:
    """Entry point for ``regionwiz history ...`` (dispatched by the CLI)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="regionwiz history",
        description=(
            "Print per-metric trends from a run registry and optionally"
            " gate on a median-of-last-N regression check."
        ),
    )
    parser.add_argument(
        "--registry",
        required=True,
        metavar="FILE",
        help="sqlite3 run registry written by --registry",
    )
    parser.add_argument(
        "--mode",
        default=None,
        help="only runs of this mode (single, batch, bench)",
    )
    parser.add_argument(
        "--corpus",
        default=None,
        help="only runs of this corpus string",
    )
    parser.add_argument(
        "--metric",
        action="append",
        default=None,
        metavar="NAME",
        help=(
            "metric(s) to trend and gate on (registry column or metrics"
            " snapshot key; default: wall_s)"
        ),
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="show at most the newest N runs",
    )
    parser.add_argument(
        "--last",
        type=int,
        default=5,
        metavar="N",
        help="regression baseline: median of the previous N runs (default 5)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        metavar="X",
        help="regress when latest > X * median (default 1.5)",
    )
    parser.add_argument(
        "--min-runs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "fail (exit 2) unless at least N prior runs exist for the"
            " gate (default 1)"
        ),
    )
    parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 1 when any gated metric regresses",
    )
    parser.add_argument(
        "--import-bench",
        nargs="?",
        const=".",
        default=None,
        metavar="DIR",
        help="backfill the registry from BENCH_*.json files in DIR first",
    )
    parser.add_argument(
        "--html-out",
        default=None,
        metavar="FILE",
        help="also write an HTML report with trend sparklines",
    )
    args = parser.parse_args(list(argv))
    metrics = args.metric or ["wall_s"]
    try:
        with RunRegistry(args.registry) as registry:
            if args.import_bench is not None:
                imported = registry.import_bench(args.import_bench)
                print(
                    f"imported {imported} bench record(s) from"
                    f" {args.import_bench}"
                )
            runs = registry.runs(
                mode=args.mode, corpus=args.corpus, limit=args.limit
            )
            print(format_history(runs, metrics))
            if args.html_out:
                from .html import write_html_report

                write_html_report(
                    args.html_out,
                    title="regionwiz run history",
                    history=history_series(runs, metrics),
                )
                print(f"wrote {args.html_out}")
            if not args.fail_on_regression:
                return 0
            regressed = False
            for metric in metrics:
                report = registry.check_regression(
                    metric=metric,
                    last=args.last,
                    threshold=args.threshold,
                    min_runs=args.min_runs,
                    mode=args.mode,
                    corpus=args.corpus,
                )
                print(report.describe())
                regressed = regressed or report.regressed
            return 1 if regressed else 0
    except InputError as exc:
        print(f"regionwiz history: error: {exc}", file=sys.stderr)
        return 2
