"""Warning provenance: rule-by-rule derivation chains for ``--explain``.

An unexplained warning is an untrusted warning.  This module re-runs the
eq. 4.12 consistency query (:mod:`repro.core.datalog_check`) — in its
demand-transformed form, seeded with just the warning's access, so one
explanation never materializes the full closure — with derivation
recording enabled (``Program.solve(provenance=True)``) and
renders the recorded :class:`~repro.datalog.Derivation` tree for one
reported warning as the chain the paper's argument follows::

    allocation site -> ownership closure -> missing subregion order
                    -> access pair

Leaf facts are annotated with the original source file/line of the
allocation or store they came from; the ``!le(x, y)`` negation in the
``regionPair`` rule -- which holds by *absence* -- is rendered as the
missing subregion order with its two regions' creation sites.

Provenance is recorded only when explicitly requested (the consistency
checker used by the pipeline itself never records), so the default
analysis path carries no recording cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.datalog_check import (
    ConsistencyProgram,
    build_demand_program,
)
from repro.datalog import Derivation
from repro.datalog.rules import Atom, Const, NotEqual, Var

__all__ = ["Explanation", "explain_warning", "explain_object_pair"]


@dataclass
class Explanation:
    """A rendered derivation chain for one warning."""

    warning_number: int
    description: str
    num_object_pairs: int
    derivation: Derivation
    lines: List[str]

    def format(self) -> str:
        return "\n".join(self.lines)


def _loc_of_site(module, site: int) -> Optional[str]:
    """Source location of an instruction uid (None for synthetic sites)."""
    if not site:
        return None
    try:
        return str(module.instr(site).loc)
    except KeyError:
        return None


def _entity_label(built: ConsistencyProgram, value: int) -> str:
    return str(built.entities[value])


def _decode_atom(
    built: ConsistencyProgram, relation: str, values
) -> str:
    """Ground-tuple rendering with entity/offset names restored."""
    if relation in ("access", "objectPair"):
        source, offset, target = values
        shown = built.offsets[offset]
        return (
            f"{relation}({_entity_label(built, source)},"
            f" {'?' if shown is None else shown},"
            f" {_entity_label(built, target)})"
        )
    rendered = ", ".join(_entity_label(built, value) for value in values)
    return f"{relation}({rendered})"


def _fact_annotation(
    built: ConsistencyProgram, module, analysis, relation: str, values
) -> str:
    """The source-location note attached to a leaf fact."""
    notes: List[str] = []
    if relation == "access":
        source, offset, target = values
        key = (
            built.entities[source],
            built.offsets[offset],
            built.entities[target],
        )
        for uid in sorted(analysis.access_sites.get(key, frozenset())):
            loc = _loc_of_site(module, uid)
            if loc is not None:
                notes.append(f"pointer stored at {loc}")
        for role, value in (("source", source), ("target", target)):
            loc = _loc_of_site(module, built.entities[value].site)
            if loc is not None:
                notes.append(
                    f"{role} {_entity_label(built, value)} allocated at {loc}"
                )
    else:
        verbs = {True: "created", False: "allocated"}
        for value in values:
            entity = built.entities[value]
            loc = _loc_of_site(module, entity.site)
            if loc is not None:
                notes.append(
                    f"{entity} {verbs[entity.is_region]} at {loc}"
                )
    return "; ".join(notes)


def _bindings(node: Derivation) -> Dict[Var, int]:
    """Variable assignment that grounded ``node``'s rule instance.

    Unifies the head with the derived tuple and each positive body atom
    (in body order, matching ``node.children``) with the recorded body
    tuple; used to instantiate the rule's negated atoms/disequalities,
    which hold by absence and so have no recorded tuple of their own.
    """
    assert node.rule is not None
    bindings: Dict[Var, int] = {}

    def unify(atom: Atom, values) -> None:
        for term, value in zip(atom.terms, values):
            if isinstance(term, Var):
                bindings.setdefault(term, value)

    unify(node.rule.head, node.values)
    positive = [
        item
        for item in node.rule.body
        if isinstance(item, Atom) and not item.negated
    ]
    for atom, child in zip(positive, node.children):
        unify(atom, child.values)
    return bindings


def _render(
    node: Derivation,
    built: ConsistencyProgram,
    module,
    analysis,
    lines: List[str],
    depth: int,
) -> None:
    indent = "  " * depth
    shown = _decode_atom(built, node.relation, node.values)
    if node.is_fact:
        note = _fact_annotation(
            built, module, analysis, node.relation, node.values
        )
        lines.append(
            f"{indent}{shown}  [fact]" + (f"  {note}" if note else "")
        )
        return
    if node.rule is None:
        lines.append(f"{indent}{shown}  [unrecorded]")
        return
    lines.append(f"{indent}{shown}")
    lines.append(f"{indent}  by rule: {node.rule}")
    for child in node.children:
        _render(child, built, module, analysis, lines, depth + 1)
    bindings = _bindings(node)
    for item in node.rule.body:
        if isinstance(item, NotEqual):
            left = bindings.get(item.left)
            right = bindings.get(item.right)
            if left is not None and right is not None:
                lines.append(
                    f"{indent}  {_entity_label(built, left)} !="
                    f" {_entity_label(built, right)}  [holds by absence]"
                )
        elif isinstance(item, Atom) and item.negated:
            values = tuple(
                term.value if isinstance(term, Const) else bindings[term]
                for term in item.terms
            )
            shown_neg = _decode_atom(built, item.relation, values)
            note = ""
            if item.relation == "le":
                x, y = values
                note = (
                    f"  -- no subregion order puts"
                    f" {_entity_label(built, x)} below"
                    f" {_entity_label(built, y)}, so their lifetimes are"
                    f" unordered"
                )
            lines.append(f"{indent}  !{shown_neg}  [holds by absence]{note}")


def explain_object_pair(analysis, hierarchy, module, pair):
    """Derivation for one :class:`ObjectPairWarning`.

    Returns ``(lines, derivation)``: the rendered chain and the raw
    :class:`~repro.datalog.Derivation` tree it was built from.
    """
    # The demand transformation seeds the query with just this pair's
    # access, so explaining one warning never materializes the full
    # le/regionPair closure; restricted to the seed the relations equal
    # the full program's, so the chain rendered is the same argument.
    built = build_demand_program(
        analysis, hierarchy,
        queries=[(pair.source, pair.offset, pair.target)],
    )
    solution = built.program.solve(provenance=True)
    key = built.object_pair_key(pair.source, pair.offset, pair.target)
    derivation = solution.explain("objectPair", key)
    lines: List[str] = []
    _render(derivation, built, module, analysis, lines, 0)
    return lines, derivation


def explain_warning(report, number: int) -> Explanation:
    """Explain warning ``number`` (1-based, in report order).

    The warning's I-pair condenses possibly many context-specific object
    pairs; the chain shown is for the first (they share allocation
    sites), with the total noted in the header.
    """
    if not report.warnings:
        raise IndexError("the report has no warnings to explain")
    if not 1 <= number <= len(report.warnings):
        raise IndexError(
            f"warning {number} out of range (report has"
            f" {len(report.warnings)} warning(s))"
        )
    warning = report.warnings[number - 1]
    ipair = next(
        (
            candidate
            for candidate in report.ranked
            if candidate.source_site == warning.source_site
            and candidate.target_site == warning.target_site
            and candidate.object_pairs
        ),
        None,
    )
    if ipair is None:
        raise ValueError(
            f"warning {number} has no recorded object pairs to explain"
            " (refinement may have stripped them)"
        )
    pair = ipair.object_pairs[0]
    lines = [
        f"explanation for warning {number}: {warning.description}",
        f"  derivation (1 of {len(ipair.object_pairs)} object pair(s)):",
    ]
    chain, derivation = explain_object_pair(
        report.analysis, report.consistency.hierarchy, report.module, pair
    )
    lines.extend("  " + line for line in chain)
    return Explanation(
        warning_number=number,
        description=warning.description,
        num_object_pairs=len(ipair.object_pairs),
        derivation=derivation,
        lines=lines,
    )
