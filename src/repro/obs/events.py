"""A structured JSONL event log for RegionWiz runs (``--events PATH``).

The span tracer (:mod:`repro.obs.trace`) answers "where did the time
go?" after the fact; the event log answers "what happened, in order?"
as a machine-parseable stream.  One JSON record per line, one line per
event:

* ``phase.start`` / ``phase.end`` -- each pipeline phase, per unit;
* ``ladder.degrade`` -- a degradation-ladder rung blew its budget;
* ``budget.trip`` -- the cooperative checkpoint that detected it
  (resource, limit, used, phase);
* ``cache.hit`` / ``cache.miss`` -- persistent-cache probes;
* ``batch.unit`` -- one unit's final outcome in a sweep;
* ``warning`` -- one warning emitted (fingerprint, rank, unit);
* supervisor events (see :mod:`repro.tool.supervise`):
  ``supervisor.worker-lost`` (a pool worker died with the unit in
  flight), ``supervisor.respawn`` (fresh pool after backoff),
  ``supervisor.watchdog-kill`` (unit SIGKILLed past the hard
  deadline), ``supervisor.bisect`` / ``supervisor.quarantine``
  (poison-pill isolation), ``supervisor.journal-recovered`` (outcome
  adopted from the run journal instead of re-run),
  ``supervisor.gave-up`` (respawn budget exhausted),
  ``supervisor.interrupted`` / ``batch.interrupted`` (SIGINT/SIGTERM
  drain), and ``journal.replay`` (a ``--resume`` run adopted a
  completed outcome).

Every record carries a monotonic per-process sequence number (``seq``),
the emitting ``pid``, and a timestamp (``t_ms``) measured against the
same epoch convention the tracer uses: ``time.perf_counter`` relative to
a pinned zero.  The parallel batch executor ships the parent's epoch to
each worker, so worker events land on the parent's timeline and a
global, causally consistent ordering is just ``sort by (t_ms, pid,
seq)``.  Workers append to the same file; each record is written as a
single short ``write()`` of one line, so concurrent appends interleave
at line granularity.

Like the tracer, the log is process-global and off by default:
:func:`emit_event` is a single global read plus a ``None`` check when no
log is installed, so instrumentation sites call it unconditionally.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Optional

__all__ = [
    "EventLog",
    "emit_event",
    "events_enabled",
    "current_event_log",
    "install_event_log",
    "uninstall_event_log",
]

#: Bump when the record shape changes (consumers key on this).
EVENT_SCHEMA_VERSION = 1


class EventLog:
    """An append-only JSONL event sink bound to one file.

    ``append=False`` (the parent process) truncates the file and writes
    a ``log.open`` header record carrying the schema version and epoch;
    workers open with ``append=True`` and the parent's ``epoch`` so
    their timestamps share the parent's time zero.
    """

    def __init__(
        self,
        path: str,
        epoch: Optional[float] = None,
        append: bool = False,
        run_id: Optional[str] = None,
    ) -> None:
        self.path = str(path)
        self._epoch = time.perf_counter() if epoch is None else epoch
        self._seq = 0
        self.run_id = run_id
        if not append:
            open(self.path, "w").close()  # truncate the previous log
        # Everyone -- parent included -- writes in O_APPEND mode: an
        # append-mode write always lands at the current end of file, so
        # the parent's offset can never clobber lines workers appended
        # meanwhile.  Line buffering keeps each record a single write.
        self._handle = open(self.path, "a", buffering=1)
        if not append:
            header: Dict[str, Any] = {
                "schema": EVENT_SCHEMA_VERSION,
                "epoch": round(self._epoch, 6),
            }
            if run_id is not None:
                header["run_id"] = run_id
            self.emit("log.open", **header)

    @property
    def epoch(self) -> float:
        """The ``perf_counter`` reading this log calls time zero."""
        return self._epoch

    def emit(self, kind: str, **fields: Any) -> None:
        """Write one event record (a single JSONL line)."""
        self._seq += 1
        record: Dict[str, Any] = {
            "seq": self._seq,
            "t_ms": round((time.perf_counter() - self._epoch) * 1000.0, 3),
            "pid": os.getpid(),
            "kind": kind,
        }
        record.update(fields)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


# ---------------------------------------------------------------------------
# The process-global active event log (mirrors the tracer registry)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[EventLog] = None


def emit_event(kind: str, **fields: Any) -> None:
    """Emit one event on the active log (no-op when logging is off)."""
    log = _ACTIVE
    if log is not None:
        log.emit(kind, **fields)


def events_enabled() -> bool:
    """Whether an event log is installed (guards costly field prep)."""
    return _ACTIVE is not None


def current_event_log() -> Optional[EventLog]:
    return _ACTIVE


def install_event_log(log: EventLog) -> Optional[EventLog]:
    """Install ``log`` as the active event log; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = log
    return previous


def uninstall_event_log(previous: Optional[EventLog] = None) -> None:
    """Restore ``previous`` (default: disable event logging)."""
    global _ACTIVE
    _ACTIVE = previous
