"""Warning validation: correlate static warnings with dynamic faults.

The correlator closes the loop the paper's Section 6 triage story needs:
every static warning is matched against the faults one traced execution
actually produced, and labeled

* ``confirmed`` -- a dynamic fault's allocation-site spans match the
  warning's source/target spans: the warning is observably real;
* ``unobserved`` -- both allocation sites executed, but no matching
  fault occurred: on *this* input the warning did not bite (it may
  still be real on another path — exactly the gap between dynamic RC
  and the static analysis the paper measures);
* ``uncovered`` -- at least one of the warning's sites never executed:
  the run says nothing about the warning either way.

Matching is by ``file:line`` span (:func:`~repro.obs.fingerprint.loc_span`
format), the same site identity warning fingerprints hash, so the
correlation survives reformatting and is stable across engines.

Per-ranking-bucket precision is the headline metric: among high-ranked
(resp. low-ranked) warnings whose sites executed, what fraction was
confirmed?  (``uncovered`` warnings are excluded from the denominator —
the trace carries no evidence about them.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.obs.fingerprint import loc_span

__all__ = [
    "VALIDATION_SCHEMA_VERSION",
    "ValidationResult",
    "correlate_warnings",
    "label_warning",
]

#: Bump when the label semantics or payload shape changes.
VALIDATION_SCHEMA_VERSION = 1

LABELS = ("confirmed", "unobserved", "uncovered")


@dataclass
class ValidationResult:
    """The outcome of validating one report against one traced run."""

    #: "ok" | "no-entry" | "interp-error" | "budget-exhausted"
    status: str = "ok"
    #: Per-warning labels, aligned with the report's warning list.
    labels: List[str] = field(default_factory=list)
    #: Warning fingerprints, aligned with ``labels``.
    fingerprints: List[str] = field(default_factory=list)
    #: Ranking bucket per warning ("high" | "low"), aligned with labels.
    ranks: List[str] = field(default_factory=list)
    confirmed: int = 0
    unobserved: int = 0
    uncovered: int = 0
    #: Per-ranking-bucket counts and precision.
    buckets: Dict[str, Dict[str, Optional[float]]] = field(default_factory=dict)
    steps: int = 0
    events: int = 0
    faults: int = 0
    replay_consistent: Optional[bool] = None
    error: Optional[str] = None

    def to_payload(self) -> Dict[str, Any]:
        """A deterministic JSON payload (no timings: serial ≡ parallel)."""
        return {
            "schema": VALIDATION_SCHEMA_VERSION,
            "status": self.status,
            "labels": list(self.labels),
            "fingerprints": list(self.fingerprints),
            "ranks": list(self.ranks),
            "confirmed": self.confirmed,
            "unobserved": self.unobserved,
            "uncovered": self.uncovered,
            "buckets": self.buckets,
            "steps": self.steps,
            "events": self.events,
            "faults": self.faults,
            "replay_consistent": self.replay_consistent,
            "error": self.error,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ValidationResult":
        result = cls()
        for name in (
            "status",
            "labels",
            "fingerprints",
            "ranks",
            "confirmed",
            "unobserved",
            "uncovered",
            "buckets",
            "steps",
            "events",
            "faults",
            "replay_consistent",
            "error",
        ):
            if name in payload:
                setattr(result, name, payload[name])
        return result

    def fold_into(self, registry) -> None:
        """Record the validation outcome as ``validation.*`` gauges."""
        registry.gauge("validation.confirmed", self.confirmed)
        registry.gauge("validation.unobserved", self.unobserved)
        registry.gauge("validation.uncovered", self.uncovered)
        registry.gauge("validation.steps", self.steps)
        registry.gauge("validation.trace_events", self.events)
        registry.gauge("validation.faults", self.faults)
        if self.replay_consistent is not None:
            registry.gauge(
                "validation.replay_mismatch", 0 if self.replay_consistent else 1
            )
        for bucket, counts in self.buckets.items():
            for label in LABELS:
                registry.gauge(
                    f"validation.{bucket}.{label}", counts.get(label, 0) or 0
                )
            precision = counts.get("precision")
            if precision is not None:
                registry.gauge(f"validation.{bucket}.precision", precision)


def _fault_spans(fault: Any) -> Tuple[Optional[str], Optional[str]]:
    if isinstance(fault, dict):
        return fault.get("source_span"), fault.get("target_span")
    return getattr(fault, "source_span", None), getattr(fault, "target_span", None)


def label_warning(
    warning: Any,
    faults: Sequence[Any],
    covered_spans: Set[str],
) -> str:
    """Label one warning against one run's faults and coverage.

    ``warning`` needs ``source_loc``/``target_loc`` attributes;
    ``faults`` accepts :class:`~repro.runtime.pool.Fault` objects or the
    replay simulator's fault dicts.
    """
    source = loc_span(warning.source_loc)
    target = loc_span(warning.target_loc)
    for fault in faults:
        fault_source, fault_target = _fault_spans(fault)
        if fault_target != target:
            continue
        # Holder-less faults (dead-object accesses, rc-violations) pin
        # only the victim site; a matching target span confirms.
        if fault_source == source or fault_source is None:
            return "confirmed"
    if source in covered_spans and target in covered_spans:
        return "unobserved"
    return "uncovered"


def correlate_warnings(
    warnings: Sequence[Any],
    faults: Sequence[Any],
    covered_spans: Set[str],
    fingerprints: Optional[Sequence[str]] = None,
) -> ValidationResult:
    """Label every warning and compute per-ranking-bucket precision."""
    result = ValidationResult()
    result.faults = len(faults)
    bucket_counts: Dict[str, Dict[str, int]] = {
        "high": {label: 0 for label in LABELS},
        "low": {label: 0 for label in LABELS},
    }
    for index, warning in enumerate(warnings):
        label = label_warning(warning, faults, covered_spans)
        bucket = "high" if getattr(warning, "high_ranked", False) else "low"
        result.labels.append(label)
        result.ranks.append(bucket)
        if fingerprints is not None and index < len(fingerprints):
            result.fingerprints.append(fingerprints[index])
        else:
            result.fingerprints.append(getattr(warning, "fingerprint", "") or "")
        bucket_counts[bucket][label] += 1
        setattr(result, label, getattr(result, label) + 1)
    for bucket, counts in bucket_counts.items():
        observed = counts["confirmed"] + counts["unobserved"]
        precision = counts["confirmed"] / observed if observed else None
        result.buckets[bucket] = {
            "confirmed": counts["confirmed"],
            "unobserved": counts["unobserved"],
            "uncovered": counts["uncovered"],
            "precision": precision,
        }
    return result
