"""A self-contained HTML observability report (``--html-report PATH``).

One shareable file fusing everything a run knows about itself: the
warning table (rank, fingerprint, baseline diff status, expandable
``--explain``-style provenance), the metrics registry (fleet percentiles
under ``--batch``), the text profile tree, and the batch unit status
grid.  The output is a **single file with no network fetches** -- all
CSS and JS are inlined, there are no ``<link>``/``<img src=http...>``
references -- so it can be attached to a CI run or mailed around and
render identically offline.

Rendering works from plain data (duck-typed report/batch objects plus
the diff structures of :mod:`repro.obs.history`), so cached batch
outcomes -- which carry only fingerprints and rendered warning lines,
not full reports -- produce the same table as freshly analyzed ones.
"""

from __future__ import annotations

import html as _html
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["render_html_report", "write_html_report"]


def _esc(value: Any) -> str:
    return _html.escape(str(value), quote=True)


_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
       color: #1a1a1a; background: #fcfcfc; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td { border: 1px solid #ddd; padding: 0.3rem 0.5rem;
         text-align: left; vertical-align: top; }
th { background: #f0f0f0; }
tr:nth-child(even) td { background: #f7f7f7; }
code, pre { font-family: ui-monospace, 'SF Mono', Menlo, monospace; }
pre.profile { background: #f4f4f4; border: 1px solid #ddd;
              padding: 0.6rem; overflow-x: auto; font-size: 0.78rem; }
details > pre { margin: 0.3rem 0 0 0; }
.rank-high { color: #b30000; font-weight: 600; }
.rank-low { color: #666; }
.diff-new { background: #ffe3e3; color: #8a0000; border-radius: 3px;
            padding: 0 0.3rem; font-weight: 600; }
.diff-persisting { background: #eef; color: #334; border-radius: 3px;
                   padding: 0 0.3rem; }
.diff-fixed { background: #e2f6e2; color: #0a5a0a; border-radius: 3px;
              padding: 0 0.3rem; }
.grid { display: flex; flex-wrap: wrap; gap: 0.4rem; margin: 0.6rem 0; }
.cell { border-radius: 4px; padding: 0.35rem 0.6rem; font-size: 0.8rem;
        border: 1px solid rgba(0,0,0,0.15); }
.cell-clean { background: #e2f6e2; } .cell-warnings { background: #fff3cd; }
.cell-cached { outline: 2px dashed #88a; }
.cell-input-error, .cell-internal-error, .cell-budget-exhausted
  { background: #ffd6d6; }
/* Supervisor-recorded outcomes: a quarantined poison pill (the worker
   process died) and a hard-timeout kill.  Darker than in-process
   failures -- these units never got to report anything. */
.cell-crashed { background: #f3c2c2; border: 1px solid #b55; }
.cell-timeout { background: #ffe0c2; border: 1px solid #b85; }
.cell-skipped { background: #eee; color: #888; }
/* Dynamic-validation labels (--validate): a warning observed to bite,
   one whose sites ran clean, and one the trace never reached. */
.v-confirmed { background: #ffe3e3; color: #8a0000; border-radius: 3px;
               padding: 0 0.3rem; font-weight: 600; }
.v-unobserved { background: #e2f6e2; color: #0a5a0a; border-radius: 3px;
                padding: 0 0.3rem; }
.v-uncovered { background: #eee; color: #666; border-radius: 3px;
               padding: 0 0.3rem; }
.summary-line { color: #444; }
/* Run-history trend sparklines (regionwiz history --html-out). */
.spark { font-family: ui-monospace, 'SF Mono', Menlo, monospace;
         letter-spacing: 1px; color: #346; font-size: 1rem; }
footer { margin-top: 2.5rem; color: #999; font-size: 0.75rem; }
"""

# The only script: expand/collapse every provenance chain at once.
_JS = """
function toggleAll(open) {
  document.querySelectorAll('details').forEach(d => d.open = open);
}
"""


def _diff_status_index(diff) -> Dict[Tuple[str, str], str]:
    """(unit, fingerprint) -> 'new' | 'persisting' (from a WarningDiff)."""
    index: Dict[Tuple[str, str], str] = {}
    if diff is None:
        return index
    for entry in diff.new:
        index[entry.key] = "new"
    for entry in diff.persisting:
        index[entry.key] = "persisting"
    return index


def _warning_rows(
    rows: List[Dict[str, Any]],
    explanations: Optional[Mapping[str, str]],
) -> List[str]:
    validated = any(row.get("validation") for row in rows)
    out: List[str] = []
    out.append(
        "<table><tr><th>#</th><th>unit</th><th>rank</th>"
        "<th>fingerprint</th><th>status</th>"
        + ("<th>dynamic</th>" if validated else "")
        + "<th>warning</th></tr>"
    )
    for index, row in enumerate(rows, 1):
        status = row.get("status")
        status_html = (
            f'<span class="diff-{_esc(status)}">{_esc(status)}</span>'
            if status
            else "&mdash;"
        )
        validation_html = ""
        if validated:
            label = row.get("validation")
            rendered = (
                f'<span class="v-{_esc(label)}">{_esc(label)}</span>'
                if label
                else "&mdash;"
            )
            validation_html = f"<td>{rendered}</td>"
        description = _esc(row["description"])
        explanation = (explanations or {}).get(row["fingerprint"])
        if explanation:
            description += (
                "<details><summary>derivation</summary>"
                f"<pre>{_esc(explanation)}</pre></details>"
            )
        rank = row["rank"]
        out.append(
            f"<tr><td>{index}</td><td><code>{_esc(row['unit'])}</code></td>"
            f'<td><span class="rank-{_esc(rank)}">{_esc(rank)}</span></td>'
            f"<td><code>{_esc(row['fingerprint'])}</code></td>"
            f"<td>{status_html}</td>{validation_html}<td>{description}</td></tr>"
        )
    out.append("</table>")
    if not rows:
        out.append('<p class="summary-line">no warnings reported.</p>')
    return out


def _fixed_rows(diff) -> List[str]:
    if diff is None or not diff.fixed:
        return []
    out = ["<h2>Fixed since baseline</h2>", "<table>"]
    out.append("<tr><th>unit</th><th>fingerprint</th><th>warning</th></tr>")
    for entry in diff.fixed:
        out.append(
            f"<tr><td><code>{_esc(entry.unit)}</code></td>"
            f"<td><code>{_esc(entry.fingerprint)}</code></td>"
            f"<td>{_esc(entry.description)}</td></tr>"
        )
    out.append("</table>")
    return out


def _metrics_table(metrics: Mapping[str, Any], caption: str) -> List[str]:
    if not metrics:
        return []
    out = [f"<h2>{_esc(caption)}</h2>", "<table>"]
    first = next(iter(metrics.values()))
    if isinstance(first, Mapping):  # fleet percentiles / histogram summaries
        columns = list(first.keys())
        out.append(
            "<tr><th>metric</th>"
            + "".join(f"<th>{_esc(c)}</th>" for c in columns)
            + "</tr>"
        )
        for name, summary in metrics.items():
            if not isinstance(summary, Mapping):
                continue
            out.append(
                f"<tr><td><code>{_esc(name)}</code></td>"
                + "".join(
                    f"<td>{_esc(summary.get(c, ''))}</td>" for c in columns
                )
                + "</tr>"
            )
    else:
        out.append("<tr><th>metric</th><th>value</th></tr>")
        for name, value in metrics.items():
            if isinstance(value, Mapping):
                value = " ".join(f"{k}={v}" for k, v in value.items())
            out.append(
                f"<tr><td><code>{_esc(name)}</code></td>"
                f"<td>{_esc(value)}</td></tr>"
            )
    out.append("</table>")
    return out


def _validation_section(validation: Mapping[str, Any]) -> List[str]:
    """The dynamic-validation block (single-run payload or batch summary)."""
    out = ["<h2>Dynamic validation</h2>"]
    bits: List[str] = []
    if "units" in validation:  # batch summary
        bits.append(f"{validation['units']} unit(s) validated")
        statuses = validation.get("statuses") or {}
        if statuses:
            bits.append(
                ", ".join(
                    f"{count} {_esc(status)}"
                    for status, count in statuses.items()
                )
            )
        mismatches = validation.get("replay_mismatches", 0)
        bits.append(
            "replay agrees with the runtime fault log"
            if not mismatches
            else f"replay DISAGREES on {mismatches} unit(s)"
        )
    else:  # single-run ValidationResult payload
        bits.append(f"status <code>{_esc(validation.get('status'))}</code>")
        if validation.get("error"):
            bits.append(_esc(validation["error"]))
        bits.append(
            f"{validation.get('steps', 0)} step(s),"
            f" {validation.get('events', 0)} trace event(s),"
            f" {validation.get('faults', 0)} dynamic fault(s)"
        )
        consistent = validation.get("replay_consistent")
        if consistent is not None:
            bits.append(
                "replay agrees with the runtime fault log"
                if consistent
                else "replay DISAGREES with the runtime fault log"
            )
    out.append(f'<p class="summary-line">{"; ".join(bits)}.</p>')
    out.append(
        '<p class="summary-line">'
        f'<span class="v-confirmed">{validation.get("confirmed", 0)}'
        " confirmed</span> "
        f'<span class="v-unobserved">{validation.get("unobserved", 0)}'
        " unobserved</span> "
        f'<span class="v-uncovered">{validation.get("uncovered", 0)}'
        " uncovered</span></p>"
    )
    buckets = validation.get("buckets") or {}
    if buckets:
        out.append("<table>")
        out.append(
            "<tr><th>bucket</th><th>confirmed</th><th>unobserved</th>"
            "<th>uncovered</th><th>precision</th></tr>"
        )
        for bucket in sorted(buckets):
            counts = buckets[bucket]
            precision = counts.get("precision")
            rendered = "&mdash;" if precision is None else f"{precision:.2f}"
            out.append(
                f"<tr><td>{_esc(bucket)}</td>"
                f"<td>{counts.get('confirmed', 0)}</td>"
                f"<td>{counts.get('unobserved', 0)}</td>"
                f"<td>{counts.get('uncovered', 0)}</td>"
                f"<td>{rendered}</td></tr>"
            )
        out.append("</table>")
    return out


def _unit_grid(batch) -> List[str]:
    out = ["<h2>Batch units</h2>", '<div class="grid">']
    for outcome in batch.outcomes:
        classes = f"cell cell-{_esc(outcome.status)}"
        if getattr(outcome, "cached", False):
            classes += " cell-cached"
        detail = (
            f"{outcome.warnings} warning(s), {outcome.high} high"
            if outcome.ok
            else (outcome.error or outcome.status)
        )
        code = "&mdash;" if outcome.exit_code is None else outcome.exit_code
        out.append(
            f'<div class="{classes}"><strong>{_esc(outcome.unit)}</strong>'
            f"<br>{_esc(outcome.status)} (exit {code})<br>"
            f"{_esc(detail)}</div>"
        )
    out.append("</div>")
    return out


def render_html_report(
    title: str = "RegionWiz observability report",
    report=None,
    batch=None,
    diff=None,
    per_unit_diff: Optional[Mapping[str, Any]] = None,
    profile: Optional[str] = None,
    explanations: Optional[Mapping[str, str]] = None,
    validation: Optional[Mapping[str, Any]] = None,
    history: Optional[Mapping[str, List[float]]] = None,
) -> str:
    """Render the report as one self-contained HTML document string.

    Exactly one of ``report`` (a single-run
    :class:`~repro.tool.regionwiz.RegionWizReport`) or ``batch`` (a
    :class:`~repro.tool.batch.BatchResult`) should be given.  ``diff``
    is the fleet-wide :class:`~repro.obs.history.WarningDiff` (when a
    baseline was supplied), ``per_unit_diff`` its per-unit breakdown,
    ``profile`` the tracer's text tree, and ``explanations`` a
    fingerprint -> derivation-chain mapping rendered as expandable
    ``<details>`` blocks.  ``validation`` is the single-run dynamic
    validation payload (``--validate``); in batch mode the per-unit
    payloads on the outcomes are used instead.  ``history`` is a
    metric -> value-series mapping (oldest first, from the run
    registry) rendered as a sparkline trend table (``regionwiz history
    --html-out``).
    """
    body: List[str] = [f"<h1>{_esc(title)}</h1>"]

    # Header summary line(s).
    if report is not None:
        row = report.fig11_row()
        body.append(
            f'<p class="summary-line"><code>{_esc(report.name)}</code>: '
            f"{row.regions} region(s), {row.objects} object(s), "
            f"{row.i_pairs} instruction pair(s), {row.high} high-ranked, "
            f"precision <code>{_esc(report.precision)}</code>, "
            f"{row.time_seconds * 1000:.1f}ms</p>"
        )
    if batch is not None:
        body.append(
            f'<p class="summary-line">batch: {len(batch.succeeded)}/'
            f"{len(batch.outcomes)} unit(s) analyzed, "
            f"{len(batch.failed)} failed, {len(batch.skipped)} skipped, "
            f"exit {batch.exit_code()}</p>"
        )
    if diff is not None:
        counts = diff.counts()
        body.append(
            '<p class="summary-line">baseline diff: '
            f'<span class="diff-new">{counts["new"]} new</span> '
            f'<span class="diff-persisting">{counts["persisting"]}'
            " persisting</span> "
            f'<span class="diff-fixed">{counts["fixed"]} fixed</span></p>'
        )

    # Run-history trends (regionwiz history --html-out): one sparkline
    # row per metric, oldest run on the left.
    if history:
        body.append("<h2>Run history</h2><table>")
        body.append(
            "<tr><th>metric</th><th>trend</th><th>latest</th>"
            "<th>min</th><th>max</th><th>runs</th></tr>"
        )
        from .registry import sparkline

        for name in sorted(history):
            values = list(history[name])
            if not values:
                continue
            body.append(
                f"<tr><td><code>{_esc(name)}</code></td>"
                f'<td><span class="spark">{_esc(sparkline(values))}'
                "</span></td>"
                f"<td>{values[-1]:g}</td><td>{min(values):g}</td>"
                f"<td>{max(values):g}</td><td>{len(values)}</td></tr>"
            )
        body.append("</table>")

    # Warning table.
    body.append("<h2>Warnings</h2>")
    if explanations:
        body.append(
            "<p><button onclick=\"toggleAll(true)\">expand all</button> "
            "<button onclick=\"toggleAll(false)\">collapse all</button></p>"
        )
    status_index = _diff_status_index(diff)
    rows: List[Dict[str, Any]] = []
    if report is not None:
        labels = (validation or {}).get("labels") or []
        for index, warning in enumerate(report.warnings):
            key = (report.name, warning.fingerprint)
            rows.append(
                {
                    "unit": report.name,
                    "rank": "high" if warning.high_ranked else "low",
                    "fingerprint": warning.fingerprint,
                    "status": status_index.get(key),
                    "validation": (
                        labels[index] if index < len(labels) else None
                    ),
                    "description": warning.description,
                }
            )
    if batch is not None:
        for outcome in batch.outcomes:
            if not outcome.ok:
                continue
            labels = (getattr(outcome, "validation", None) or {}).get(
                "labels"
            ) or []
            for index, (fingerprint, line) in enumerate(
                zip(outcome.fingerprints, outcome.warning_lines)
            ):
                rows.append(
                    {
                        "unit": outcome.unit,
                        "rank": "high" if line.startswith("[HIGH]") else "low",
                        "fingerprint": fingerprint,
                        "status": status_index.get((outcome.unit, fingerprint)),
                        "validation": (
                            labels[index] if index < len(labels) else None
                        ),
                        "description": (
                            line.split("] ", 1)[1] if "] " in line else line
                        ),
                    }
                )
    body.extend(_warning_rows(rows, explanations))
    body.extend(_fixed_rows(diff))

    # Dynamic validation (--validate): the single-run payload, or the
    # batch result's fleet-wide aggregate.
    if validation is None and batch is not None:
        summary_fn = getattr(batch, "validation_summary", None)
        if callable(summary_fn):
            validation = summary_fn()
    if validation is not None:
        body.extend(_validation_section(validation))

    # Batch unit grid + per-unit diff table.
    if batch is not None:
        body.extend(_unit_grid(batch))
        if per_unit_diff:
            body.append("<h2>Baseline diff per unit</h2><table>")
            body.append(
                "<tr><th>unit</th><th>new</th><th>persisting</th>"
                "<th>fixed</th></tr>"
            )
            for unit, unit_diff in per_unit_diff.items():
                counts = unit_diff.counts()
                body.append(
                    f"<tr><td><code>{_esc(unit)}</code></td>"
                    f'<td>{counts["new"]}</td>'
                    f'<td>{counts["persisting"]}</td>'
                    f'<td>{counts["fixed"]}</td></tr>'
                )
            body.append("</table>")

    # Metrics.
    if report is not None and report.metrics is not None:
        body.extend(_metrics_table(report.metrics.to_dict(), "Metrics"))
    if batch is not None:
        fleet = batch.fleet_metrics()
        if fleet:
            body.extend(
                _metrics_table(
                    fleet,
                    f"Fleet metrics ({len(batch.unit_metrics())} unit(s))",
                )
            )
        body.extend(
            _metrics_table(batch.batch_metrics().to_dict(), "Batch metrics")
        )

    # Profile tree.
    if profile:
        body.append("<h2>Profile</h2>")
        body.append(f'<pre class="profile">{_esc(profile)}</pre>')

    body.append(
        "<footer>generated by regionwiz --html-report; self-contained"
        " (inline CSS/JS, no network fetches)</footer>"
    )
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<title>{_esc(title)}</title>"
        f"<style>{_CSS}</style><script>{_JS}</script></head>\n<body>\n"
        + "\n".join(body)
        + "\n</body></html>\n"
    )


def write_html_report(path: str, **kwargs: Any) -> None:
    """Render and write the report to ``path`` (see
    :func:`render_html_report` for the keyword arguments)."""
    document = render_html_report(**kwargs)
    with open(path, "w") as handle:
        handle.write(document)
