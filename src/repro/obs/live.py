"""Live fleet telemetry for batch sweeps (``--live``).

A paper-scale ``--batch --jobs N`` sweep used to be a black box until
the final JSON landed.  This module adds the operational layer on top of
the supervision machinery that already exists:

* :class:`TelemetryBus` -- the parent-side accumulator.  It is fed from
  three places, none of which add work to the analysis hot path:

  - **parent hooks** (:func:`bus_event`): the batch scheduler announces
    the sweep (``batch.start`` with every unit's source size -- the same
    byte proxy the LPT dispatch plan load-balances on), each completed
    outcome (``unit.done``), and the supervisor's poll loop
    (``tick`` with the live respawn/watchdog counters);
  - **worker deltas**: workers piggyback one small ``telemetry`` record
    per completed unit on the run-journal heartbeat channel (peak RSS,
    CPU seconds, pid); the supervisor's journal tail forwards them as
    ``worker.delta`` events.  Records are treated as *partial* -- a
    worker that died before its first flush simply contributes nothing;
  - **snapshots** (:meth:`TelemetryBus.snapshot`): a flat dotted-name
    dict in the :meth:`~repro.obs.metrics.MetricsRegistry.to_dict`
    shape, served live by the ``--metrics-port`` endpoint and written by
    ``--metrics-out``.  The progress keys (``batch.units_done``,
    ``cache.hits``, ``supervision.respawns``, ...) are always present --
    a scraper sees ``0``, never a gap.

* :class:`LiveView` -- the rate-limited ``--live`` stderr renderer: a
  single rewritten status line on a TTY, plain periodic log lines
  otherwise (CI logs stay readable).  ETA is remaining corpus bytes over
  the observed completed-bytes throughput -- bytes, not unit counts,
  because LPT dispatch runs the big units first and a unit-count ETA
  would be wildly optimistic early and pessimistic late.

Like the tracer and the event log, the bus is process-global and off by
default: :func:`bus_event` is one module-global read plus a ``None``
check when no bus is installed, so the batch scheduler calls it
unconditionally and ``benchmarks/smoke_live_telemetry.py`` holds the
disabled path under the same <3% discipline as tracing.
"""

from __future__ import annotations

import secrets
import threading
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, TextIO

__all__ = [
    "new_run_id",
    "TelemetryBus",
    "LiveView",
    "bus_event",
    "current_bus",
    "install_bus",
    "uninstall_bus",
]


def new_run_id() -> str:
    """A short random hex run id (parent-generated, threaded everywhere).

    Eight hex chars: long enough that joining registry rows, journals,
    event streams, and Chrome traces by id is unambiguous within any
    real fleet's retention window, short enough to read aloud.
    """
    return secrets.token_hex(4)


class TelemetryBus:
    """Parent-side accumulator for one run's live telemetry.

    Thread-safe: the batch scheduler feeds it from the main thread while
    the ``--metrics-port`` HTTP server reads :meth:`snapshot` from its
    serving thread.  Every handler tolerates missing fields -- a worker
    that died before its first flush, a torn journal record, or an
    outcome without metrics must never take the view down.
    """

    def __init__(self, run_id: Optional[str] = None, jobs: int = 1) -> None:
        self.run_id = run_id or new_run_id()
        self.jobs = jobs
        self.started_at = time.perf_counter()
        self._lock = threading.Lock()
        self._view: Optional[Callable[[str], None]] = None
        # Progress.
        self._total_units = 0
        self._sizes: List[int] = []
        self._done = 0
        self._failed = 0
        self._cached = 0
        self._warnings = 0
        self._high = 0
        self._bytes_done = 0
        self._bytes_total = 0
        self._done_indices: set = set()
        self._in_flight: Dict[int, str] = {}
        self._finished = False
        # Supervision counters (mirrored from the supervisor's stats).
        self._supervision: Dict[str, int] = {}
        # Worker deltas: pid -> {"rss_kb": ..., "cpu_s": ...}.
        self._workers: Dict[int, Dict[str, float]] = {}

    # -- feeding -----------------------------------------------------------

    def attach(self, view: "LiveView") -> None:
        """Attach a renderer notified after every handled event."""
        self._view = view.notify

    def handle(self, kind: str, **fields: Any) -> None:
        """Dispatch one bus event (the :func:`bus_event` entry point)."""
        with self._lock:
            if kind == "batch.start":
                self._start(fields)
            elif kind == "unit.start":
                index = fields.get("index")
                if isinstance(index, int):
                    self._in_flight[index] = str(fields.get("unit", "?"))
            elif kind == "unit.done":
                self._unit_done(fields)
            elif kind == "worker.delta":
                self._worker_delta(fields.get("record") or {})
            elif kind == "tick":
                stats = fields.get("stats")
                if stats:
                    self._supervision.update(
                        {str(k): int(v) for k, v in dict(stats).items()}
                    )
            elif kind == "batch.end":
                self._finished = True
        view = self._view
        if view is not None:
            view(kind)

    def _start(self, fields: Mapping[str, Any]) -> None:
        self._total_units = int(fields.get("total", 0))
        sizes = fields.get("sizes") or []
        self._sizes = [int(size) for size in sizes]
        self._bytes_total = sum(self._sizes)
        self.jobs = int(fields.get("jobs", self.jobs))
        self.started_at = time.perf_counter()

    def _unit_done(self, fields: Mapping[str, Any]) -> None:
        index = fields.get("index")
        if isinstance(index, int):
            if index in self._done_indices:
                return  # a retried unit reports once
            self._done_indices.add(index)
            self._in_flight.pop(index, None)
            if 0 <= index < len(self._sizes):
                self._bytes_done += self._sizes[index]
        self._done += 1
        outcome = fields.get("outcome")
        if outcome is None:
            return
        if getattr(outcome, "cached", False):
            self._cached += 1
        if not getattr(outcome, "ok", False):
            self._failed += 1
        self._warnings += int(getattr(outcome, "warnings", 0) or 0)
        self._high += int(getattr(outcome, "high", 0) or 0)

    def _worker_delta(self, record: Mapping[str, Any]) -> None:
        """Fold one worker telemetry record (every field optional)."""
        pid = record.get("pid")
        if not isinstance(pid, int):
            return
        worker = self._workers.setdefault(pid, {})
        rss = record.get("rss_kb")
        if isinstance(rss, (int, float)):
            worker["rss_kb"] = max(worker.get("rss_kb", 0.0), float(rss))
        cpu = record.get("cpu_s")
        if isinstance(cpu, (int, float)):
            # process_time is monotone per process; keep the latest.
            worker["cpu_s"] = float(cpu)

    # -- reading -----------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._finished

    def elapsed(self) -> float:
        return time.perf_counter() - self.started_at

    def eta_seconds(self) -> Optional[float]:
        """Remaining bytes over observed byte throughput (None: unknown)."""
        with self._lock:
            bytes_done, bytes_total = self._bytes_done, self._bytes_total
        if bytes_done <= 0 or bytes_total <= 0:
            return None
        elapsed = self.elapsed()
        if elapsed <= 0:
            return None
        rate = bytes_done / elapsed
        if rate <= 0:
            return None
        return max(0.0, (bytes_total - bytes_done) / rate)

    def snapshot(self) -> Dict[str, Any]:
        """A flat metrics dict of the fleet's current state.

        The progress keys are always present (zeros included) so the
        ``/metrics`` exposition never has gaps mid-scrape.
        """
        eta = self.eta_seconds()
        with self._lock:
            elapsed = self.elapsed()
            payload: Dict[str, Any] = {
                "batch.units_total": self._total_units,
                "batch.units_done": self._done,
                "batch.units_failed": self._failed,
                "batch.units_in_flight": len(self._in_flight),
                "batch.warnings": self._warnings,
                "batch.high": self._high,
                "cache.hits": self._cached,
                "supervision.respawns": self._supervision.get(
                    "respawns", 0
                ),
                "supervision.watchdog_kills": self._supervision.get(
                    "watchdog_kills", 0
                ),
                "supervision.timeouts": self._supervision.get(
                    "timeouts", 0
                ),
                "supervision.quarantined": self._supervision.get(
                    "quarantined", 0
                ),
                "progress.bytes_total": self._bytes_total,
                "progress.bytes_done": self._bytes_done,
                "progress.elapsed_s": round(elapsed, 3),
                "run.jobs": self.jobs,
                "run.finished": 1 if self._finished else 0,
            }
            if elapsed > 0 and self._done:
                payload["throughput.units_per_s"] = round(
                    self._done / elapsed, 6
                )
            if eta is not None:
                payload["progress.eta_s"] = round(eta, 3)
            if self._workers:
                payload["workers.seen"] = len(self._workers)
                rss = [
                    w["rss_kb"] for w in self._workers.values()
                    if "rss_kb" in w
                ]
                if rss:
                    payload["workers.rss_kb_max"] = max(rss)
                cpu = [
                    w["cpu_s"] for w in self._workers.values()
                    if "cpu_s" in w
                ]
                if cpu:
                    payload["workers.cpu_s_total"] = round(sum(cpu), 6)
        return dict(sorted(payload.items()))

    def status_line(self) -> str:
        """One human line of the current state (the ``--live`` view)."""
        snap = self.snapshot()
        done = snap["batch.units_done"]
        total = snap["batch.units_total"]
        parts = [f"run {self.run_id}: {done}/{total} unit(s)"]
        rate = snap.get("throughput.units_per_s")
        if rate:
            parts.append(f"{rate:.2f}/s")
        if total and done:
            hits = snap["cache.hits"]
            parts.append(f"cache {100.0 * hits / done:.0f}%")
        eta = snap.get("progress.eta_s")
        if eta is not None and not self._finished:
            parts.append(f"eta {eta:.0f}s")
        if snap["batch.units_failed"]:
            parts.append(f"failed {snap['batch.units_failed']}")
        respawns = snap["supervision.respawns"]
        kills = snap["supervision.watchdog_kills"]
        if respawns or kills:
            parts.append(f"respawns {respawns} watchdog {kills}")
        rss = snap.get("workers.rss_kb_max")
        if rss:
            parts.append(f"rss {rss / 1024.0:.0f}MB")
        if self._finished:
            parts.append(f"done in {snap['progress.elapsed_s']:.1f}s")
        return "  ".join(parts)


class LiveView:
    """Rate-limited stderr rendering of a :class:`TelemetryBus`.

    On a TTY the status line is rewritten in place (``\\r``, erased on
    close so the final report starts on a clean line); on anything else
    (CI logs, pipes) a plain ``live: ...`` line is printed at a slower
    cadence so the log stays scannable.
    """

    #: Minimum seconds between repaints on a TTY.
    TTY_INTERVAL = 0.5
    #: Minimum seconds between plain log lines off-TTY.
    PLAIN_INTERVAL = 5.0

    def __init__(
        self,
        bus: TelemetryBus,
        stream: Optional[TextIO] = None,
        interval: Optional[float] = None,
    ) -> None:
        import sys

        self.bus = bus
        self.stream = stream if stream is not None else sys.stderr
        try:
            self._tty = bool(self.stream.isatty())
        except (AttributeError, ValueError):
            self._tty = False
        if interval is not None:
            self._interval = interval
        else:
            self._interval = (
                self.TTY_INTERVAL if self._tty else self.PLAIN_INTERVAL
            )
        self._last_render = 0.0
        self._last_width = 0
        self._closed = False

    def notify(self, kind: str) -> None:
        """Bus callback: repaint if the rate limit allows (or on end)."""
        if self._closed:
            return
        now = time.perf_counter()
        force = kind == "batch.end"
        if not force and now - self._last_render < self._interval:
            return
        self._last_render = now
        self.render()

    def render(self) -> None:
        line = self.bus.status_line()
        try:
            if self._tty:
                pad = max(0, self._last_width - len(line))
                self.stream.write("\r" + line + " " * pad)
                self._last_width = len(line)
            else:
                self.stream.write(f"live: {line}\n")
            self.stream.flush()
        except (OSError, ValueError):
            self._closed = True  # stream gone: stop rendering quietly

    def close(self) -> None:
        """Final render plus a newline so later output starts clean."""
        if self._closed:
            return
        self.render()
        self._closed = True
        try:
            if self._tty:
                self.stream.write("\n")
                self.stream.flush()
        except (OSError, ValueError):
            pass


# ---------------------------------------------------------------------------
# The process-global active bus (mirrors the tracer/event-log registries)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[TelemetryBus] = None


def bus_event(kind: str, **fields: Any) -> None:
    """Feed the active bus (a no-op global read when telemetry is off)."""
    bus = _ACTIVE
    if bus is not None:
        bus.handle(kind, **fields)


def current_bus() -> Optional[TelemetryBus]:
    return _ACTIVE


def install_bus(bus: TelemetryBus) -> Optional[TelemetryBus]:
    """Install ``bus`` as the active bus; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = bus
    return previous


def uninstall_bus(previous: Optional[TelemetryBus] = None) -> None:
    """Restore ``previous`` (default: disable live telemetry)."""
    global _ACTIVE
    _ACTIVE = previous
