"""Hierarchical span tracing for the RegionWiz pipeline.

A :class:`Tracer` records a tree of timed spans -- pipeline phases,
degradation-ladder attempts, Datalog strata and rule evaluations, batch
units -- each carrying wall time, the peak-RSS delta observed across the
span, and arbitrary counter attributes.  The tree exports to

* Chrome ``trace_event`` JSON (:meth:`Tracer.to_chrome_trace` /
  :meth:`Tracer.write_chrome_trace`), loadable in ``chrome://tracing``
  and Perfetto (CLI: ``--trace out.json``);
* an indented text profile (:meth:`Tracer.format_tree`, CLI:
  ``--profile``).

Instrumentation sites call :func:`trace_span` unconditionally::

    with trace_span("phase.call-graph") as span:
        graph = build_call_graph(...)
        span.set(edges=graph.num_edges)

With no tracer installed (the default) :func:`trace_span` returns a
shared, stateless no-op context manager after a single module-global
read, so always-on instrumentation stays off the profile;
``benchmarks/bench_trace_overhead.py`` holds the disabled path to < 3%
of the Datalog join benchmark.  Install a tracer for one run with
:func:`install_tracer`/:func:`uninstall_tracer` or the :func:`tracing_to`
context manager.  The registry is process-global and single-threaded by
design (the tool is a single-threaded pipeline); batch sweeps reuse one
tracer across units, each unit under its own ``batch.unit`` span.

Peak RSS is read from ``resource.getrusage`` (kilobytes on Linux); it is
monotone, so a span's ``rss_delta_kb`` is the high-water-mark growth
*during* the span -- zero for spans that allocate within already-peaked
memory, which is exactly the signal a capacity investigation wants.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "SpanRecord",
    "Tracer",
    "trace_span",
    "trace_instant",
    "tracing",
    "current_tracer",
    "install_tracer",
    "uninstall_tracer",
    "tracing_to",
]

try:
    import resource

    def _peak_rss_kb() -> int:
        """Peak RSS of this process in kB (ru_maxrss unit on Linux)."""
        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)

except ImportError:  # pragma: no cover - non-POSIX fallback

    def _peak_rss_kb() -> int:
        return 0


@dataclass
class SpanRecord:
    """One node of the span tree (``kind="instant"`` for point events)."""

    name: str
    start_us: float
    end_us: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["SpanRecord"] = field(default_factory=list)
    kind: str = "span"  # 'span' | 'instant'
    rss_before_kb: int = 0
    rss_after_kb: int = 0

    @property
    def duration_ms(self) -> float:
        return (self.end_us - self.start_us) / 1000.0

    @property
    def rss_delta_kb(self) -> int:
        return max(0, self.rss_after_kb - self.rss_before_kb)

    def find(self, name: str) -> List["SpanRecord"]:
        """Every descendant span (depth-first, self included) named ``name``."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found


class _LiveSpan:
    """Handle for an open span: a context manager with attr setters."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record

    def __enter__(self) -> "_LiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._record.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self._record)
        return False

    def set(self, **attrs: Any) -> None:
        """Attach attributes (shown in trace args / profile lines)."""
        self._record.attrs.update(attrs)

    def add(self, key: str, count: int = 1) -> None:
        """Increment a counter attribute."""
        attrs = self._record.attrs
        attrs[key] = attrs.get(key, 0) + count


class _NoopSpan:
    """Shared do-nothing span used while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass

    def add(self, key: str, count: int = 1) -> None:
        pass


_NOOP = _NoopSpan()


class Tracer:
    """Collects one run's span tree; see the module docstring.

    ``epoch`` pins the tracer's time zero to a given ``perf_counter``
    reading.  Pool workers use it (via the parent's :attr:`epoch`) so
    worker-side span timestamps land on the parent's timeline -- on
    Linux ``perf_counter`` is ``CLOCK_MONOTONIC``, which is shared
    across processes of one boot, so the lanes line up in Perfetto.
    """

    def __init__(
        self,
        epoch: Optional[float] = None,
        run_id: Optional[str] = None,
    ) -> None:
        self._t0 = time.perf_counter() if epoch is None else epoch
        self.run_id = run_id
        self.roots: List[SpanRecord] = []
        self._stack: List[SpanRecord] = []
        #: Foreign span lanes adopted from worker processes: (pid, roots).
        self.lanes: List[Tuple[int, List[SpanRecord]]] = []

    @property
    def epoch(self) -> float:
        """The ``perf_counter`` reading this tracer calls time zero."""
        return self._t0

    # -- recording ---------------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6

    def span(self, name: str, **attrs: Any) -> _LiveSpan:
        record = SpanRecord(
            name=name,
            start_us=self._now_us(),
            attrs=dict(attrs),
            rss_before_kb=_peak_rss_kb(),
        )
        if self._stack:
            self._stack[-1].children.append(record)
        else:
            self.roots.append(record)
        self._stack.append(record)
        return _LiveSpan(self, record)

    def _close(self, record: SpanRecord) -> None:
        record.end_us = self._now_us()
        record.rss_after_kb = _peak_rss_kb()
        # ``with`` unwinds strictly LIFO, including through exceptions.
        if self._stack and self._stack[-1] is record:
            self._stack.pop()

    def instant(self, name: str, **attrs: Any) -> None:
        """A zero-duration point event under the current span."""
        now = self._now_us()
        record = SpanRecord(
            name=name, start_us=now, end_us=now, attrs=dict(attrs),
            kind="instant",
        )
        if self._stack:
            self._stack[-1].children.append(record)
        else:
            self.roots.append(record)

    def adopt(self, roots: List[SpanRecord], pid: int) -> None:
        """Merge a worker process's span roots as a separate trace lane.

        The parallel batch executor ships each worker unit's recorded
        :class:`SpanRecord` tree back over the pool boundary and adopts
        it here; the Chrome export emits the lane under the worker's
        ``pid`` so per-worker timelines stay distinguishable.
        """
        if not roots:
            return
        for existing_pid, existing_roots in self.lanes:
            if existing_pid == pid:
                existing_roots.extend(roots)
                return
        self.lanes.append((pid, list(roots)))

    # -- queries -----------------------------------------------------------

    def find(self, name: str) -> List[SpanRecord]:
        """Every recorded span/instant named ``name``, depth-first
        (adopted worker lanes included)."""
        found: List[SpanRecord] = []
        for root in self.roots:
            found.extend(root.find(name))
        for _pid, roots in self.lanes:
            for root in roots:
                found.extend(root.find(name))
        return found

    # -- export ------------------------------------------------------------

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The Chrome ``trace_event`` representation (``B``/``E`` pairs).

        Events come out in depth-first order, so begin/end events nest
        monotonically: every ``E`` closes the most recent open ``B`` --
        the schema ``tests/obs/test_trace.py`` checks.
        """
        pid = os.getpid()
        events: List[Dict[str, Any]] = []

        def emit(record: SpanRecord, pid: int = pid) -> None:
            common = {"name": record.name, "pid": pid, "tid": 1,
                      "cat": record.name.split(".", 1)[0]}
            if record.kind == "instant":
                events.append({
                    **common, "ph": "i", "s": "t",
                    "ts": round(record.start_us, 3),
                    "args": dict(record.attrs),
                })
                return
            events.append({
                **common, "ph": "B", "ts": round(record.start_us, 3),
                "args": dict(record.attrs),
            })
            for child in record.children:
                emit(child, pid)
            events.append({
                **common, "ph": "E", "ts": round(record.end_us, 3),
                "args": {"rss_delta_kb": record.rss_delta_kb},
            })

        for root in self.roots:
            emit(root)
        for worker_pid, roots in self.lanes:
            events.append({
                "ph": "M", "name": "process_name", "pid": worker_pid,
                "tid": 1, "args": {"name": f"regionwiz worker {worker_pid}"},
            })
            for root in roots:
                emit(root, worker_pid)
        trace: Dict[str, Any] = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
        }
        if self.run_id is not None:
            trace["metadata"] = {"run_id": self.run_id}
        return trace

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1)

    def format_tree(self, min_ms: float = 0.0) -> str:
        """The ``--profile`` text tree: one line per span, indented."""
        lines: List[str] = []

        def render(record: SpanRecord, depth: int) -> None:
            if record.kind == "span" and record.duration_ms < min_ms:
                return
            indent = "  " * depth
            attrs = " ".join(
                f"{key}={value}" for key, value in sorted(record.attrs.items())
            )
            if record.kind == "instant":
                lines.append(
                    f"{indent}! {record.name}" + (f"  {attrs}" if attrs else "")
                )
            else:
                rss = (
                    f" +{record.rss_delta_kb}kB"
                    if record.rss_delta_kb else ""
                )
                lines.append(
                    f"{indent}{record.name}  {record.duration_ms:.2f}ms{rss}"
                    + (f"  {attrs}" if attrs else "")
                )
            for child in record.children:
                render(child, depth + 1)

        for root in self.roots:
            render(root, 0)
        for worker_pid, roots in self.lanes:
            lines.append(f"[worker pid={worker_pid}]")
            for root in roots:
                render(root, 1)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The process-global active tracer
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def trace_span(name: str, **attrs: Any):
    """Open a span under the active tracer (no-op when tracing is off)."""
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP
    return tracer.span(name, **attrs)


def trace_instant(name: str, **attrs: Any) -> None:
    """Record a point event under the active tracer (no-op when off)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.instant(name, **attrs)


def tracing() -> bool:
    """Whether a tracer is installed (for guarding costly attr prep)."""
    return _ACTIVE is not None


def current_tracer() -> Optional[Tracer]:
    return _ACTIVE


def install_tracer(tracer: Tracer) -> Optional[Tracer]:
    """Install ``tracer`` as the active tracer; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


def uninstall_tracer(previous: Optional[Tracer] = None) -> None:
    """Restore ``previous`` (default: disable tracing)."""
    global _ACTIVE
    _ACTIVE = previous


@contextmanager
def tracing_to(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install a tracer for the duration of a ``with`` block."""
    tracer = tracer or Tracer()
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        uninstall_tracer(previous)
