"""Trace-replay simulation: re-derive fault verdicts from events alone.

The replay simulator is an interpreter-independent region-liveness state
machine.  It consumes the event stream a
:class:`~repro.runtime.trace.RegionTracer` recorded (or a JSONL trace
file parsed by :func:`~repro.runtime.trace.load_trace`) and rebuilds the
region tree, object liveness, slot graph, and RC external-reference
counts from the events alone — no AST, no interpreter, no
:class:`~repro.runtime.pool.RegionRuntime`.  Each ``region.access``
event gets a verdict (``ok`` / ``dangling``), and every fault the
simulator derives is cross-checked against the ``region.fault`` events
the live runtime logged: :attr:`ReplayResult.consistent` is the claim
that both ends of the pipeline agree on what went wrong.

This is the etanalyzer-style trace-then-simulate architecture: the
trace is the contract, so any consumer (this simulator, future
leak/lifetime analyzers, the warning validator) can re-derive runtime
truth without re-executing the program.

The state machine mirrors the runtime's semantics exactly:

* stores through a dead object fault (``dangling-deref``) and do *not*
  update the slot;
* storing a pointer to a dead object from a non-internal holder faults
  (``dangling-created``);
* loads through a dead object, or of a pointer whose target is dead,
  fault (``dangling-deref``);
* deleting/clearing a region opens a *scope* collecting the dying
  non-internal objects of the whole request; when the request finishes
  (``region.reclaimed``) every live non-internal holder is scanned in
  creation order for pointers into the dead set (``dangling-created``);
  scopes nest because APR cleanups run during reclamation and may
  delete other regions;
* ``region.reclaim`` checks the replayed RC external-reference count:
  a still-referenced region faults (``rc-violation``), and the replayed
  count is cross-checked against the count the runtime observed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

__all__ = ["ReplayRegion", "ReplayObject", "ReplayResult", "replay_trace"]


@dataclass
class ReplayRegion:
    uid: int
    parent: Optional[int]
    name: str = ""
    internal: bool = False
    live: bool = True
    refs: int = 0
    loc: Optional[str] = None


@dataclass
class ReplayObject:
    uid: int
    region: int
    live: bool = True
    internal: bool = False
    loc: Optional[str] = None
    site: str = ""
    # offset -> ("obj", uid) | ("region", uid) | None
    slots: Dict[int, Optional[Tuple[str, int]]] = field(default_factory=dict)


@dataclass
class ReplayResult:
    """What the simulator concluded from one trace."""

    #: One verdict per ``region.access`` event, in trace order:
    #: {op, obj, target, loc, verdict} with verdict "ok" | "dangling".
    verdicts: List[Dict[str, Any]] = field(default_factory=list)
    #: Faults the *simulator* derived from the trace.
    faults: List[Dict[str, Any]] = field(default_factory=list)
    #: Faults the *runtime* logged (``region.fault`` events), verbatim.
    runtime_faults: List[Dict[str, Any]] = field(default_factory=list)
    #: ``file:line`` spans of executed allocation/creation sites — the
    #: dynamic coverage set the validator uses for unobserved/uncovered.
    covered_spans: Set[str] = field(default_factory=set)
    #: Replayed-vs-observed RC count disagreements at reclaim points.
    rc_mismatches: int = 0
    accesses: int = 0
    events: int = 0

    @property
    def dangling(self) -> int:
        return sum(1 for v in self.verdicts if v["verdict"] == "dangling")

    @staticmethod
    def _fault_key(fault: Dict[str, Any]) -> Tuple[Any, Any, Any]:
        return (fault.get("kind"), fault.get("obj"), fault.get("target"))

    @property
    def consistent(self) -> bool:
        """Replay and runtime agree: same fault multiset, RC counts match."""
        if self.rc_mismatches:
            return False
        replayed = Counter(self._fault_key(f) for f in self.faults)
        observed = Counter(self._fault_key(f) for f in self.runtime_faults)
        return replayed == observed


class _Simulator:
    def __init__(self) -> None:
        self.regions: Dict[int, ReplayRegion] = {
            0: ReplayRegion(0, None, name="<root>")
        }
        self.objects: Dict[int, ReplayObject] = {}
        # (region uid, dying object uids) per in-flight delete/clear.
        self.scopes: List[Tuple[int, List[int]]] = []
        self.result = ReplayResult()

    # -- helpers -------------------------------------------------------

    def _fault(
        self,
        kind: str,
        obj: Optional[int],
        target: Optional[int],
        loc: Optional[str],
        target_region: Optional[int] = None,
    ) -> None:
        holder = self.objects.get(obj) if obj is not None else None
        source_span = holder.loc if holder is not None else None
        if target_region is not None:
            region = self.regions.get(target_region)
            target_span = region.loc if region is not None else None
        else:
            victim = self.objects.get(target) if target is not None else None
            target_span = victim.loc if victim is not None else None
        self.result.faults.append(
            {
                "kind": kind,
                "obj": obj,
                "target": target if target_region is None else target_region,
                "source_span": source_span,
                "target_span": target_span,
                "loc": loc,
            }
        )

    def _is_ancestor(self, candidate: int, region: int) -> bool:
        current: Optional[int] = region
        while current is not None:
            if current == candidate:
                return True
            current = self.regions[current].parent
        return False

    def _rc_adjust(
        self, holder: ReplayObject, value: Optional[Tuple[str, int]], delta: int
    ) -> None:
        if self.regions[holder.region].internal:
            return
        if value is None:
            return
        tag, uid = value
        if tag == "obj":
            target_region = self.objects[uid].region
        else:
            target_region = uid
        if target_region == 0:
            return
        if holder.region != target_region and not self._is_ancestor(
            target_region, holder.region
        ):
            self.regions[target_region].refs += delta

    # -- event handlers ------------------------------------------------

    def feed(self, event: Dict[str, Any]) -> None:
        self.result.events += 1
        kind = event.get("kind", "")
        if kind in ("region.create", "region.subregion"):
            uid = event["region"]
            self.regions[uid] = ReplayRegion(
                uid,
                event.get("parent", 0),
                name=event.get("name", ""),
                internal=bool(event.get("internal")),
                loc=event.get("loc"),
            )
            if not event.get("internal") and event.get("loc"):
                self.result.covered_spans.add(event["loc"])
        elif kind == "region.alloc":
            uid = event["obj"]
            self.objects[uid] = ReplayObject(
                uid,
                event.get("region", 0),
                internal=bool(event.get("internal")),
                loc=event.get("loc"),
                site=event.get("site", ""),
            )
            if not event.get("internal") and event.get("loc"):
                self.result.covered_spans.add(event["loc"])
        elif kind == "region.access":
            self._access(event)
        elif kind in ("region.delete", "region.clear"):
            self.scopes.append((event["region"], []))
        elif kind == "region.reclaim":
            self._reclaim(event)
        elif kind == "region.free":
            self._free(event)
        elif kind == "region.dead":
            region = self.regions.get(event["region"])
            if region is not None:
                region.live = False
        elif kind == "region.reclaimed":
            self._reclaimed(event)
        elif kind == "region.fault":
            # Normalize to the simulator's fault shape (the event's own
            # "kind" is region.fault; the fault kind rides in "fault").
            self.result.runtime_faults.append(
                {
                    "kind": event.get("fault"),
                    "obj": event.get("obj"),
                    "target": event.get("target"),
                    "source_span": event.get("source_span"),
                    "target_span": event.get("target_span"),
                    "loc": event.get("loc"),
                    "detail": event.get("detail"),
                }
            )
        # region.cleanup and trace.open carry no replayable state.

    def _access(self, event: Dict[str, Any]) -> None:
        self.result.accesses += 1
        op = event.get("op")
        obj_uid = event["obj"]
        target_uid = event.get("target")
        loc = event.get("loc")
        holder = self.objects.get(obj_uid)
        verdict = "ok"
        if holder is None or not holder.live:
            # Access through a dead object: fault, and (for stores) no
            # slot update — mirroring the runtime's early return.
            verdict = "dangling"
            self._fault("dangling-deref", None, obj_uid, loc)
        elif op == "store":
            target = (
                self.objects.get(target_uid) if target_uid is not None else None
            )
            if (
                target is not None
                and not target.live
                and not self.regions[holder.region].internal
            ):
                verdict = "dangling"
                self._fault("dangling-created", obj_uid, target_uid, loc)
            offset = event.get("offset", 0)
            if target_uid is not None:
                value: Optional[Tuple[str, int]] = ("obj", target_uid)
            elif event.get("target_region") is not None:
                value = ("region", event["target_region"])
            else:
                value = None
            self._rc_adjust(holder, holder.slots.get(offset), -1)
            holder.slots[offset] = value
            self._rc_adjust(holder, value, +1)
        else:  # load
            target = (
                self.objects.get(target_uid) if target_uid is not None else None
            )
            if target is not None and not target.live:
                verdict = "dangling"
                self._fault("dangling-deref", obj_uid, target_uid, loc)
        self.result.verdicts.append(
            {
                "op": op,
                "obj": obj_uid,
                "target": target_uid,
                "loc": loc,
                "verdict": verdict,
            }
        )

    def _reclaim(self, event: Dict[str, Any]) -> None:
        region = self.regions.get(event["region"])
        if region is None:
            return
        observed = event.get("refs")
        if observed is not None and observed != region.refs:
            self.result.rc_mismatches += 1
        if region.refs > 0:
            self._fault(
                "rc-violation", None, None, None, target_region=region.uid
            )

    def _free(self, event: Dict[str, Any]) -> None:
        obj = self.objects.get(event["obj"])
        if obj is None or not obj.live:
            return
        obj.live = False
        for value in obj.slots.values():
            self._rc_adjust(obj, value, -1)
        if not self.regions[obj.region].internal and self.scopes:
            self.scopes[-1][1].append(obj.uid)

    def _reclaimed(self, event: Dict[str, Any]) -> None:
        region_uid = event["region"]
        # The matching scope is normally on top; pop defensively past any
        # mismatched entries (their dying sets fold into nothing).
        dying: List[int] = []
        while self.scopes:
            top_region, top_dying = self.scopes.pop()
            dying = top_dying
            if top_region == region_uid:
                break
        if not dying:
            return
        dead_set = set(dying)
        for holder in self.objects.values():
            if not holder.live or self.regions[holder.region].internal:
                continue
            for value in holder.slots.values():
                if (
                    value is not None
                    and value[0] == "obj"
                    and value[1] in dead_set
                ):
                    self._fault(
                        "dangling-created", holder.uid, value[1], None
                    )


def replay_trace(events: List[Dict[str, Any]]) -> ReplayResult:
    """Replay a region event stream and return the simulator's verdicts.

    ``events`` is either :attr:`RegionTracer.records` or the output of
    :func:`~repro.runtime.trace.load_trace`.
    """
    simulator = _Simulator()
    for event in events:
        simulator.feed(event)
    return simulator.result
