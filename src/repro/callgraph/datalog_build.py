"""Call graph construction expressed as Datalog rules (Section 5.1).

"The algorithm for call graph construction is expressed as Datalog rules
and solved using the bddbddb deductive database over such IR
instructions."  This module is that formulation: IR facts are extracted
into input relations and the ``vF``/``call``/``reach`` computation runs on
the :mod:`repro.datalog` solver (either backend).  The native worklist
builder in :mod:`repro.callgraph.builder` is the production path; a test
cross-checks the two edge-for-edge.

Relations (domains ``I`` call sites, ``F`` functions, ``V`` variables):

* inputs -- ``assign(v2, v1)``, ``assignF(v, f)`` (function-address
  assignment), ``callsite(i, v)`` (indirect callee var), ``direct(i, f)``,
  ``actual(i, k, v)``, ``formal(f, k, v)``, ``retsrc(f, v)``,
  ``retdst(i, v)``, ``inFunc(i, f)``, ``storeF(v)``/``loadDst(v)``
  (escape analysis), ``implicitArg(i, k)``, ``entry(f)``;
* derived -- ``vF(v, f)``, ``call(i, f)``, ``reach(f)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.callgraph.builder import CallGraph
from repro.callgraph.implicit import ImplicitCallRegistry, default_registry
from repro.datalog import Program
from repro.ir import (
    Add,
    Assign,
    Call,
    FuncAddr,
    GLOBAL_INIT,
    IRModule,
    Load,
    Operand,
    Return,
    Store,
    Temp,
    VarOp,
)

__all__ = ["build_call_graph_datalog"]

RULES = """
# Function-pointer propagation along assignments.
vF(v2, f) :- assign(v2, v1), vF(v1, f).
vF(v, f)  :- assignF(v, f).

# Escaped function pointers may be loaded back anywhere.
escaped(f) :- storeF(v), vF(v, f).
vF(v, f)   :- loadDst(v), escaped(f).

# Call edges: direct, and indirect through vF.
call(i, f) :- direct(i, f).
call(i, f) :- callsite(i, v), vF(v, f).

# Interprocedural propagation through resolved edges.
vF(v2, f) :- call(i, g), actual(i, k, v1), formal(g, k, v2), vF(v1, f).
vF(v2, f) :- call(i, g), actualF(i, k, f), formal(g, k, v2).
vF(v2, f) :- call(i, g), retdst(i, v2), retsrc(g, v1), vF(v1, f).
vF(v2, f) :- call(i, g), retdst(i, v2), retsrcF(g, f).

# Implicit calls: the entry-function argument is invoked by the system.
call(i, f) :- call(i, g), implicitAt(g, k), actual(i, k, v), vF(v, f).
call(i, f) :- call(i, g), implicitAt(g, k), actualF(i, k, f).

# Reachability from the program entries.
reach(f) :- entry(f).
reach(g) :- reach(f), inFunc(i, f), call(i, g).
"""


def _collect_facts(module: IRModule, registry: ImplicitCallRegistry):
    """Index the module into dense fact tables."""
    functions: List[str] = sorted(
        set(module.functions) | set(module.prototypes)
    )
    f_index = {name: i for i, name in enumerate(functions)}

    variables: Dict[Tuple[str, str], int] = {}

    def var_id(func: str, operand: Operand) -> Optional[int]:
        if isinstance(operand, Temp):
            key = (func, f"t{operand.id}")
        elif isinstance(operand, VarOp):
            key = ("", operand.name) if operand.kind == "global" else (
                func, operand.name
            )
        else:
            return None
        return variables.setdefault(key, len(variables))

    calls: List[Tuple[str, Call]] = []
    facts: Dict[str, List[Tuple[int, ...]]] = {
        "assign": [], "assignF": [], "callsite": [], "direct": [],
        "actual": [], "actualF": [], "formal": [], "retsrc": [],
        "retsrcF": [], "retdst": [], "inFunc": [], "storeF": [], "loadDst": [],
        "implicitAt": [], "entry": [],
    }

    max_arity = 0
    for fname, instr in module.all_instrs():
        if isinstance(instr, Call):
            calls.append((fname, instr))
            max_arity = max(max_arity, len(instr.args))

    i_index = {instr.uid: i for i, (_, instr) in enumerate(calls)}

    for fname, instr in module.all_instrs():
        if isinstance(instr, Assign) or isinstance(instr, Add):
            src = instr.src if isinstance(instr, Assign) else instr.base
            dst_id = var_id(fname, instr.dst)
            if dst_id is None:
                continue
            if isinstance(src, FuncAddr):
                facts["assignF"].append((dst_id, f_index[src.name]))
            else:
                src_id = var_id(fname, src)
                if src_id is not None:
                    facts["assign"].append((dst_id, src_id))
        elif isinstance(instr, Store):
            if isinstance(instr.src, FuncAddr):
                # Model as a store of a temp holding the function.
                temp = var_id(fname, Temp(10_000_000 + instr.uid))
                facts["assignF"].append((temp, f_index[instr.src.name]))
                facts["storeF"].append((temp,))
            else:
                src_id = var_id(fname, instr.src)
                if src_id is not None:
                    facts["storeF"].append((src_id,))
        elif isinstance(instr, Load):
            dst_id = var_id(fname, instr.dst)
            if dst_id is not None:
                facts["loadDst"].append((dst_id,))

    for fname, instr in calls:
        site = i_index[instr.uid]
        facts["inFunc"].append((site, f_index[fname]))
        if isinstance(instr.callee, FuncAddr):
            facts["direct"].append((site, f_index[instr.callee.name]))
        else:
            callee_id = var_id(fname, instr.callee)
            if callee_id is not None:
                facts["callsite"].append((site, callee_id))
        for position, arg in enumerate(instr.args):
            if isinstance(arg, FuncAddr):
                facts["actualF"].append((site, position, f_index[arg.name]))
            else:
                arg_id = var_id(fname, arg)
                if arg_id is not None:
                    facts["actual"].append((site, position, arg_id))
        if instr.dst is not None:
            dst_id = var_id(fname, instr.dst)
            if dst_id is not None:
                facts["retdst"].append((site, dst_id))

    for name, function in module.functions.items():
        for position, param in enumerate(function.params):
            facts["formal"].append(
                (f_index[name], position, variables.setdefault(
                    (name, param), len(variables)
                ))
            )
            max_arity = max(max_arity, position + 1)
        for instr in function.instrs:
            if isinstance(instr, Return) and instr.src is not None:
                if isinstance(instr.src, FuncAddr):
                    facts["retsrcF"].append(
                        (f_index[name], f_index[instr.src.name])
                    )
                else:
                    src_id = var_id(name, instr.src)
                    if src_id is not None:
                        facts["retsrc"].append((f_index[name], src_id))

    for target, specs in registry.entries.items():
        if target in f_index:
            for spec in specs:
                facts["implicitAt"].append((f_index[target], spec.fn_arg))
                max_arity = max(max_arity, spec.fn_arg + 1)

    return functions, f_index, variables, calls, i_index, facts, max_arity


def build_call_graph_datalog(
    module: IRModule,
    entry: str = "main",
    registry: Optional[ImplicitCallRegistry] = None,
    backend: str = "set",
    stats_out: Optional[List] = None,
) -> CallGraph:
    """Solve the Section 5.1 rules and package the result as a CallGraph.

    When ``stats_out`` is given, the solve's
    :class:`~repro.datalog.SolverStats` is appended to it (the returned
    ``CallGraph`` is a plain dataclass with no slot for telemetry).
    """
    if registry is None:
        registry = default_registry()
    (functions, f_index, variables, calls, i_index, facts, max_arity) = (
        _collect_facts(module, registry)
    )

    program = Program(backend=backend)
    program.domain("F", max(len(functions), 1))
    program.domain("I", max(len(calls), 1))
    program.domain("V", max(len(variables), 1))
    program.domain("K", max(max_arity, 1))
    program.relation("assign", ["V", "V"])
    program.relation("assignF", ["V", "F"])
    program.relation("callsite", ["I", "V"])
    program.relation("direct", ["I", "F"])
    program.relation("actual", ["I", "K", "V"])
    program.relation("actualF", ["I", "K", "F"])
    program.relation("formal", ["F", "K", "V"])
    program.relation("retsrc", ["F", "V"])
    program.relation("retsrcF", ["F", "F"])
    program.relation("retdst", ["I", "V"])
    program.relation("inFunc", ["I", "F"])
    program.relation("storeF", ["V"])
    program.relation("loadDst", ["V"])
    program.relation("implicitAt", ["F", "K"])
    program.relation("entry", ["F"])
    program.relation("vF", ["V", "F"])
    program.relation("escaped", ["F"])
    program.relation("call", ["I", "F"])
    program.relation("reach", ["F"])
    program.rules(RULES)

    for name, tuples in facts.items():
        for values in tuples:
            program.fact(name, *values)
    for root in (entry, GLOBAL_INIT):
        if root in f_index:
            program.fact("entry", f_index[root])

    solution = program.solve()
    if stats_out is not None:
        stats_out.append(solution.stats)

    uid_of_site = {i: instr.uid for (_, instr), i in zip(calls, i_index.values())}
    # (i_index preserves enumeration order, but be explicit:)
    uid_of_site = {i_index[instr.uid]: instr.uid for _, instr in calls}

    edges: Dict[int, set] = {}
    implicit_edges: Dict[int, set] = {}
    implicit_positions = {
        f_index[name]: {spec.fn_arg for spec in specs}
        for name, specs in registry.entries.items()
        if name in f_index
    }
    direct_or_indirect = {
        (site, func) for site, func in solution.tuples("direct")
    }
    vf_solution = solution.tuples("vF")
    vf_by_var: Dict[int, set] = {}
    for var, func in vf_solution:
        vf_by_var.setdefault(var, set()).add(func)
    callsites = dict(solution.tuples("callsite"))
    for site, func in callsites.items():
        for target in vf_by_var.get(func, ()):
            direct_or_indirect.add((site, target))

    for site, func in solution.tuples("call"):
        uid = uid_of_site[site]
        name = functions[func]
        if (site, func) in direct_or_indirect:
            edges.setdefault(uid, set()).add(name)
        else:
            implicit_edges.setdefault(uid, set()).add(name)

    reachable = {functions[f] for (f,) in solution.tuples("reach")}

    vf: Dict[Tuple[str, str], frozenset] = {}
    index_to_key = {index: key for key, index in variables.items()}
    for var, func in vf_solution:
        key = index_to_key[var]
        vf.setdefault(key, set()).add(functions[func])  # type: ignore[arg-type]

    return CallGraph(
        module=module,
        entry=entry,
        edges={uid: frozenset(t) for uid, t in edges.items()},
        implicit_edges={
            uid: frozenset(t) for uid, t in implicit_edges.items()
        },
        reachable=frozenset(reachable),
        vf={key: frozenset(funcs) for key, funcs in vf.items()},
    )
