"""Context-insensitive call graph construction (Section 5.1).

Computes ``call : I x F`` -- for each CALL instruction, the set of possible
target functions -- from three sources:

* **direct calls**: the callee operand is a function address;
* **indirect calls**: the paper's ``vF : V x F`` set, seeded by
  function-address assignments and propagated along intraprocedural
  assignments and interprocedural call/return edges until convergence.
  Function pointers that *escape* into memory (stored through a pointer,
  e.g. into a struct field or a global table) are handled conservatively:
  any value loaded from memory may be any escaped function;
* **implicit calls**: thread-creation and callback-registration functions
  from the :mod:`repro.callgraph.implicit` registry contribute an extra
  edge from the call instruction to the entry-function argument.

Finally a reachability pass from the entry point (plus the synthetic
``_global_init``) prunes functions never called directly or indirectly
from ``main``, exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.callgraph.implicit import ImplicitCallRegistry, default_registry
from repro.obs.trace import trace_span
from repro.util.budget import BudgetMeter
from repro.ir import (
    Add,
    Assign,
    Call,
    FuncAddr,
    GLOBAL_INIT,
    IRModule,
    Load,
    Operand,
    Return,
    Store,
    Temp,
    VarOp,
)

__all__ = ["CallGraph", "build_call_graph"]

# A variable key: (owning function, name).  Globals use owner "".
VarKey = Tuple[str, str]


def _operand_key(func: str, operand: Operand) -> Optional[VarKey]:
    if isinstance(operand, Temp):
        return (func, f"t{operand.id}")
    if isinstance(operand, VarOp):
        if operand.kind == "global":
            return ("", operand.name)
        return (func, operand.name)
    return None


@dataclass
class CallGraph:
    """The result: per-call-site targets plus derived indexes."""

    module: IRModule
    entry: str
    edges: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    implicit_edges: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    reachable: FrozenSet[str] = frozenset()
    vf: Dict[VarKey, FrozenSet[str]] = field(default_factory=dict)

    def targets(self, uid: int) -> FrozenSet[str]:
        """All targets of a call instruction (direct+indirect+implicit)."""
        return self.edges.get(uid, frozenset()) | self.implicit_edges.get(
            uid, frozenset()
        )

    def callers_of(self, name: str) -> List[int]:
        return [
            uid
            for uid, targets in self.edges.items()
            if name in targets
        ] + [
            uid
            for uid, targets in self.implicit_edges.items()
            if name in targets and name not in self.edges.get(uid, frozenset())
        ]

    def successors(self) -> Dict[str, Set[str]]:
        """Function-level successor map over *reachable, defined* functions."""
        result: Dict[str, Set[str]] = {name: set() for name in self.reachable}
        for name in self.reachable:
            function = self.module.functions.get(name)
            if function is None:
                continue
            for call in function.calls():
                for target in self.targets(call.uid):
                    if target in self.reachable:
                        result[name].add(target)
        return result

    @property
    def num_edges(self) -> int:
        return sum(len(t) for t in self.edges.values()) + sum(
            len(t) for t in self.implicit_edges.values()
        )


class _Builder:
    def __init__(
        self,
        module: IRModule,
        entry: str,
        registry: ImplicitCallRegistry,
        meter: Optional[BudgetMeter] = None,
    ) -> None:
        self.module = module
        self.entry = entry
        self.registry = registry
        self.meter = meter
        self.vf: Dict[VarKey, Set[str]] = {}
        self.escaped: Set[str] = set()
        self._load_dsts: Set[VarKey] = set()
        self.edges: Dict[int, Set[str]] = {}
        self.implicit_edges: Dict[int, Set[str]] = {}

    # ------------------------------------------------------------------

    def run(self) -> CallGraph:
        with trace_span("callgraph.fixpoint") as span:
            iterations = 0
            changed = True
            while changed:
                if self.meter is not None:
                    self.meter.checkpoint("call-graph")
                iterations += 1
                changed = False
                changed |= self._propagate_intraprocedural()
                changed |= self._update_call_edges()
                changed |= self._propagate_interprocedural()
            reachable = self._compute_reachable()
            span.set(iterations=iterations, reachable=len(reachable))
        graph = CallGraph(
            module=self.module,
            entry=self.entry,
            edges={uid: frozenset(t) for uid, t in self.edges.items()},
            implicit_edges={
                uid: frozenset(t) for uid, t in self.implicit_edges.items()
            },
            reachable=frozenset(reachable),
            vf={key: frozenset(funcs) for key, funcs in self.vf.items()},
        )
        return graph

    def _funcs_of(self, func: str, operand: Operand) -> Set[str]:
        if isinstance(operand, FuncAddr):
            return {operand.name}
        key = _operand_key(func, operand)
        if key is None:
            return set()
        return self.vf.get(key, set())

    def _add_vf(self, key: VarKey, funcs: Iterable[str]) -> bool:
        bucket = self.vf.setdefault(key, set())
        before = len(bucket)
        bucket.update(funcs)
        return len(bucket) != before

    def _propagate_intraprocedural(self) -> bool:
        changed = False
        for fname, instr in self.module.all_instrs():
            if isinstance(instr, Assign):
                funcs = self._funcs_of(fname, instr.src)
                if funcs:
                    key = _operand_key(fname, instr.dst)
                    if key is not None:
                        changed |= self._add_vf(key, funcs)
            elif isinstance(instr, Add):
                # A pointer-offset copy preserves the function set (covers
                # &table[i]-style indexing of function-pointer arrays).
                funcs = self._funcs_of(fname, instr.base)
                if funcs:
                    key = _operand_key(fname, instr.dst)
                    if key is not None:
                        changed |= self._add_vf(key, funcs)
            elif isinstance(instr, Store):
                funcs = self._funcs_of(fname, instr.src)
                if funcs and not funcs <= self.escaped:
                    self.escaped.update(funcs)
                    changed = True
            elif isinstance(instr, Load):
                key = _operand_key(fname, instr.dst)
                if key is not None:
                    self._load_dsts.add(key)
        # Escaped functions may be loaded back from anywhere.
        if self.escaped:
            for key in self._load_dsts:
                changed |= self._add_vf(key, self.escaped)
        return changed

    def _update_call_edges(self) -> bool:
        changed = False
        for fname, instr in self.module.all_instrs():
            if not isinstance(instr, Call):
                continue
            targets = self.edges.setdefault(instr.uid, set())
            before = len(targets)
            targets.update(self._funcs_of(fname, instr.callee))
            changed |= len(targets) != before
            # Implicit edges from the registry.
            for callee in set(targets):
                positions = self.registry.positions(callee)
                for position in positions:
                    if position < len(instr.args):
                        entry_funcs = self._funcs_of(fname, instr.args[position])
                        if entry_funcs:
                            bucket = self.implicit_edges.setdefault(
                                instr.uid, set()
                            )
                            implicit_before = len(bucket)
                            bucket.update(entry_funcs)
                            changed |= len(bucket) != implicit_before
        return changed

    def _propagate_interprocedural(self) -> bool:
        changed = False
        # Pre-index return sources per function.
        returns: Dict[str, Set[str]] = {}
        for fname, instr in self.module.all_instrs():
            if isinstance(instr, Return) and instr.src is not None:
                funcs = self._funcs_of(fname, instr.src)
                if funcs:
                    returns.setdefault(fname, set()).update(funcs)
        for fname, instr in self.module.all_instrs():
            if not isinstance(instr, Call):
                continue
            for target in self.edges.get(instr.uid, ()):
                function = self.module.functions.get(target)
                if function is None:
                    continue
                # Arguments flow into parameters.
                for position, arg in enumerate(instr.args):
                    if position >= len(function.params):
                        break
                    funcs = self._funcs_of(fname, arg)
                    if funcs:
                        changed |= self._add_vf(
                            (target, function.params[position]), funcs
                        )
                # Return values flow into the call destination.
                if instr.dst is not None and target in returns:
                    key = _operand_key(fname, instr.dst)
                    if key is not None:
                        changed |= self._add_vf(key, returns[target])
        return changed

    def _compute_reachable(self) -> Set[str]:
        roots = [
            name
            for name in (self.entry, GLOBAL_INIT)
            if name in self.module.functions or name in self.module.prototypes
        ]
        seen: Set[str] = set()
        frontier = list(roots)
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            function = self.module.functions.get(name)
            if function is None:
                continue
            for call in function.calls():
                for target in self.edges.get(call.uid, ()):
                    if target not in seen:
                        frontier.append(target)
                for target in self.implicit_edges.get(call.uid, ()):
                    if target not in seen:
                        frontier.append(target)
        return seen


def build_call_graph(
    module: IRModule,
    entry: str = "main",
    registry: Optional[ImplicitCallRegistry] = None,
    meter: Optional[BudgetMeter] = None,
) -> CallGraph:
    """Build the context-insensitive call graph for a module.

    ``meter`` (a started :class:`~repro.util.budget.BudgetMeter`) adds a
    cooperative wall-clock checkpoint to every fixpoint round.
    """
    if registry is None:
        registry = default_registry()
    return _Builder(module, entry, registry, meter).run()
