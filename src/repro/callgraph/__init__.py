"""Call graph construction: direct, indirect, and implicit calls."""

from repro.callgraph.builder import CallGraph, build_call_graph
from repro.callgraph.implicit import ImplicitCallRegistry, default_registry

__all__ = [
    "CallGraph",
    "ImplicitCallRegistry",
    "build_call_graph",
    "default_registry",
]
