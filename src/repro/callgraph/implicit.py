"""Implicit call knowledge (Section 5.1).

"An implicit call such as system callback requires expert knowledge" -- the
paper's example is ``apr_thread_create``, where the entry-function argument
is invoked on a new thread, so RegionWiz adds an extra call edge from the
call instruction to that function.  The registry below carries the same
expert knowledge for the thread-creation functions of the Windows API,
libc (pthreads), and APR, plus APR cleanup registration (the runtime calls
the registered cleanup when the pool is destroyed).

Each entry also records *data flow*: which caller argument is passed to
which parameter of the implicitly-called function, so the pointer analysis
can see, e.g., the registered cleanup receiving its ``data`` pointer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

__all__ = ["ImplicitCallSpec", "ImplicitCallRegistry", "default_registry"]


@dataclass(frozen=True)
class ImplicitCallSpec:
    """One implicit invocation made by a library function.

    ``fn_arg`` is the argument position holding the entry function;
    ``data_flow`` maps caller argument positions to parameters of the
    implicitly-called function.
    """

    fn_arg: int
    data_flow: Tuple[Tuple[int, int], ...] = ()


@dataclass
class ImplicitCallRegistry:
    """Maps a callee name to its implicit invocations."""

    entries: Dict[str, List[ImplicitCallSpec]] = field(default_factory=dict)

    def register(self, function: str, *specs: ImplicitCallSpec) -> None:
        self.entries.setdefault(function, []).extend(specs)

    def register_simple(self, function: str, *fn_args: int) -> None:
        """Entry functions only, no data flow."""
        self.register(
            function, *(ImplicitCallSpec(position) for position in fn_args)
        )

    def specs(self, function: str) -> List[ImplicitCallSpec]:
        return self.entries.get(function, [])

    def positions(self, function: str) -> Tuple[int, ...]:
        return tuple(sorted({s.fn_arg for s in self.specs(function)}))

    def __contains__(self, function: str) -> bool:
        return function in self.entries

    def merged_with(
        self, extra: Mapping[str, Iterable[int]]
    ) -> "ImplicitCallRegistry":
        merged = ImplicitCallRegistry(
            {name: list(specs) for name, specs in self.entries.items()}
        )
        for name, positions in extra.items():
            merged.register_simple(name, *positions)
        return merged


def default_registry() -> ImplicitCallRegistry:
    """Thread creation + cleanup registration for APR, libc, Windows."""
    registry = ImplicitCallRegistry()
    # APR: apr_thread_create(thread**, attr*, entry_fn, data*, pool*)
    # The entry receives (apr_thread_t*, void *data) -> data is param 1.
    registry.register("apr_thread_create", ImplicitCallSpec(2, ((3, 1),)))
    # pthreads: pthread_create(tid*, attr*, start_routine, arg*)
    registry.register("pthread_create", ImplicitCallSpec(2, ((3, 0),)))
    # Windows: CreateThread(sec*, stack, start_routine, param*, flags, id*)
    registry.register("CreateThread", ImplicitCallSpec(2, ((3, 0),)))
    registry.register("_beginthreadex", ImplicitCallSpec(2, ((3, 0),)))
    # APR cleanup: apr_pool_cleanup_register(pool*, data*, plain, child);
    # both cleanups receive the data pointer as their only parameter.
    registry.register(
        "apr_pool_cleanup_register",
        ImplicitCallSpec(2, ((1, 0),)),
        ImplicitCallSpec(3, ((1, 0),)),
    )
    registry.register_simple("atexit", 0)
    registry.register("signal", ImplicitCallSpec(1))
    return registry
