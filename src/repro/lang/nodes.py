"""AST nodes for the C subset.

Expressions carry a ``ctype`` slot filled in by semantic analysis
(:mod:`repro.lang.sema`); the lowerer relies on it for field offsets and
pointer classification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.lang.errors import SourceLocation
from repro.lang.types import CType

__all__ = [
    "Node",
    "Expr",
    "Stmt",
    "Decl",
    "TranslationUnit",
    "StructDef",
    "TypedefDecl",
    "VarDecl",
    "Param",
    "FuncDecl",
    "Block",
    "DeclStmt",
    "ExprStmt",
    "If",
    "While",
    "DoWhile",
    "For",
    "Return",
    "Break",
    "Continue",
    "Ident",
    "IntLit",
    "StrLit",
    "NullLit",
    "Unary",
    "Binary",
    "Assign",
    "Cond",
    "Call",
    "Member",
    "Index",
    "Cast",
    "SizeOf",
]


@dataclass
class Node:
    loc: SourceLocation


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base expression; ``ctype`` is annotated by sema."""

    ctype: Optional[CType] = field(default=None, init=False, compare=False)


@dataclass
class Ident(Expr):
    name: str


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class StrLit(Expr):
    value: str


@dataclass
class NullLit(Expr):
    """The NULL constant (also produced for literal 0 in pointer contexts)."""


@dataclass
class Unary(Expr):
    op: str  # '*', '&', '!', '-', '+', '~'
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # arithmetic/relational/logical operators
    left: Expr
    right: Expr


@dataclass
class Assign(Expr):
    target: Expr
    value: Expr


@dataclass
class Cond(Expr):
    """Ternary conditional ``cond ? then : other``."""

    cond: Expr
    then: Expr
    other: Expr


@dataclass
class Call(Expr):
    func: Expr
    args: List[Expr]


@dataclass
class Member(Expr):
    base: Expr
    name: str
    arrow: bool  # True for '->', False for '.'


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Cast(Expr):
    to: CType
    operand: Expr


@dataclass
class SizeOf(Expr):
    target: Union[CType, Expr]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    stmts: List[Stmt]


@dataclass
class VarDecl(Node):
    type: CType
    name: str
    init: Optional[Expr]
    is_global: bool = False


@dataclass
class DeclStmt(Stmt):
    decl: VarDecl


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    other: Optional[Stmt]


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class For(Stmt):
    init: Optional[Union[Expr, VarDecl]]
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclass
class Return(Stmt):
    value: Optional[Expr]


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Decl(Node):
    pass


@dataclass
class StructDef(Decl):
    name: str
    fields: Optional[List[Tuple[CType, str]]]  # None: forward declaration


@dataclass
class TypedefDecl(Decl):
    name: str
    type: CType


@dataclass
class Param(Node):
    type: CType
    name: Optional[str]


@dataclass
class FuncDecl(Decl):
    ret: CType
    name: str
    params: List[Param]
    varargs: bool
    body: Optional[Block]  # None: prototype only

    @property
    def is_definition(self) -> bool:
        return self.body is not None


@dataclass
class TranslationUnit(Node):
    decls: List[Decl]
