"""C-subset frontend: lexer, parser, types, and semantic analysis."""

from repro.lang.errors import (
    CompileError,
    LexError,
    ParseError,
    SemaError,
    SourceLocation,
)
from repro.lang.parser import Parser, parse
from repro.lang.sema import FunctionInfo, SemaResult, Symbol, analyze

__all__ = [
    "CompileError",
    "FunctionInfo",
    "LexError",
    "ParseError",
    "Parser",
    "SemaError",
    "SemaResult",
    "SourceLocation",
    "Symbol",
    "analyze",
    "parse",
]
