"""Recursive-descent parser for the C subset.

Supports what the RegionWiz corpora need from real-world region code:

* full declarators -- pointers to pointers (``apr_pool_t **newp``),
  function pointers (``typedef apr_status_t (*cleanup_t)(void *)``),
  arrays, parenthesized declarators;
* struct/union tags with forward declarations, typedefs, enums
  (enumerators become integer constants);
* the statement suite (if/while/do/for/return/break/continue, blocks,
  declarations with initializers);
* the expression suite with C precedence, casts, ``sizeof``, ternary
  conditionals, ``->``/``.`` member access, indexing, varargs calls.

Typedef names are tracked during the parse (the classic lexer-feedback
problem), so ``(apr_pool_t *)p`` parses as a cast while ``(x) * p``
parses as multiplication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.lang import nodes
from repro.lang.errors import ParseError, SourceLocation
from repro.lang.lexer import Token, TokenKind, tokenize
from repro.lang.types import (
    ArrayType,
    CHAR,
    CType,
    FunctionType,
    INT,
    IntType,
    LONG,
    PointerType,
    SHORT,
    StructType,
    UNSIGNED,
    VOID,
)

__all__ = ["Parser", "parse"]


_BASE_TYPE_KEYWORDS = frozenset(
    "void char short int long unsigned signed float double".split()
)
_QUALIFIERS = frozenset("const volatile static extern inline".split())

# Operator precedence for the expression climber (binary operators only).
_PRECEDENCE: Dict[str, int] = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = frozenset(["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="])


# Declarator shape tree (typed inside-out; see _apply_declarator).
@dataclass
class _DName:
    name: Optional[str]
    loc: SourceLocation


@dataclass
class _DPtr:
    child: "_DTree"


@dataclass
class _DFunc:
    child: "_DTree"
    params: List[nodes.Param]
    varargs: bool


@dataclass
class _DArr:
    child: "_DTree"
    length: int


_DTree = Union[_DName, _DPtr, _DFunc, _DArr]


class Parser:
    def __init__(self, text: str, filename: str = "<input>") -> None:
        self._tokens = tokenize(text, filename)
        self._pos = 0
        self._typedefs: Dict[str, CType] = {}
        self._structs: Dict[str, StructType] = {}
        self._enum_constants: Dict[str, int] = {}
        self._anon_counter = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind != TokenKind.EOF:
            self._pos += 1
        return token

    def _at(self, value: str) -> bool:
        token = self._peek()
        return token.kind in (TokenKind.PUNCT, TokenKind.KEYWORD) and token.value == value

    def _accept(self, value: str) -> bool:
        if self._at(value):
            self._next()
            return True
        return False

    def _expect(self, value: str) -> Token:
        token = self._peek()
        if not self._at(value):
            raise ParseError(f"expected {value!r}, found {token.value!r}", token.loc)
        return self._next()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind != TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {token.value!r}", token.loc)
        return self._next()

    # ------------------------------------------------------------------
    # Type detection
    # ------------------------------------------------------------------

    def _starts_type(self, offset: int = 0) -> bool:
        token = self._peek(offset)
        if token.kind == TokenKind.KEYWORD:
            return (
                token.value in _BASE_TYPE_KEYWORDS
                or token.value in ("struct", "union", "enum", "typedef")
                or token.value in _QUALIFIERS
            )
        if token.kind == TokenKind.IDENT:
            return token.value in self._typedefs
        return False

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_translation_unit(self) -> nodes.TranslationUnit:
        loc = self._peek().loc
        decls: List[nodes.Decl] = []
        while self._peek().kind != TokenKind.EOF:
            decls.extend(self._parse_top_decl())
        unit = nodes.TranslationUnit(loc, decls)
        unit.enum_constants = dict(self._enum_constants)  # type: ignore[attr-defined]
        unit.structs = dict(self._structs)  # type: ignore[attr-defined]
        return unit

    def _parse_top_decl(self) -> List[nodes.Decl]:
        loc = self._peek().loc
        if self._accept("typedef"):
            return [self._parse_typedef(loc)]
        if self._accept(";"):
            return []
        base, tag_decl = self._parse_decl_specifiers()
        # `struct foo { ... };` or `struct foo;` with no declarator.
        if self._accept(";"):
            return [tag_decl] if tag_decl is not None else []
        results: List[nodes.Decl] = [] if tag_decl is None else [tag_decl]
        first = True
        while True:
            tree = self._parse_declarator()
            name, ctype = self._apply_declarator(tree, base)
            if name is None:
                raise ParseError("declarator requires a name", loc)
            if isinstance(ctype, FunctionType):
                params, varargs = self._declarator_params(tree)
                if first and self._at("{"):
                    body = self._parse_block()
                    results.append(
                        nodes.FuncDecl(loc, ctype.ret, name, params, varargs, body)
                    )
                    return results
                results.append(
                    nodes.FuncDecl(loc, ctype.ret, name, params, varargs, None)
                )
            else:
                init = self._parse_expr_no_comma() if self._accept("=") else None
                results.append(nodes.VarDecl(loc, ctype, name, init, is_global=True))
            first = False
            if self._accept(","):
                continue
            self._expect(";")
            return results

    def _declarator_params(self, tree: _DTree) -> Tuple[List[nodes.Param], bool]:
        """The parameter list of the function declarator attached to the
        name -- the *innermost* _DFunc (``int (*pick(void))(int)`` declares
        pick(void), not pick(int))."""
        node = tree
        last: Optional[_DFunc] = None
        while not isinstance(node, _DName):
            if isinstance(node, _DFunc):
                last = node
            node = node.child
        if last is None:
            raise ParseError("internal: function declarator without params")
        return last.params, last.varargs

    def _parse_typedef(self, loc: SourceLocation) -> nodes.TypedefDecl:
        base, _ = self._parse_decl_specifiers()
        tree = self._parse_declarator()
        name, ctype = self._apply_declarator(tree, base)
        if name is None:
            raise ParseError("typedef requires a name", loc)
        self._expect(";")
        self._typedefs[name] = ctype
        return nodes.TypedefDecl(loc, name, ctype)

    # ------------------------------------------------------------------
    # Declaration specifiers (base type)
    # ------------------------------------------------------------------

    def _parse_decl_specifiers(self) -> Tuple[CType, Optional[nodes.Decl]]:
        """Parse qualifiers + a base type; returns (type, optional tag decl).

        The tag decl is a StructDef when the specifier *defines* a struct,
        so the caller can keep it in the AST.
        """
        words: List[str] = []
        ctype: Optional[CType] = None
        tag_decl: Optional[nodes.Decl] = None
        while True:
            token = self._peek()
            if token.kind == TokenKind.KEYWORD and token.value in _QUALIFIERS:
                self._next()
                continue
            if token.kind == TokenKind.KEYWORD and token.value in _BASE_TYPE_KEYWORDS:
                words.append(token.value)
                self._next()
                continue
            if token.kind == TokenKind.KEYWORD and token.value in ("struct", "union"):
                if words or ctype is not None:
                    raise ParseError("conflicting type specifiers", token.loc)
                ctype, tag_decl = self._parse_struct_specifier()
                continue
            if token.kind == TokenKind.KEYWORD and token.value == "enum":
                if words or ctype is not None:
                    raise ParseError("conflicting type specifiers", token.loc)
                self._parse_enum_specifier()
                ctype = INT
                continue
            if (
                token.kind == TokenKind.IDENT
                and token.value in self._typedefs
                and not words
                and ctype is None
            ):
                # A typedef name is only a specifier if we still need one.
                ctype = self._typedefs[token.value]
                self._next()
                continue
            break
        if ctype is None:
            if not words:
                raise ParseError("expected a type", self._peek().loc)
            ctype = _combine_base_words(words, self._peek().loc)
        return ctype, tag_decl

    def _parse_struct_specifier(self) -> Tuple[CType, Optional[nodes.Decl]]:
        loc = self._peek().loc
        self._next()  # struct / union (unions are laid out like structs here)
        if self._peek().kind == TokenKind.IDENT:
            name = self._next().value
        else:
            self._anon_counter += 1
            name = f"<anon{self._anon_counter}>"
        struct = self._structs.get(name)
        if struct is None:
            struct = StructType(name, loc)
            self._structs[name] = struct
        if not self._at("{"):
            return struct, None
        self._next()  # {
        fields: List[Tuple[CType, str]] = []
        while not self._accept("}"):
            base, _ = self._parse_decl_specifiers()
            while True:
                tree = self._parse_declarator()
                fname, ftype = self._apply_declarator(tree, base)
                if fname is None:
                    raise ParseError("struct field requires a name", loc)
                if isinstance(ftype, FunctionType):
                    raise ParseError(
                        f"field {fname!r} has function type (missing '*'?)", loc
                    )
                fields.append((ftype, fname))
                if not self._accept(","):
                    break
            self._expect(";")
        struct.define([(fname, ftype) for ftype, fname in fields])
        return struct, nodes.StructDef(loc, name, fields)

    def _parse_enum_specifier(self) -> None:
        self._next()  # enum
        if self._peek().kind == TokenKind.IDENT:
            self._next()  # tag (ignored; enums are just ints here)
        if not self._at("{"):
            return
        self._next()
        value = 0
        while not self._accept("}"):
            name_token = self._expect_ident()
            if self._accept("="):
                value_token = self._next()
                if value_token.kind != TokenKind.INT:
                    raise ParseError(
                        "enumerator initializers must be integer literals",
                        value_token.loc,
                    )
                value = int(value_token.value)
            self._enum_constants[name_token.value] = value
            value += 1
            if not self._accept(","):
                self._expect("}")
                break

    # ------------------------------------------------------------------
    # Declarators
    # ------------------------------------------------------------------

    def _parse_declarator(self) -> _DTree:
        if self._accept("*"):
            while self._peek().kind == TokenKind.KEYWORD and self._peek().value in _QUALIFIERS:
                self._next()
            return _DPtr(self._parse_declarator())
        return self._parse_direct_declarator()

    def _parse_direct_declarator(self) -> _DTree:
        token = self._peek()
        node: _DTree
        if token.kind == TokenKind.IDENT and token.value not in self._typedefs:
            self._next()
            node = _DName(token.value, token.loc)
        elif self._at("(") and self._is_parenthesized_declarator():
            self._next()
            node = self._parse_declarator()
            self._expect(")")
        else:
            node = _DName(None, token.loc)  # abstract declarator
        while True:
            if self._at("("):
                self._next()
                params, varargs = self._parse_params()
                self._expect(")")
                node = _DFunc(node, params, varargs)
            elif self._at("["):
                self._next()
                length = 0
                if self._peek().kind == TokenKind.INT:
                    length = int(self._next().value)
                self._expect("]")
                node = _DArr(node, length)
            else:
                return node

    def _is_parenthesized_declarator(self) -> bool:
        """After '(' in declarator position: inner declarator vs params."""
        token = self._peek(1)
        if token.kind == TokenKind.PUNCT and token.value in ("*", "("):
            return True
        if token.kind == TokenKind.IDENT and token.value not in self._typedefs:
            return True
        return False

    def _parse_params(self) -> Tuple[List[nodes.Param], bool]:
        params: List[nodes.Param] = []
        varargs = False
        if self._at(")"):
            return params, varargs
        if self._at("void") and self._peek(1).value == ")":
            self._next()
            return params, varargs
        while True:
            if self._at("..."):
                self._next()
                varargs = True
                break
            loc = self._peek().loc
            base, _ = self._parse_decl_specifiers()
            tree = self._parse_declarator()
            name, ctype = self._apply_declarator(tree, base)
            # Parameter decay: arrays and functions become pointers.
            if isinstance(ctype, ArrayType):
                ctype = PointerType(ctype.element)
            elif isinstance(ctype, FunctionType):
                ctype = PointerType(ctype)
            params.append(nodes.Param(loc, ctype, name))
            if not self._accept(","):
                break
        return params, varargs

    def _apply_declarator(
        self, tree: _DTree, base: CType
    ) -> Tuple[Optional[str], CType]:
        """Resolve a declarator tree against a base type (inside-out rule)."""
        if isinstance(tree, _DName):
            return tree.name, base
        if isinstance(tree, _DPtr):
            return self._apply_declarator(tree.child, PointerType(base))
        if isinstance(tree, _DFunc):
            param_types = tuple(p.type for p in tree.params)
            return self._apply_declarator(
                tree.child, FunctionType(base, param_types, tree.varargs)
            )
        if isinstance(tree, _DArr):
            return self._apply_declarator(tree.child, ArrayType(base, tree.length))
        raise ParseError("internal: unknown declarator node")

    def _parse_type_name(self) -> CType:
        """A type without a name, as in casts and sizeof."""
        base, _ = self._parse_decl_specifiers()
        tree = self._parse_declarator()
        name, ctype = self._apply_declarator(tree, base)
        if name is not None:
            raise ParseError(f"unexpected name {name!r} in type", self._peek().loc)
        return ctype

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _parse_block(self) -> nodes.Block:
        loc = self._expect("{").loc
        stmts: List[nodes.Stmt] = []
        while not self._accept("}"):
            stmts.extend(self._parse_statement())
        return nodes.Block(loc, stmts)

    def _parse_statement(self) -> List[nodes.Stmt]:
        token = self._peek()
        loc = token.loc
        if self._at("{"):
            return [self._parse_block()]
        if self._accept(";"):
            return []
        if self._at("if"):
            return [self._parse_if()]
        if self._at("while"):
            return [self._parse_while()]
        if self._at("do"):
            return [self._parse_do_while()]
        if self._at("for"):
            return [self._parse_for()]
        if self._accept("return"):
            value = None if self._at(";") else self._parse_expr()
            self._expect(";")
            return [nodes.Return(loc, value)]
        if self._accept("break"):
            self._expect(";")
            return [nodes.Break(loc)]
        if self._accept("continue"):
            self._expect(";")
            return [nodes.Continue(loc)]
        if self._starts_type():
            return self._parse_local_declaration()
        expr = self._parse_expr()
        self._expect(";")
        return [nodes.ExprStmt(loc, expr)]

    def _parse_local_declaration(self) -> List[nodes.Stmt]:
        loc = self._peek().loc
        base, _ = self._parse_decl_specifiers()
        stmts: List[nodes.Stmt] = []
        if self._accept(";"):
            return stmts  # bare struct/enum tag declaration
        if self._accept("typedef"):
            raise ParseError("typedef must appear at file scope", loc)
        while True:
            tree = self._parse_declarator()
            name, ctype = self._apply_declarator(tree, base)
            if name is None:
                raise ParseError("declaration requires a name", loc)
            if isinstance(ctype, FunctionType):
                # Local prototype: the function is resolved globally,
                # so the declaration produces no statement.
                pass
            else:
                init = self._parse_expr_no_comma() if self._accept("=") else None
                stmts.append(
                    nodes.DeclStmt(loc, nodes.VarDecl(loc, ctype, name, init))
                )
            if self._accept(","):
                continue
            self._expect(";")
            return stmts

    def _parse_if(self) -> nodes.If:
        loc = self._expect("if").loc
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        then = _as_single(self._parse_statement(), loc)
        other = None
        if self._accept("else"):
            other = _as_single(self._parse_statement(), loc)
        return nodes.If(loc, cond, then, other)

    def _parse_while(self) -> nodes.While:
        loc = self._expect("while").loc
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        body = _as_single(self._parse_statement(), loc)
        return nodes.While(loc, cond, body)

    def _parse_do_while(self) -> nodes.DoWhile:
        loc = self._expect("do").loc
        body = _as_single(self._parse_statement(), loc)
        self._expect("while")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        self._expect(";")
        return nodes.DoWhile(loc, body, cond)

    def _parse_for(self) -> nodes.For:
        loc = self._expect("for").loc
        self._expect("(")
        init: Optional[Union[nodes.Expr, nodes.VarDecl]] = None
        if not self._at(";"):
            if self._starts_type():
                base, _ = self._parse_decl_specifiers()
                tree = self._parse_declarator()
                name, ctype = self._apply_declarator(tree, base)
                if name is None:
                    raise ParseError("declaration requires a name", loc)
                value = self._parse_expr_no_comma() if self._accept("=") else None
                init = nodes.VarDecl(loc, ctype, name, value)
            else:
                init = self._parse_expr()
        self._expect(";")
        cond = None if self._at(";") else self._parse_expr()
        self._expect(";")
        step = None if self._at(")") else self._parse_expr()
        self._expect(")")
        body = _as_single(self._parse_statement(), loc)
        return nodes.For(loc, init, cond, step, body)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _parse_expr(self) -> nodes.Expr:
        expr = self._parse_expr_no_comma()
        while self._at(","):
            loc = self._next().loc
            right = self._parse_expr_no_comma()
            # The comma operator evaluates both; model as a binary op.
            expr = nodes.Binary(loc, ",", expr, right)
        return expr

    def _parse_expr_no_comma(self) -> nodes.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> nodes.Expr:
        left = self._parse_conditional()
        token = self._peek()
        if token.kind == TokenKind.PUNCT and token.value in _ASSIGN_OPS:
            self._next()
            right = self._parse_assignment()
            if token.value == "=":
                return nodes.Assign(token.loc, left, right)
            # Compound assignment desugars to load-op-store.
            op = token.value[:-1]
            return nodes.Assign(
                token.loc, left, nodes.Binary(token.loc, op, left, right)
            )
        return left

    def _parse_conditional(self) -> nodes.Expr:
        cond = self._parse_binary(1)
        if not self._at("?"):
            return cond
        loc = self._next().loc
        then = self._parse_expr()
        self._expect(":")
        other = self._parse_conditional()
        return nodes.Cond(loc, cond, then, other)

    def _parse_binary(self, min_precedence: int) -> nodes.Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind != TokenKind.PUNCT:
                return left
            precedence = _PRECEDENCE.get(token.value)
            if precedence is None or precedence < min_precedence:
                return left
            self._next()
            right = self._parse_binary(precedence + 1)
            left = nodes.Binary(token.loc, token.value, left, right)

    def _parse_unary(self) -> nodes.Expr:
        token = self._peek()
        loc = token.loc
        if token.kind == TokenKind.PUNCT and token.value in ("*", "&", "!", "-", "+", "~"):
            self._next()
            return nodes.Unary(loc, token.value, self._parse_unary())
        if token.kind == TokenKind.PUNCT and token.value in ("++", "--"):
            self._next()
            target = self._parse_unary()
            # ++x desugars to x = x + 1 (value semantics suffice here).
            op = "+" if token.value == "++" else "-"
            return nodes.Assign(
                loc, target, nodes.Binary(loc, op, target, nodes.IntLit(loc, 1))
            )
        if self._at("sizeof"):
            self._next()
            if self._at("(") and self._starts_type(1):
                self._next()
                ctype = self._parse_type_name()
                self._expect(")")
                return nodes.SizeOf(loc, ctype)
            return nodes.SizeOf(loc, self._parse_unary())
        if self._at("(") and self._starts_type(1):
            self._next()
            ctype = self._parse_type_name()
            self._expect(")")
            return nodes.Cast(loc, ctype, self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> nodes.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if self._at("("):
                self._next()
                args: List[nodes.Expr] = []
                if not self._at(")"):
                    args.append(self._parse_expr_no_comma())
                    while self._accept(","):
                        args.append(self._parse_expr_no_comma())
                self._expect(")")
                expr = nodes.Call(token.loc, expr, args)
            elif self._at("->"):
                self._next()
                name = self._expect_ident().value
                expr = nodes.Member(token.loc, expr, name, arrow=True)
            elif self._at("."):
                self._next()
                name = self._expect_ident().value
                expr = nodes.Member(token.loc, expr, name, arrow=False)
            elif self._at("["):
                self._next()
                index = self._parse_expr()
                self._expect("]")
                expr = nodes.Index(token.loc, expr, index)
            elif self._at("++") or self._at("--"):
                op_token = self._next()
                op = "+" if op_token.value == "++" else "-"
                # x++ as a statement-level desugar (value not preserved,
                # which the analysis never needs).
                expr = nodes.Assign(
                    op_token.loc,
                    expr,
                    nodes.Binary(op_token.loc, op, expr, nodes.IntLit(op_token.loc, 1)),
                )
            else:
                return expr

    def _parse_primary(self) -> nodes.Expr:
        token = self._peek()
        loc = token.loc
        if token.kind == TokenKind.INT:
            self._next()
            return nodes.IntLit(loc, int(token.value))
        if token.kind == TokenKind.STRING:
            self._next()
            value = token.value
            # Adjacent string literals concatenate.
            while self._peek().kind == TokenKind.STRING:
                value += self._next().value
            return nodes.StrLit(loc, value)
        if token.kind == TokenKind.IDENT:
            self._next()
            if token.value == "NULL":
                return nodes.NullLit(loc)
            if token.value in self._enum_constants:
                return nodes.IntLit(loc, self._enum_constants[token.value])
            return nodes.Ident(loc, token.value)
        if self._accept("("):
            expr = self._parse_expr()
            self._expect(")")
            return expr
        raise ParseError(f"unexpected token {token.value!r}", loc)


def _as_single(stmts: List[nodes.Stmt], loc: SourceLocation) -> nodes.Stmt:
    if len(stmts) == 1:
        return stmts[0]
    return nodes.Block(loc, stmts)


def _combine_base_words(words: List[str], loc: SourceLocation) -> CType:
    key = frozenset(words)
    signed = "unsigned" not in key
    if "void" in key:
        return VOID
    if "char" in key:
        return CHAR if signed else IntType("unsigned char", 1, signed=False)
    if "short" in key:
        return SHORT if signed else IntType("unsigned short", 2, signed=False)
    if "long" in key or "double" in key:
        return LONG if signed else IntType("unsigned long", 8, signed=False)
    if "float" in key:
        return INT  # floats are opaque scalars to the analysis
    if "int" in key or "signed" in key:
        return INT if signed else UNSIGNED
    if key == {"unsigned"}:
        return UNSIGNED
    raise ParseError(f"unsupported type specifier {' '.join(words)!r}", loc)


def parse(text: str, filename: str = "<input>") -> nodes.TranslationUnit:
    """Parse a translation unit from source text."""
    return Parser(text, filename).parse_translation_unit()
