"""Semantic analysis: name resolution and type annotation.

Walks the AST, resolves every identifier to a :class:`Symbol` (attached as
``expr.symbol``), and fills in ``expr.ctype`` on every expression.  The
checker is deliberately lenient about conversions -- the analysis targets
weakly-typed C, and RegionWiz explicitly "handles unsafe typecasts
including casts between integers and pointers" (Section 5.5) -- but it is
strict about the things the analysis depends on: unresolved names, unknown
struct fields, and calls through non-function values are errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.lang import nodes
from repro.lang.errors import SemaError
from repro.lang.types import (
    ArrayType,
    CHAR_PTR,
    CType,
    FunctionType,
    INT,
    PointerType,
    SIZE_T,
    StructType,
    VOID,
    VOID_PTR,
)

__all__ = ["Symbol", "FunctionInfo", "SemaResult", "analyze"]


@dataclass(frozen=True)
class Symbol:
    """A resolved name.  ``uid`` disambiguates shadowed locals."""

    name: str
    ctype: CType
    kind: str  # 'local' | 'param' | 'global' | 'func'
    uid: int

    @property
    def ir_name(self) -> str:
        if self.kind in ("global", "func"):
            return self.name
        return f"{self.name}.{self.uid}"


@dataclass
class FunctionInfo:
    """Per-function sema output: the decl plus its resolved symbols."""

    decl: nodes.FuncDecl
    params: List[Symbol]
    locals: List[Symbol] = field(default_factory=list)


@dataclass
class SemaResult:
    unit: nodes.TranslationUnit
    globals: Dict[str, Symbol]
    functions: Dict[str, FunctionInfo]
    prototypes: Dict[str, nodes.FuncDecl]

    def function_type(self, name: str) -> Optional[FunctionType]:
        info = self.functions.get(name)
        if info is not None:
            decl = info.decl
        elif name in self.prototypes:
            decl = self.prototypes[name]
        else:
            return None
        return FunctionType(
            decl.ret, tuple(p.type for p in decl.params), decl.varargs
        )


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.names: Dict[str, Symbol] = {}

    def define(self, symbol: Symbol) -> None:
        self.names[symbol.name] = symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class _Analyzer:
    def __init__(self, unit: nodes.TranslationUnit) -> None:
        self.unit = unit
        self.globals: Dict[str, Symbol] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.prototypes: Dict[str, nodes.FuncDecl] = {}
        self._uid = 0

    def _fresh_uid(self) -> int:
        self._uid += 1
        return self._uid

    # ------------------------------------------------------------------

    def run(self) -> SemaResult:
        # Pass 1: collect globals so forward references resolve.
        for decl in self.unit.decls:
            if isinstance(decl, nodes.FuncDecl):
                ftype = FunctionType(
                    decl.ret, tuple(p.type for p in decl.params), decl.varargs
                )
                self.globals[decl.name] = Symbol(decl.name, ftype, "func", 0)
                if decl.is_definition:
                    if decl.name in self.functions:
                        raise SemaError(
                            f"function {decl.name!r} redefined", decl.loc
                        )
                    self.functions[decl.name] = FunctionInfo(decl, [])
                else:
                    self.prototypes.setdefault(decl.name, decl)
            elif isinstance(decl, nodes.VarDecl):
                self.globals[decl.name] = Symbol(
                    decl.name, decl.type, "global", 0
                )
        # Pass 2: analyze bodies and global initializers.
        for decl in self.unit.decls:
            if isinstance(decl, nodes.FuncDecl) and decl.is_definition:
                self._analyze_function(self.functions[decl.name])
            elif isinstance(decl, nodes.VarDecl) and decl.init is not None:
                scope = _Scope()
                for symbol in self.globals.values():
                    scope.define(symbol)
                self._expr(decl.init, scope)
        return SemaResult(self.unit, self.globals, self.functions, self.prototypes)

    def _analyze_function(self, info: FunctionInfo) -> None:
        scope = _Scope()
        for symbol in self.globals.values():
            scope.define(symbol)
        function_scope = _Scope(scope)
        for param in info.decl.params:
            if param.name is None:
                raise SemaError(
                    f"parameter of {info.decl.name!r} needs a name in"
                    " definitions",
                    param.loc,
                )
            symbol = Symbol(param.name, param.type, "param", self._fresh_uid())
            function_scope.define(symbol)
            info.params.append(symbol)
        assert info.decl.body is not None
        self._block(info.decl.body, function_scope, info)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _block(self, block: nodes.Block, scope: _Scope, info: FunctionInfo) -> None:
        inner = _Scope(scope)
        for stmt in block.stmts:
            self._stmt(stmt, inner, info)

    def _stmt(self, stmt: nodes.Stmt, scope: _Scope, info: FunctionInfo) -> None:
        if isinstance(stmt, nodes.Block):
            self._block(stmt, scope, info)
        elif isinstance(stmt, nodes.DeclStmt):
            self._declare_local(stmt.decl, scope, info)
        elif isinstance(stmt, nodes.ExprStmt):
            self._expr(stmt.expr, scope)
        elif isinstance(stmt, nodes.If):
            self._expr(stmt.cond, scope)
            self._stmt(stmt.then, _Scope(scope), info)
            if stmt.other is not None:
                self._stmt(stmt.other, _Scope(scope), info)
        elif isinstance(stmt, nodes.While):
            self._expr(stmt.cond, scope)
            self._stmt(stmt.body, _Scope(scope), info)
        elif isinstance(stmt, nodes.DoWhile):
            self._stmt(stmt.body, _Scope(scope), info)
            self._expr(stmt.cond, scope)
        elif isinstance(stmt, nodes.For):
            loop_scope = _Scope(scope)
            if isinstance(stmt.init, nodes.VarDecl):
                self._declare_local(stmt.init, loop_scope, info)
            elif stmt.init is not None:
                self._expr(stmt.init, loop_scope)
            if stmt.cond is not None:
                self._expr(stmt.cond, loop_scope)
            if stmt.step is not None:
                self._expr(stmt.step, loop_scope)
            self._stmt(stmt.body, _Scope(loop_scope), info)
        elif isinstance(stmt, nodes.Return):
            if stmt.value is not None:
                self._expr(stmt.value, scope)
        elif isinstance(stmt, (nodes.Break, nodes.Continue)):
            pass
        else:
            raise SemaError(f"internal: unknown statement {type(stmt).__name__}")

    def _declare_local(
        self, decl: nodes.VarDecl, scope: _Scope, info: FunctionInfo
    ) -> None:
        if isinstance(decl.type, StructType) and not decl.type.is_complete:
            raise SemaError(
                f"variable {decl.name!r} has incomplete type {decl.type}",
                decl.loc,
            )
        if decl.init is not None:
            self._expr(decl.init, scope)
        symbol = Symbol(decl.name, decl.type, "local", self._fresh_uid())
        scope.define(symbol)
        info.locals.append(symbol)
        decl.symbol = symbol  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _expr(self, expr: nodes.Expr, scope: _Scope) -> CType:
        ctype = self._expr_inner(expr, scope)
        expr.ctype = ctype
        return ctype

    def _expr_inner(self, expr: nodes.Expr, scope: _Scope) -> CType:
        if isinstance(expr, nodes.IntLit):
            return INT
        if isinstance(expr, nodes.StrLit):
            return CHAR_PTR
        if isinstance(expr, nodes.NullLit):
            return VOID_PTR
        if isinstance(expr, nodes.Ident):
            symbol = scope.lookup(expr.name)
            if symbol is None:
                raise SemaError(f"undeclared identifier {expr.name!r}", expr.loc)
            expr.symbol = symbol  # type: ignore[attr-defined]
            return symbol.ctype
        if isinstance(expr, nodes.Unary):
            operand = self._expr(expr.operand, scope)
            if expr.op == "*":
                if not operand.is_pointerlike:
                    raise SemaError(
                        f"cannot dereference value of type {operand}", expr.loc
                    )
                return operand.pointee()
            if expr.op == "&":
                return PointerType(operand)
            if expr.op in ("!", "~"):
                return INT
            return operand  # unary +/-
        if isinstance(expr, nodes.Binary):
            left = self._expr(expr.left, scope)
            right = self._expr(expr.right, scope)
            if expr.op == ",":
                return right
            if expr.op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
                return INT
            # Pointer arithmetic keeps the pointer type.
            if left.is_pointerlike:
                return left if not isinstance(left, ArrayType) else PointerType(left.element)
            if right.is_pointerlike:
                return right if not isinstance(right, ArrayType) else PointerType(right.element)
            return left
        if isinstance(expr, nodes.Assign):
            target = self._expr(expr.target, scope)
            self._expr(expr.value, scope)
            self._check_lvalue(expr.target)
            return target
        if isinstance(expr, nodes.Cond):
            self._expr(expr.cond, scope)
            then = self._expr(expr.then, scope)
            other = self._expr(expr.other, scope)
            return other if then.is_void else then
        if isinstance(expr, nodes.Call):
            return self._call(expr, scope)
        if isinstance(expr, nodes.Member):
            return self._member(expr, scope)
        if isinstance(expr, nodes.Index):
            base = self._expr(expr.base, scope)
            self._expr(expr.index, scope)
            if not base.is_pointerlike:
                raise SemaError(f"cannot index value of type {base}", expr.loc)
            return base.pointee()
        if isinstance(expr, nodes.Cast):
            self._expr(expr.operand, scope)
            return expr.to
        if isinstance(expr, nodes.SizeOf):
            if isinstance(expr.target, nodes.Expr):
                self._expr(expr.target, scope)
            return SIZE_T
        raise SemaError(f"internal: unknown expression {type(expr).__name__}")

    def _call(self, expr: nodes.Call, scope: _Scope) -> CType:
        callee = self._expr(expr.func, scope)
        for arg in expr.args:
            self._expr(arg, scope)
        ftype: Optional[FunctionType] = None
        if isinstance(callee, FunctionType):
            ftype = callee
        elif isinstance(callee, PointerType) and isinstance(
            callee.target, FunctionType
        ):
            ftype = callee.target
        elif callee.is_pointerlike or callee.is_void:
            # Call through void* / unknown pointer: permitted (weakly
            # typed); the result is unknown, modeled as void*.
            return VOID_PTR
        if ftype is None:
            raise SemaError(f"called object has type {callee}", expr.loc)
        required = len(ftype.params)
        if len(expr.args) < required or (
            len(expr.args) > required and not ftype.varargs
        ):
            raise SemaError(
                f"call expects {required}{'+' if ftype.varargs else ''}"
                f" arguments, got {len(expr.args)}",
                expr.loc,
            )
        return ftype.ret

    def _member(self, expr: nodes.Member, scope: _Scope) -> CType:
        base = self._expr(expr.base, scope)
        if expr.arrow:
            if not base.is_pointerlike:
                raise SemaError(
                    f"'->' on non-pointer type {base}", expr.loc
                )
            base = base.pointee()
        if not isinstance(base, StructType):
            raise SemaError(
                f"member access on non-struct type {base}", expr.loc
            )
        return base.field(expr.name).type

    def _check_lvalue(self, expr: nodes.Expr) -> None:
        if isinstance(expr, (nodes.Ident, nodes.Member, nodes.Index)):
            return
        if isinstance(expr, nodes.Unary) and expr.op == "*":
            return
        if isinstance(expr, nodes.Cast):
            self._check_lvalue(expr.operand)
            return
        raise SemaError("assignment target is not an lvalue", expr.loc)


def analyze(unit: nodes.TranslationUnit) -> SemaResult:
    """Resolve names and annotate types on a parsed translation unit."""
    return _Analyzer(unit).run()
