"""A C pretty-printer for the AST.

Emits parseable C-subset source from a (possibly transformed) AST.  Used
by the parser round-trip property test (parse . print . parse is a
fixpoint up to locations) and handy for corpus minimization and debugging
generated workloads.
"""

from __future__ import annotations

from typing import List, Union

from repro.lang import nodes
from repro.lang.types import (
    ArrayType,
    CType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    VoidType,
)

__all__ = ["print_type", "print_expr", "print_stmt", "print_unit"]

_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


def print_type(ctype: CType, name: str = "") -> str:
    """Render a declaration of ``name`` with type ``ctype`` (C's
    inside-out declarator syntax)."""
    return _declare(ctype, name).strip()


def _declare(ctype: CType, inner: str) -> str:
    if isinstance(ctype, PointerType):
        target = ctype.target
        decorated = f"*{inner}"
        if isinstance(target, (FunctionType, ArrayType)):
            decorated = f"({decorated})"
        return _declare(target, decorated)
    if isinstance(ctype, ArrayType):
        return _declare(ctype.element, f"{inner}[{ctype.length}]")
    if isinstance(ctype, FunctionType):
        params = ", ".join(_declare(p, "") .strip() for p in ctype.params)
        if ctype.varargs:
            params = f"{params}, ..." if params else "..."
        if not params:
            params = "void"
        return _declare(ctype.ret, f"{inner}({params})")
    if isinstance(ctype, StructType):
        return f"struct {ctype.name} {inner}"
    if isinstance(ctype, (IntType, VoidType)):
        return f"{ctype} {inner}"
    raise TypeError(f"cannot print type {ctype!r}")


def print_expr(expr: nodes.Expr, parent_prec: int = 0) -> str:
    text, prec = _expr(expr)
    if prec < parent_prec:
        return f"({text})"
    return text


def _expr(expr: nodes.Expr):
    if isinstance(expr, nodes.IntLit):
        return str(expr.value), 99
    if isinstance(expr, nodes.StrLit):
        escaped = (
            expr.value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\t", "\\t")
            .replace("\0", "\\0")
            .replace("\r", "\\r")
        )
        return f'"{escaped}"', 99
    if isinstance(expr, nodes.NullLit):
        return "NULL", 99
    if isinstance(expr, nodes.Ident):
        return expr.name, 99
    if isinstance(expr, nodes.Unary):
        operand = print_expr(expr.operand, 11)
        return f"{expr.op}{operand}", 11
    if isinstance(expr, nodes.Binary):
        prec = _PRECEDENCE.get(expr.op, 0)
        left = print_expr(expr.left, prec)
        right = print_expr(expr.right, prec + 1)
        return f"{left} {expr.op} {right}", prec
    if isinstance(expr, nodes.Assign):
        target = print_expr(expr.target, 1)
        value = print_expr(expr.value, 0)
        return f"{target} = {value}", 0
    if isinstance(expr, nodes.Cond):
        cond = print_expr(expr.cond, 1)
        then = print_expr(expr.then, 0)
        other = print_expr(expr.other, 0)
        return f"{cond} ? {then} : {other}", 0
    if isinstance(expr, nodes.Call):
        func = print_expr(expr.func, 12)
        args = ", ".join(print_expr(a, 0) for a in expr.args)
        return f"{func}({args})", 12
    if isinstance(expr, nodes.Member):
        base = print_expr(expr.base, 12)
        op = "->" if expr.arrow else "."
        return f"{base}{op}{expr.name}", 12
    if isinstance(expr, nodes.Index):
        base = print_expr(expr.base, 12)
        return f"{base}[{print_expr(expr.index, 0)}]", 12
    if isinstance(expr, nodes.Cast):
        operand = print_expr(expr.operand, 11)
        return f"({print_type(expr.to)}){operand}", 11
    if isinstance(expr, nodes.SizeOf):
        target = expr.target
        if isinstance(target, CType):
            return f"sizeof({print_type(target)})", 11
        return f"sizeof({print_expr(target, 0)})", 11
    raise TypeError(f"cannot print expression {expr!r}")


def print_stmt(stmt: nodes.Stmt, indent: int = 0) -> str:
    pad = "    " * indent
    if isinstance(stmt, nodes.Block):
        inner = "\n".join(print_stmt(s, indent + 1) for s in stmt.stmts)
        return f"{pad}{{\n{inner}\n{pad}}}" if inner else f"{pad}{{ }}"
    if isinstance(stmt, nodes.DeclStmt):
        return f"{pad}{_print_var_decl(stmt.decl)};"
    if isinstance(stmt, nodes.ExprStmt):
        return f"{pad}{print_expr(stmt.expr)};"
    if isinstance(stmt, nodes.If):
        text = f"{pad}if ({print_expr(stmt.cond)})\n"
        text += print_stmt(_as_block(stmt.then), indent)
        if stmt.other is not None:
            text += f"\n{pad}else\n"
            text += print_stmt(_as_block(stmt.other), indent)
        return text
    if isinstance(stmt, nodes.While):
        return (
            f"{pad}while ({print_expr(stmt.cond)})\n"
            + print_stmt(_as_block(stmt.body), indent)
        )
    if isinstance(stmt, nodes.DoWhile):
        return (
            f"{pad}do\n"
            + print_stmt(_as_block(stmt.body), indent)
            + f"\n{pad}while ({print_expr(stmt.cond)});"
        )
    if isinstance(stmt, nodes.For):
        if isinstance(stmt.init, nodes.VarDecl):
            init = _print_var_decl(stmt.init)
        elif stmt.init is not None:
            init = print_expr(stmt.init)
        else:
            init = ""
        cond = print_expr(stmt.cond) if stmt.cond is not None else ""
        step = print_expr(stmt.step) if stmt.step is not None else ""
        return (
            f"{pad}for ({init}; {cond}; {step})\n"
            + print_stmt(_as_block(stmt.body), indent)
        )
    if isinstance(stmt, nodes.Return):
        if stmt.value is None:
            return f"{pad}return;"
        return f"{pad}return {print_expr(stmt.value)};"
    if isinstance(stmt, nodes.Break):
        return f"{pad}break;"
    if isinstance(stmt, nodes.Continue):
        return f"{pad}continue;"
    raise TypeError(f"cannot print statement {stmt!r}")


def _as_block(stmt: nodes.Stmt) -> nodes.Block:
    if isinstance(stmt, nodes.Block):
        return stmt
    return nodes.Block(stmt.loc, [stmt])


def _print_var_decl(decl: nodes.VarDecl) -> str:
    text = print_type(decl.type, decl.name)
    if decl.init is not None:
        text += f" = {print_expr(decl.init)}"
    return text


def print_unit(unit: nodes.TranslationUnit) -> str:
    """Render a whole translation unit back to C source."""
    chunks: List[str] = []
    for decl in unit.decls:
        if isinstance(decl, nodes.StructDef):
            if decl.fields is None:
                chunks.append(f"struct {decl.name};")
            else:
                fields = "\n".join(
                    f"    {print_type(ftype, fname)};"
                    for ftype, fname in decl.fields
                )
                chunks.append(f"struct {decl.name} {{\n{fields}\n}};")
        elif isinstance(decl, nodes.TypedefDecl):
            chunks.append(f"typedef {print_type(decl.type, decl.name)};")
        elif isinstance(decl, nodes.VarDecl):
            chunks.append(f"{_print_var_decl(decl)};")
        elif isinstance(decl, nodes.FuncDecl):
            params = ", ".join(
                print_type(p.type, p.name or "") for p in decl.params
            )
            if decl.varargs:
                params = f"{params}, ..." if params else "..."
            if not params:
                params = "void"
            signature = print_type(decl.ret, f"{decl.name}({params})")
            if decl.body is None:
                chunks.append(f"{signature};")
            else:
                chunks.append(f"{signature}\n{print_stmt(decl.body)}")
        else:
            raise TypeError(f"cannot print declaration {decl!r}")
    return "\n\n".join(chunks) + "\n"
