"""C types and struct layout for the analysis frontend.

RegionWiz is field-sensitive via *byte offsets* rather than symbolic field
names ("we use offset values instead of symbolic names for fields", Section
5.5), so the type system's main job is to compute a realistic,
machine-dependent struct layout.  The layout model is LP64 (pointers and
``long`` 8 bytes, ``int`` 4, natural alignment with padding), matching the
paper's example where ``tm.tm_wday`` lives at offset 24.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lang.errors import SemaError, SourceLocation

__all__ = [
    "CType",
    "VoidType",
    "IntType",
    "PointerType",
    "StructType",
    "StructField",
    "FunctionType",
    "ArrayType",
    "VOID",
    "CHAR",
    "SHORT",
    "INT",
    "LONG",
    "UNSIGNED",
    "SIZE_T",
    "VOID_PTR",
    "CHAR_PTR",
]


class CType:
    """Base class for C types."""

    def size(self) -> int:
        raise NotImplementedError

    def align(self) -> int:
        raise NotImplementedError

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_integral(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    @property
    def is_pointerlike(self) -> bool:
        """Pointers and arrays: things that can hold/denote addresses."""
        return isinstance(self, (PointerType, ArrayType))

    def pointee(self) -> "CType":
        raise SemaError(f"cannot dereference non-pointer type {self}")


@dataclass(frozen=True)
class VoidType(CType):
    def size(self) -> int:
        # GNU-style: sizeof(void) == 1, which also makes void* arithmetic
        # in source code harmless to lower.
        return 1

    def align(self) -> int:
        return 1

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(CType):
    name: str
    width: int
    signed: bool = True

    def size(self) -> int:
        return self.width

    def align(self) -> int:
        return self.width

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PointerType(CType):
    target: CType

    def size(self) -> int:
        return 8

    def align(self) -> int:
        return 8

    def pointee(self) -> CType:
        return self.target

    def __str__(self) -> str:
        return f"{self.target}*"


@dataclass(frozen=True)
class ArrayType(CType):
    element: CType
    length: int

    def size(self) -> int:
        return self.element.size() * self.length

    def align(self) -> int:
        return self.element.align()

    def pointee(self) -> CType:
        # Arrays decay to a pointer to their element type.
        return self.element

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"


@dataclass(frozen=True)
class FunctionType(CType):
    ret: CType
    params: Tuple[CType, ...]
    varargs: bool = False

    def size(self) -> int:
        raise SemaError("function types have no size")

    def align(self) -> int:
        raise SemaError("function types have no alignment")

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        if self.varargs:
            params = f"{params}, ..." if params else "..."
        return f"{self.ret}({params})"


@dataclass
class StructField:
    """A named member with its computed byte offset."""

    name: str
    type: CType
    offset: int = -1


class StructType(CType):
    """A (possibly initially incomplete) struct with natural-alignment layout.

    Identity is by declaration, not by name, so two scopes' ``struct foo``
    would be distinct; the subset uses a single global struct namespace.
    """

    def __init__(self, name: str, loc: SourceLocation = SourceLocation.UNKNOWN):
        self.name = name
        self.loc = loc
        self._fields: Optional[List[StructField]] = None
        self._size = 0
        self._align = 1

    @property
    def is_complete(self) -> bool:
        return self._fields is not None

    @property
    def fields(self) -> List[StructField]:
        if self._fields is None:
            raise SemaError(f"struct {self.name} is incomplete", self.loc)
        return self._fields

    def define(self, fields: Sequence[Tuple[str, CType]]) -> None:
        """Complete the struct and compute the LP64 layout."""
        if self._fields is not None:
            raise SemaError(f"struct {self.name} redefined", self.loc)
        laid_out: List[StructField] = []
        offset = 0
        max_align = 1
        seen: Dict[str, bool] = {}
        for name, ctype in fields:
            if name in seen:
                raise SemaError(
                    f"duplicate field {name!r} in struct {self.name}", self.loc
                )
            seen[name] = True
            align = ctype.align()
            max_align = max(max_align, align)
            offset = _round_up(offset, align)
            laid_out.append(StructField(name, ctype, offset))
            offset += ctype.size()
        self._size = _round_up(max(offset, 1), max_align)
        self._align = max_align
        self._fields = laid_out

    def field(self, name: str) -> StructField:
        for member in self.fields:
            if member.name == name:
                return member
        raise SemaError(f"struct {self.name} has no field {name!r}", self.loc)

    def has_field(self, name: str) -> bool:
        return any(member.name == name for member in self.fields)

    def size(self) -> int:
        if self._fields is None:
            raise SemaError(f"sizeof incomplete struct {self.name}", self.loc)
        return self._size

    def align(self) -> int:
        if self._fields is None:
            raise SemaError(f"alignof incomplete struct {self.name}", self.loc)
        return self._align

    def __str__(self) -> str:
        return f"struct {self.name}"

    def __repr__(self) -> str:
        state = "complete" if self.is_complete else "incomplete"
        return f"<StructType {self.name} ({state})>"


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


# Singleton base types (LP64).
VOID = VoidType()
CHAR = IntType("char", 1)
SHORT = IntType("short", 2)
INT = IntType("int", 4)
LONG = IntType("long", 8)
UNSIGNED = IntType("unsigned", 4, signed=False)
SIZE_T = IntType("size_t", 8, signed=False)
VOID_PTR = PointerType(VOID)
CHAR_PTR = PointerType(CHAR)
