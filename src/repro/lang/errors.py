"""Source locations and diagnostics for the C-subset frontend."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SourceLocation", "CompileError", "LexError", "ParseError", "SemaError"]


@dataclass(frozen=True)
class SourceLocation:
    """A point in a source file (1-based line and column)."""

    filename: str
    line: int
    column: int

    UNKNOWN: "SourceLocation" = None  # type: ignore[assignment]

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


SourceLocation.UNKNOWN = SourceLocation("<unknown>", 0, 0)


class CompileError(Exception):
    """Base class for frontend diagnostics carrying a source location."""

    def __init__(self, message: str, loc: SourceLocation = SourceLocation.UNKNOWN):
        super().__init__(f"{loc}: {message}")
        self.message = message
        self.loc = loc


class LexError(CompileError):
    """Invalid characters or malformed literals."""


class ParseError(CompileError):
    """Syntax errors."""


class SemaError(CompileError):
    """Type errors and unresolved names."""
