"""Tokenizer for the C subset.

Handles the full token set the parser needs: identifiers/keywords, integer
literals (decimal/hex/octal/char), string literals with escapes, both
comment styles, and all multi-character operators.  Preprocessor lines are
skipped (the analysis corpora are written pre-expanded; the paper's tool
likewise consumed post-preprocessor IR from Phoenix) -- with one
exception: ``#line N "file"`` / ``# N "file"`` markers update the
location tracking, so drivers that concatenate several source files (the
CLI's multi-file mode) get diagnostics pointing at the original file and
line instead of offsets into the concatenation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.lang.errors import LexError, SourceLocation

__all__ = ["Token", "TokenKind", "tokenize", "KEYWORDS"]


class TokenKind:
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    STRING = "string"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    """
    void char short int long unsigned signed float double
    struct union enum typedef
    if else while do for return break continue
    sizeof static extern const volatile inline goto switch case default
    """.split()
)

# Longest-match-first punctuation table.
_PUNCTS = [
    "...", "<<=", ">>=",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ",", ";", ".", "?", ":",
]

# GNU cpp-style line markers: `#line 5 "f.c"`, `# 5 "f.c" 1`, `#line 5`.
_LINE_MARKER = re.compile(r'#\s*(?:line\s+)?(\d+)(?:\s+"([^"]*)")?')

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
    "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f", "v": "\v",
}


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    loc: SourceLocation

    def __str__(self) -> str:
        return f"{self.kind}({self.value!r})"


class _Cursor:
    def __init__(self, text: str, filename: str) -> None:
        self.text = text
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def loc(self) -> SourceLocation:
        return SourceLocation(self.filename, self.line, self.column)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.text):
                return
            if self.text[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def starts_with(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.pos)


def tokenize(text: str, filename: str = "<input>") -> List[Token]:
    """Tokenize ``text``; the result always ends with an EOF token."""
    cursor = _Cursor(text, filename)
    tokens: List[Token] = []
    while not cursor.at_end():
        ch = cursor.peek()
        if ch in " \t\r\n":
            cursor.advance()
            continue
        if cursor.starts_with("//"):
            while not cursor.at_end() and cursor.peek() != "\n":
                cursor.advance()
            continue
        if cursor.starts_with("/*"):
            loc = cursor.loc()
            cursor.advance(2)
            while not cursor.starts_with("*/"):
                if cursor.at_end():
                    raise LexError("unterminated block comment", loc)
                cursor.advance()
            cursor.advance(2)
            continue
        if ch == "#" and cursor.column == 1:
            # Preprocessor directive: skip the (possibly continued) line,
            # but honor line markers so concatenated inputs keep their
            # original locations.
            directive: List[str] = []
            while not cursor.at_end():
                if cursor.peek() == "\\" and cursor.peek(1) == "\n":
                    cursor.advance(2)
                    continue
                if cursor.peek() == "\n":
                    break
                directive.append(cursor.peek())
                cursor.advance()
            marker = _LINE_MARKER.match("".join(directive))
            if marker is not None:
                # The *next* line is numbered N; the upcoming newline
                # advances the counter by one.
                cursor.line = int(marker.group(1)) - 1
                if marker.group(2) is not None:
                    cursor.filename = marker.group(2)
            continue
        if ch.isalpha() or ch == "_":
            tokens.append(_lex_word(cursor))
            continue
        if ch.isdigit():
            tokens.append(_lex_number(cursor))
            continue
        if ch == '"':
            tokens.append(_lex_string(cursor))
            continue
        if ch == "'":
            tokens.append(_lex_char(cursor))
            continue
        punct = _lex_punct(cursor)
        if punct is not None:
            tokens.append(punct)
            continue
        raise LexError(f"unexpected character {ch!r}", cursor.loc())
    tokens.append(Token(TokenKind.EOF, "", cursor.loc()))
    return tokens


def _lex_word(cursor: _Cursor) -> Token:
    loc = cursor.loc()
    start = cursor.pos
    while not cursor.at_end() and (cursor.peek().isalnum() or cursor.peek() == "_"):
        cursor.advance()
    word = cursor.text[start : cursor.pos]
    kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.IDENT
    return Token(kind, word, loc)


def _lex_number(cursor: _Cursor) -> Token:
    loc = cursor.loc()
    start = cursor.pos
    if cursor.peek() == "0" and cursor.peek(1) in "xX":
        cursor.advance(2)
        while not cursor.at_end() and cursor.peek() in "0123456789abcdefABCDEF":
            cursor.advance()
        text = cursor.text[start : cursor.pos]
        if len(text) == 2:
            raise LexError("malformed hex literal", loc)
        value = int(text, 16)
    else:
        while not cursor.at_end() and cursor.peek().isdigit():
            cursor.advance()
        text = cursor.text[start : cursor.pos]
        value = int(text, 8) if text.startswith("0") and len(text) > 1 else int(text)
    # Swallow integer suffixes (uUlL).
    while not cursor.at_end() and cursor.peek() in "uUlL":
        cursor.advance()
    return Token(TokenKind.INT, str(value), loc)


def _lex_string(cursor: _Cursor) -> Token:
    loc = cursor.loc()
    cursor.advance()  # opening quote
    chars: List[str] = []
    while True:
        if cursor.at_end():
            raise LexError("unterminated string literal", loc)
        ch = cursor.peek()
        if ch == '"':
            cursor.advance()
            break
        if ch == "\\":
            cursor.advance()
            escape = cursor.peek()
            if escape not in _ESCAPES:
                raise LexError(f"unknown escape \\{escape}", cursor.loc())
            chars.append(_ESCAPES[escape])
            cursor.advance()
            continue
        if ch == "\n":
            raise LexError("newline in string literal", loc)
        chars.append(ch)
        cursor.advance()
    return Token(TokenKind.STRING, "".join(chars), loc)


def _lex_char(cursor: _Cursor) -> Token:
    loc = cursor.loc()
    cursor.advance()  # opening quote
    ch = cursor.peek()
    if ch == "\\":
        cursor.advance()
        escape = cursor.peek()
        if escape not in _ESCAPES:
            raise LexError(f"unknown escape \\{escape}", cursor.loc())
        value = ord(_ESCAPES[escape])
        cursor.advance()
    elif ch == "'" or ch == "":
        raise LexError("empty character literal", loc)
    else:
        value = ord(ch)
        cursor.advance()
    if cursor.peek() != "'":
        raise LexError("unterminated character literal", loc)
    cursor.advance()
    return Token(TokenKind.INT, str(value), loc)


def _lex_punct(cursor: _Cursor) -> Token | None:
    loc = cursor.loc()
    for punct in _PUNCTS:
        if cursor.starts_with(punct):
            cursor.advance(len(punct))
            return Token(TokenKind.PUNCT, punct, loc)
    return None
