"""Models of the six benchmark packages (Figures 7, 8, and 11).

Each package from the paper's evaluation is modelled as a set of
executables with synthetic-workload parameters chosen so the *shape* of
the evaluation carries over: which executables warn, the relative
ordering of region/object counts and analysis times across executables,
and the seeded-bug mix mirroring the paper's per-package findings
(Figure 8).  Absolute values are necessarily smaller -- the originals are
37-240 KLOC of real C analyzed for hours on a 2008 Xeon; these are
laptop-second workloads -- and EXPERIMENTS.md tabulates paper-vs-measured
for every row.

Seeding rationale per package:

* **rcc** (RC regions): the paper found one high-ranked warning, the
  string-sharing inconsistency -> one ``string_bug``.
* **apache**: elaborate pool discipline; one high-ranked warning that was
  a false positive (Figure 8 lists 1 high, 0 inconsistencies) -> one
  ``conditional_pool`` (high FP) in httpd; the eight utilities are clean.
* **freeswitch**: 4 I-pairs, none high -> low-ranked seeds only.
* **jxta-c**: zero warnings -> no seeds.
* **lklftpd**: 2 high, both real -> one ``cross_sibling`` + one
  ``into_subregion``.
* **subversion**: the warning-rich package (21 high / 9 inconsistencies /
  most of the 230 total) -> every executable carries real bugs of the
  hash-iterator/XML-parser kind plus high FPs and low-ranked noise,
  with ``svn`` itself the largest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.workloads.generator import (
    GeneratedWorkload,
    WorkloadSpec,
    generate_workload,
    scale_to_kloc,
)

__all__ = [
    "ExecutableModel",
    "PackageModel",
    "PACKAGES",
    "PAPER_SCALE_KLOC",
    "package",
    "generate_package",
    "package_units",
    "all_package_units",
    "paper_scale_units",
]


@dataclass(frozen=True)
class ExecutableModel:
    spec: WorkloadSpec
    # Paper's Figure 11 reference values for shape comparison:
    paper_regions: int = 0
    paper_objects: int = 0
    paper_high: int = 0

    @property
    def name(self) -> str:
        return self.spec.name


@dataclass(frozen=True)
class PackageModel:
    name: str
    version: str
    kloc: int  # the real package's size, for the Figure 7 table
    description: str
    interface: str
    executables: Tuple[ExecutableModel, ...]
    # Figure 8 reference values:
    paper_high: int = 0
    paper_inconsistencies: int = 0

    def expected_high(self) -> int:
        return sum(e.spec.expected_high() for e in self.executables)

    def expected_true_bugs(self) -> int:
        return sum(e.spec.expected_true_bugs() for e in self.executables)


def _exe(
    name: str,
    interface: str,
    stages: int,
    fanout: int = 1,
    helpers: int = 1,
    objects: int = 2,
    utilities: int = 1,
    sites: int = 1,
    bugs: Dict[str, int] = None,
    paper_regions: int = 0,
    paper_objects: int = 0,
    paper_high: int = 0,
) -> ExecutableModel:
    return ExecutableModel(
        spec=WorkloadSpec(
            name=name,
            interface=interface,
            stages=stages,
            fanout=fanout,
            helpers_per_stage=helpers,
            objects_per_stage=objects,
            utility_functions=utilities,
            utility_call_sites=sites,
            bugs=dict(bugs or {}),
        ),
        paper_regions=paper_regions,
        paper_objects=paper_objects,
        paper_high=paper_high,
    )


PACKAGES: List[PackageModel] = [
    PackageModel(
        name="rcc",
        version="",
        kloc=37,
        description="RC compiler",
        interface="rc",
        paper_high=1,
        paper_inconsistencies=1,
        executables=(
            _exe(
                "rcc", "rc", stages=3, fanout=2, helpers=2, objects=4,
                utilities=2, sites=2,
                bugs={"string_bug": 1},
                paper_regions=10, paper_objects=2536, paper_high=1,
            ),
        ),
    ),
    PackageModel(
        name="apache",
        version="2.2.6",
        kloc=42,
        description="web server and utilities",
        interface="apr",
        paper_high=1,
        paper_inconsistencies=0,
        executables=(
            _exe("ab", "apr", stages=2, objects=2,
                 paper_regions=11, paper_objects=111),
            _exe("htdbm", "apr", stages=1, objects=1,
                 paper_regions=3, paper_objects=15),
            _exe("rotatelogs", "apr", stages=1, objects=2,
                 paper_regions=3, paper_objects=21),
            _exe("httxt2dbm", "apr", stages=1, objects=3,
                 paper_regions=4, paper_objects=80),
            _exe("htcacheclean", "apr", stages=2, objects=3,
                 paper_regions=13, paper_objects=242),
            _exe("htdigest", "apr", stages=1, objects=3,
                 paper_regions=3, paper_objects=293),
            _exe("htpasswd", "apr", stages=1, objects=4,
                 paper_regions=3, paper_objects=406),
            _exe("flood", "apr", stages=2, objects=3,
                 paper_regions=6, paper_objects=324),
            _exe(
                "httpd", "apr", stages=4, fanout=2, helpers=2, objects=4,
                utilities=2, sites=2,
                bugs={"conditional_pool": 1},
                paper_regions=19, paper_objects=4546, paper_high=1,
            ),
        ),
    ),
    PackageModel(
        name="freeswitch",
        version="1.0b1",
        kloc=109,
        description="telephony platform shell",
        interface="apr",
        paper_high=0,
        paper_inconsistencies=0,
        executables=(
            _exe(
                "freeswitch", "apr", stages=4, fanout=2, helpers=2,
                objects=3, utilities=2, sites=2,
                bugs={"ambiguous_parent": 2, "intra_fp": 2},
                paper_regions=20, paper_objects=3174, paper_high=0,
            ),
        ),
    ),
    PackageModel(
        name="jxta-c",
        version="2.5.2",
        kloc=114,
        description="P2P framework shell",
        interface="apr",
        paper_high=0,
        paper_inconsistencies=0,
        executables=(
            _exe(
                "jxta-shell", "apr", stages=4, fanout=2, helpers=2,
                objects=4, utilities=2, sites=2,
                paper_regions=17, paper_objects=5007, paper_high=0,
            ),
        ),
    ),
    PackageModel(
        name="lklftpd",
        version="",
        kloc=5,
        description="FTP server",
        interface="apr",
        paper_high=2,
        paper_inconsistencies=2,
        executables=(
            _exe(
                "lklftpd", "apr", stages=2, helpers=1, objects=2,
                bugs={"cross_sibling": 1, "into_subregion": 1},
                paper_regions=7, paper_objects=622, paper_high=2,
            ),
        ),
    ),
    PackageModel(
        name="subversion",
        version="1.4.5",
        kloc=240,
        description="version control system",
        interface="apr",
        paper_high=21,
        paper_inconsistencies=9,
        executables=(
            _exe(
                "diff", "apr", stages=3, fanout=2, helpers=2, objects=3,
                utilities=2, sites=2,
                bugs={"into_subregion": 1},
                paper_regions=427, paper_objects=1941, paper_high=1,
            ),
            _exe(
                "diff3", "apr", stages=3, fanout=2, helpers=2, objects=3,
                utilities=2, sites=2,
                bugs={"into_subregion": 1},
                paper_regions=424, paper_objects=1865, paper_high=1,
            ),
            _exe(
                "diff4", "apr", stages=3, fanout=2, helpers=2, objects=3,
                utilities=2, sites=2,
                bugs={"into_subregion": 1},
                paper_regions=425, paper_objects=1877, paper_high=1,
            ),
            _exe(
                "svndumpfilter", "apr", stages=4, fanout=2, helpers=2,
                objects=4, utilities=2, sites=2,
                bugs={"into_subregion": 1, "conditional_pool": 1},
                paper_regions=6517, paper_objects=28378, paper_high=2,
            ),
            _exe(
                "svnadmin", "apr", stages=4, fanout=2, helpers=2,
                objects=4, utilities=2, sites=2,
                bugs={"cross_sibling": 1, "conditional_pool": 1,
                      "intra_fp": 1},
                paper_regions=7274, paper_objects=31620, paper_high=2,
            ),
            _exe(
                "svnlook", "apr", stages=4, fanout=2, helpers=2,
                objects=4, utilities=2, sites=3,
                bugs={"into_subregion": 1, "conditional_pool": 1,
                      "ambiguous_parent": 1},
                paper_regions=8194, paper_objects=35638, paper_high=2,
            ),
            _exe(
                "svnsync", "apr", stages=4, fanout=2, helpers=3,
                objects=4, utilities=2, sites=2,
                bugs={"into_subregion": 2, "cross_sibling": 1,
                      "intra_fp": 1},
                paper_regions=8123, paper_objects=36589, paper_high=3,
            ),
            _exe(
                "svnserve", "apr", stages=5, fanout=2, helpers=2,
                objects=4, utilities=2, sites=2,
                bugs={"into_subregion": 1, "cross_sibling": 1,
                      "string_bug": 1, "ambiguous_parent": 1},
                paper_regions=47480, paper_objects=195255, paper_high=3,
            ),
            _exe(
                "svn", "apr", stages=5, fanout=3, helpers=2, objects=4,
                utilities=3, sites=2,
                bugs={"into_subregion": 2, "cross_sibling": 1,
                      "conditional_pool": 2, "ambiguous_parent": 2,
                      "intra_fp": 2},
                paper_regions=53754, paper_objects=238521, paper_high=6,
            ),
        ),
    ),
]


def package(name: str) -> PackageModel:
    for model in PACKAGES:
        if model.name == name:
            return model
    raise KeyError(name)


def generate_package(model: PackageModel) -> List[GeneratedWorkload]:
    """Generate source for every executable of a package."""
    return [generate_workload(exe.spec) for exe in model.executables]


def package_units(model: PackageModel):
    """A package's executables as :class:`repro.tool.batch.BatchUnit`\\ s.

    Unit names are ``<package>/<executable>`` so batch summaries and
    fault-injection filters can target one executable of one package.
    """
    from repro.tool.batch import BatchUnit  # local: tool layers on workloads

    return [
        BatchUnit(
            name=f"{model.name}/{exe.name}",
            source=workload.source,
            filename=f"<{exe.name}>",
            interface=workload.spec.interface,
        )
        for exe, workload in zip(model.executables, generate_package(model))
    ]


def all_package_units():
    """Every executable of every package, in Figure 7 order.

    The 22-unit shape-comparison corpus in one list -- what the CI cache
    smoke and the figure-level sweeps use.
    """
    units = []
    for model in PACKAGES:
        units.extend(package_units(model))
    return units


#: Target corpus size per package, in KLOC of *generated* source, for
#: the paper-scale profile family.  Chosen so the total (~83 KLOC) sits
#: in the paper's per-package range (37-240 KLOC) while one serial sweep
#: stays under a CI minute; packages keep their relative ordering from
#: Figure 7 (subversion largest, lklftpd smallest).
PAPER_SCALE_KLOC: Dict[str, float] = {
    "rcc": 10.0,
    "apache": 12.0,
    "freeswitch": 14.0,
    "jxta-c": 14.0,
    "lklftpd": 3.0,
    "subversion": 30.0,
}


def paper_scale_units(
    names: Optional[Sequence[str]] = None, scale: float = 1.0
):
    """The paper-scale corpus: packages blown up to tens of KLOC each.

    Each package's :data:`PAPER_SCALE_KLOC` budget is split over its
    executables by ``log2(paper_objects)`` weight -- heap-heavy
    executables (Figure 11) get proportionally more generated source,
    so the corpus keeps the paper's *shape* while reaching its scale.
    The blow-up itself is :func:`~repro.workloads.generator.scale_to_kloc`
    module replication, which grows analysis cost linearly rather than
    exploding the context tree.

    ``names`` restricts to those packages (default: all six);
    ``scale`` multiplies every KLOC budget (e.g. ``0.01`` for tests).
    """
    from repro.tool.batch import BatchUnit  # local: tool layers on workloads

    models = (
        PACKAGES if names is None else [package(name) for name in names]
    )
    units = []
    for model in models:
        kloc = PAPER_SCALE_KLOC[model.name] * scale
        weights = [
            # log2 compresses the 15..240k paper_objects spread so small
            # executables still get a meaningful share; the +2 floor
            # covers executables with no Figure 11 row.
            math.log2(max(exe.paper_objects, 2))
            for exe in model.executables
        ]
        total = sum(weights)
        for exe, weight in zip(model.executables, weights):
            # Normalize the replicated call-tree shape: analysis cost
            # per context grows ~fanout**stages, so replicating an
            # extreme base spec (svn: fanout 3, depth 5) would make one
            # unit's per-line cost dwarf the rest and the corpus
            # useless for load-balance measurements.  Paper-scale
            # carries its size in *modules*; depth 4 / fanout 2 per
            # module is the realistic per-translation-unit shape.
            base = replace(
                exe.spec,
                stages=min(exe.spec.stages, 4),
                fanout=min(exe.spec.fanout, 2),
            )
            spec = scale_to_kloc(base, max(kloc * weight / total, 0.001))
            workload = generate_workload(spec)
            units.append(
                BatchUnit(
                    name=f"{model.name}/{exe.name}",
                    source=workload.source,
                    filename=f"<{exe.name}>",
                    interface=spec.interface,
                )
            )
    return units
