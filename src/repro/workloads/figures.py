"""C-subset transcriptions of every code figure in the paper.

Each :class:`FigureProgram` carries the source (written against the
shared APR/RC prototype headers), the interface it uses, and the expected
analysis outcome, so tests and benchmarks can iterate the whole corpus.
The sources stay as close to the paper's listings as the subset allows;
mini implementations of the APR utility code the cases depend on
(``apr_hash_first`` etc., Figure 9c) are included as analyzed source,
exactly as the paper analyzed APR's own code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.interfaces import APR_HEADER, RC_HEADER

__all__ = ["FigureProgram", "FIGURES", "figure", "figure_units", "MINI_APR_HASH"]


@dataclass(frozen=True)
class FigureProgram:
    name: str
    title: str
    source: str
    interface: str = "apr"  # 'apr' | 'rc'
    entry: str = "main"
    # Expected static outcome:
    expect_consistent: bool = True
    expect_high: int = 0  # high-ranked I-pairs
    min_warnings: int = 0  # total I-pairs (lower bound)
    # Expected dynamic outcome when run (None: not runnable as-is):
    runtime_faults: Optional[bool] = None

    @property
    def full_source(self) -> str:
        header = RC_HEADER if self.interface == "rc" else APR_HEADER
        return header + self.source


# Mini APR hash table, following Figure 9(c)'s apr_hash_first verbatim.
MINI_APR_HASH = """
typedef struct apr_hash_t apr_hash_t;
typedef struct apr_hash_index_t apr_hash_index_t;

struct apr_hash_index_t {
    apr_hash_t *ht;
    int index;
};

struct apr_hash_t {
    apr_pool_t *pool;
    struct apr_hash_index_t iterator;
    int count;
};

apr_hash_t *apr_hash_make(apr_pool_t *pool) {
    apr_hash_t *ht = apr_palloc(pool, sizeof(struct apr_hash_t));
    ht->pool = pool;
    ht->count = 0;
    return ht;
}

apr_hash_index_t *apr_hash_first(apr_pool_t *p, apr_hash_t *ht) {
    apr_hash_index_t *hi;
    if (p)
        hi = apr_palloc(p, sizeof(struct apr_hash_index_t));
    else
        hi = &ht->iterator;
    hi->ht = ht;
    return hi;
}

apr_hash_index_t *apr_hash_next(apr_hash_index_t *hi) {
    hi->index = hi->index + 1;
    if (hi->index < hi->ht->count)
        return hi;
    return NULL;
}
"""


FIGURES: List[FigureProgram] = []


def _register(program: FigureProgram) -> FigureProgram:
    FIGURES.append(program)
    return program


def figure(name: str) -> FigureProgram:
    for program in FIGURES:
        if program.name == name:
            return program
    raise KeyError(name)


def figure_units(names: Optional[List[str]] = None):
    """The figure corpus as :class:`repro.tool.batch.BatchUnit`\\ s.

    With ``names`` given, only those figures (in that order); otherwise
    the whole corpus.  Feed the result to :func:`repro.tool.batch.run_batch`
    to sweep the paper figures with fault isolation.
    """
    from repro.tool.batch import BatchUnit  # local: tool layers on workloads

    programs = FIGURES if names is None else [figure(name) for name in names]
    return [
        BatchUnit(
            name=program.name,
            source=program.full_source,
            filename=f"<{program.name}>",
            interface=program.interface,
            entry=program.entry,
        )
        for program in programs
    ]


# ---------------------------------------------------------------------------
# Figure 1: the connection/request example (consistent as written).
# ---------------------------------------------------------------------------

FIG1_CONNECTION_REQUEST = _register(FigureProgram(
    name="fig1",
    title="Figure 1: connection-request (consistent)",
    source="""
struct conn { int fd; };
struct request { struct conn *connection; int id; };

int main(void) {
    apr_pool_t *r;
    apr_pool_t *subr;
    apr_pool_create(&r, NULL);
    struct conn *conn = apr_palloc(r, sizeof(struct conn));     /* line 1 */
    apr_pool_create(&subr, r);                                  /* line 3 */
    struct request *req = apr_palloc(subr, sizeof(struct request)); /* 5 */
    req->connection = conn;                                     /* line 6 */
    apr_pool_destroy(subr);
    apr_pool_destroy(r);
    return 0;
}
""",
    expect_consistent=True,
    runtime_faults=False,
))


# Figure 2's four subregion configurations, as one program each.

FIG2_SAME_REGION = _register(FigureProgram(
    name="fig2a",
    title="Figure 2(a): r1 = r2, intra-region pointer always safe",
    source="""
struct cell { void *f; };
int main(void) {
    apr_pool_t *r;
    apr_pool_create(&r, NULL);
    void *o1 = apr_palloc(r, 8);
    struct cell *o2 = apr_palloc(r, sizeof(struct cell));
    o2->f = o1;
    apr_pool_destroy(r);
    return 0;
}
""",
    expect_consistent=True,
    runtime_faults=False,
))

FIG2_SUBREGION_SAFE = _register(FigureProgram(
    name="fig2b",
    title="Figure 2(b): r2 < r1, inter-region pointer always safe",
    source="""
struct cell { void *f; };
int main(void) {
    apr_pool_t *r1;
    apr_pool_t *r2;
    apr_pool_create(&r1, NULL);
    apr_pool_create(&r2, r1);
    void *o1 = apr_palloc(r1, 8);
    struct cell *o2 = apr_palloc(r2, sizeof(struct cell));
    o2->f = o1;
    apr_pool_destroy(r1);
    return 0;
}
""",
    expect_consistent=True,
    runtime_faults=False,
))

FIG2_UNRELATED = _register(FigureProgram(
    name="fig2c",
    title="Figure 2(c): unrelated regions, pointer may dangle",
    source="""
struct cell { void *f; };
int main(void) {
    apr_pool_t *r1;
    apr_pool_t *r2;
    apr_pool_create(&r1, NULL);
    apr_pool_create(&r2, NULL);
    void *o1 = apr_palloc(r1, 8);
    struct cell *o2 = apr_palloc(r2, sizeof(struct cell));
    o2->f = o1;
    apr_pool_destroy(r1);   /* o1 dies while o2 still points at it */
    void *use = o2->f;
    apr_pool_destroy(r2);
    return 0;
}
""",
    expect_consistent=False,
    expect_high=1,
    min_warnings=1,
    runtime_faults=True,
))

FIG2_INVERTED = _register(FigureProgram(
    name="fig2d",
    title="Figure 2(d): r1 < r2, pointer will dangle",
    source="""
struct cell { void *f; };
int main(void) {
    apr_pool_t *r2;
    apr_pool_t *r1;
    apr_pool_create(&r2, NULL);
    apr_pool_create(&r1, r2);   /* r1 is the subregion: inverted */
    void *o1 = apr_palloc(r1, 8);
    struct cell *o2 = apr_palloc(r2, sizeof(struct cell));
    o2->f = o1;
    apr_pool_destroy(r1);       /* o1 always dies first */
    void *use = o2->f;
    apr_pool_destroy(r2);
    return 0;
}
""",
    expect_consistent=False,
    expect_high=1,  # the safe direction can never hold: definite bug, high
    min_warnings=1,
    runtime_faults=True,
))


# ---------------------------------------------------------------------------
# Figure 3: aliasing makes may-subregion unsound.
# ---------------------------------------------------------------------------

FIG3_ALIASING = _register(FigureProgram(
    name="fig3",
    title="Figure 3: ambiguous parent via aliasing (inconsistent)",
    source="""
struct cell { void *f; };
int P;
int Q;

int main(void) {
    apr_pool_t *r0;
    apr_pool_t *r1;
    apr_pool_t *r;
    apr_pool_t *r2;
    apr_pool_create(&r0, NULL);
    apr_pool_create(&r1, NULL);
    void *o1 = apr_palloc(r1, 8);           /* line 1 */
    r = NULL;
    if (P) r = r0;                          /* line 2 */
    if (Q) r = r1;                          /* line 3 */
    apr_pool_create(&r2, r);                /* line 4 */
    struct cell *o2 = apr_palloc(r2, sizeof(struct cell)); /* line 5 */
    o2->f = o1;                             /* line 6 */
    apr_pool_destroy(r1);   /* r1 (holding o1) dies first... */
    apr_pool_destroy(r0);   /* ...so o2 dangles unless r2 <= r1 */
    return 0;
}
""",
    # The warning ranks LOW: r2 *may* be a subregion of r1 (the Q branch),
    # and with may-information only, the heuristic cannot distinguish this
    # real inconsistency from Figure 5's always-safe shape -- the paper's
    # acknowledged post-processing unsoundness ("developers may ... miss
    # lower-ranked inconsistencies", Section 5.5).
    expect_consistent=False,
    expect_high=0,
    min_warnings=1,
    runtime_faults=None,  # depends on P/Q: exercised in the dynamic bench
))


# ---------------------------------------------------------------------------
# Figure 5: the intra-region pointer the flow-insensitive analysis cannot
# prove safe -- a known false positive, which must rank LOW.
# ---------------------------------------------------------------------------

FIG5_INTRA_REGION = _register(FigureProgram(
    name="fig5",
    title="Figure 5: intra-region pointer false positive (low rank)",
    source="""
struct cell { void *f; };
int cond;

int main(void) {
    apr_pool_t *p;
    apr_pool_t *q;
    if (cond)                                /* line 1 */
        apr_pool_create(&p, NULL);
    else
        apr_pool_create(&p, NULL);
    apr_pool_create(&q, p);                  /* line 2 */
    void *o1 = apr_palloc(p, 8);             /* line 3 */
    struct cell *o2 = apr_palloc(q, sizeof(struct cell)); /* line 4 */
    o2->f = o1;                              /* line 5: always safe */
    apr_pool_destroy(p);
    return 0;
}
""",
    # The analysis reports it (imprecision), but the ranking heuristic
    # keeps it out of the high bucket because the owners are related on
    # some resolution of the aliasing.
    expect_consistent=False,
    expect_high=0,
    min_warnings=1,
    runtime_faults=False,
))


# ---------------------------------------------------------------------------
# Figure 9: the Subversion hash/iterator inconsistency (real bug).
# ---------------------------------------------------------------------------

FIG9_HASH_ITERATOR = _register(FigureProgram(
    name="fig9",
    title="Figure 9: svn hash table vs iterator lifetime (real bug)",
    source=MINI_APR_HASH + """
typedef struct svn_stringbuf_t svn_stringbuf_t;
struct svn_stringbuf_t { char *data; int len; };

/* libsvn_subr/xml.c:svn_xml_ap_to_hash */
apr_hash_t *svn_xml_ap_to_hash(int ap, apr_pool_t *pool) {
    apr_hash_t *ht = apr_hash_make(pool);
    return ht;
}

/* libsvn_subr/xml.c:svn_xml_make_open_tag_hash */
void svn_xml_make_open_tag_hash(svn_stringbuf_t *str, apr_pool_t *pool,
                                apr_hash_t *ht) {
    apr_hash_index_t *hi;
    for (hi = apr_hash_first(pool, ht); hi; hi = apr_hash_next(hi)) {
        str->len = str->len + 1;
    }
}

/* libsvn_subr/xml.c:svn_xml_make_open_tag_v */
void svn_xml_make_open_tag_v(svn_stringbuf_t *str, apr_pool_t *pool, int ap) {
    apr_pool_t *subpool = svn_pool_create(pool);
    apr_hash_t *ht = svn_xml_ap_to_hash(ap, subpool);
    svn_xml_make_open_tag_hash(str, pool, ht);
    svn_pool_destroy(subpool);
}

int main(void) {
    apr_pool_t *pool;
    apr_pool_create(&pool, NULL);
    svn_stringbuf_t *str = apr_palloc(pool, sizeof(struct svn_stringbuf_t));
    str->len = 0;
    svn_xml_make_open_tag_v(str, pool, 0);
    apr_pool_destroy(pool);
    return 0;
}
""",
    # The iterator hi (allocated in pool) holds hi->ht into subpool: a
    # longer-than-necessary lifetime / potential leak, flagged high.
    expect_consistent=False,
    expect_high=1,
    min_warnings=1,
    runtime_faults=True,  # dangling-created when subpool is destroyed
))


# ---------------------------------------------------------------------------
# Figure 10: a temporary inconsistency (benign; static warning expected).
# ---------------------------------------------------------------------------

FIG10_TEMPORARY = _register(FigureProgram(
    name="fig10",
    title="Figure 10: temporary inconsistency in do_open (benign)",
    source=MINI_APR_HASH + """
typedef struct svn_wc_adm_access_t svn_wc_adm_access_t;
struct svn_wc_adm_access_t { apr_hash_t *set; int flags; };

svn_wc_adm_access_t *adm_access_alloc(apr_pool_t *pool) {
    svn_wc_adm_access_t *lock =
        apr_palloc(pool, sizeof(struct svn_wc_adm_access_t));
    lock->set = NULL;
    return lock;
}

int write_lock;
int levels_to_lock;

/* libsvn_wc/lock.c:do_open (slightly simplified, as in the paper) */
int do_open(svn_wc_adm_access_t *associated, apr_pool_t *pool) {
    svn_wc_adm_access_t *lock;
    apr_pool_t *subpool = svn_pool_create(pool);
    if (write_lock)
        lock = adm_access_alloc(pool);
    else
        lock = adm_access_alloc(pool);
    if (levels_to_lock != 0) {
        if (associated)
            lock->set = apr_hash_make(subpool);   /* temporary */
        if (associated) {
            lock->set = associated->set;          /* reassigned */
        }
    }
    if (associated)
        lock->set = associated->set;
    svn_pool_destroy(subpool);
    return 0;
}

int main(void) {
    apr_pool_t *pool;
    apr_pool_create(&pool, NULL);
    svn_wc_adm_access_t *associated = adm_access_alloc(pool);
    associated->set = apr_hash_make(pool);
    do_open(associated, pool);
    apr_pool_destroy(pool);
    return 0;
}
""",
    expect_consistent=False,
    expect_high=1,  # lock in pool pointing into subpool: flagged
    min_warnings=1,
    runtime_faults=False,  # benign: reassigned before subpool dies
))


# ---------------------------------------------------------------------------
# Section 6.2: the make_error_internal false positive.
# ---------------------------------------------------------------------------

SEC62_MAKE_ERROR = _register(FigureProgram(
    name="sec62",
    title="Section 6.2: make_error_internal false positive",
    source="""
typedef struct svn_error_t svn_error_t;
struct svn_error_t {
    svn_error_t *child;
    apr_pool_t *pool;
    int code;
};

/* libsvn_subr/error.c:make_error_internal */
svn_error_t *make_error_internal(int code, svn_error_t *child) {
    apr_pool_t *pool;
    svn_error_t *new_error;
    if (child)
        pool = child->pool;
    else
        apr_pool_create(&pool, NULL);
    new_error = apr_pcalloc(pool, sizeof(struct svn_error_t));
    new_error->child = child;
    new_error->pool = pool;
    new_error->code = code;
    return new_error;
}

int main(void) {
    svn_error_t *inner = make_error_internal(1, NULL);
    svn_error_t *outer = make_error_internal(2, inner);
    return outer->code;
}
""",
    # In fact consistent (new_error shares child's pool when child is
    # non-null), but the path-insensitive analysis cannot prove P implies
    # Q and reports it -- the paper's own false-positive case.  The paper
    # saw it high-ranked; our reproduction ranks it LOW because the
    # analysis tracks the region pointer through new_error->pool /
    # child->pool, so a may-safe owner combination exists.  (A strict
    # precision improvement; see EXPERIMENTS.md.)
    expect_consistent=False,
    expect_high=0,
    min_warnings=1,
    runtime_faults=False,
))


# ---------------------------------------------------------------------------
# Figure 12: the two XML parser creation APIs + the run_log use.
# ---------------------------------------------------------------------------

FIG12_APR_XML = _register(FigureProgram(
    name="fig12a",
    title="Figure 12(a): apr_xml_parser_create (consistent, cleanup)",
    source="""
typedef struct XML_ParserStruct XML_ParserStruct;
typedef XML_ParserStruct *XML_Parser;
typedef struct apr_xml_parser apr_xml_parser;
struct apr_xml_parser { XML_Parser xp; int errnum; };

XML_Parser XML_ParserCreate(char *encoding);
void XML_ParserFree(XML_Parser parser);

apr_status_t cleanup_parser(void *data) {
    apr_xml_parser *parser = data;
    XML_ParserFree(parser->xp);
    return 0;
}

apr_xml_parser *apr_xml_parser_create(apr_pool_t *pool) {
    apr_xml_parser *parser = apr_pcalloc(pool, sizeof(struct apr_xml_parser));
    parser->xp = XML_ParserCreate(NULL);
    apr_pool_cleanup_register(pool, parser, cleanup_parser, cleanup_parser);
    return parser;
}

int main(void) {
    apr_pool_t *pool;
    apr_pool_create(&pool, NULL);
    apr_xml_parser *parser = apr_xml_parser_create(pool);
    apr_pool_destroy(pool);
    return 0;
}
""",
    expect_consistent=True,
    runtime_faults=False,
))

FIG12_SVN_XML = _register(FigureProgram(
    name="fig12b",
    title="Figure 12(b)+run_log: svn_xml_make_parser (inconsistent)",
    source="""
typedef struct XML_ParserStruct XML_ParserStruct;
typedef XML_ParserStruct *XML_Parser;
typedef struct svn_xml_parser_t svn_xml_parser_t;
struct svn_xml_parser_t { XML_Parser parser; apr_pool_t *pool; };

XML_Parser XML_ParserCreate(char *encoding);

/* libsvn_subr/xml.c:svn_xml_make_parser */
svn_xml_parser_t *svn_xml_make_parser(apr_pool_t *pool) {
    svn_xml_parser_t *svn_parser;
    apr_pool_t *subpool;
    XML_Parser parser = XML_ParserCreate(NULL);
    /* ### we probably don't want this pool... (the paper's comment) */
    subpool = svn_pool_create(pool);
    svn_parser = apr_pcalloc(subpool, sizeof(struct svn_xml_parser_t));
    svn_parser->parser = parser;
    svn_parser->pool = subpool;
    return svn_parser;
}

/* libsvn_wc/log.c:run_log */
struct log_runner { svn_xml_parser_t *parser; int count; };

int run_log(apr_pool_t *pool) {
    struct log_runner *loggy = apr_pcalloc(pool, sizeof(struct log_runner));
    svn_xml_parser_t *parser = svn_xml_make_parser(pool);
    loggy->parser = parser;
    return 0;
}

int main(void) {
    apr_pool_t *pool;
    apr_pool_create(&pool, NULL);
    run_log(pool);
    apr_pool_destroy(pool);
    return 0;
}
""",
    # loggy (in pool) -> parser (in subpool of pool): flagged.
    expect_consistent=False,
    expect_high=1,
    min_warnings=1,
    runtime_faults=False,  # subpool dies with pool here: latent only
))


# ---------------------------------------------------------------------------
# The rcc-style string inconsistency (Section 6.1, RC regions).
# ---------------------------------------------------------------------------

RCC_STRING = _register(FigureProgram(
    name="rcc_string",
    title="rcc: object holds string from an unrelated region",
    interface="rc",
    source="""
struct decl { char *name; int kind; };

char *intern_name(region strings, char *raw) {
    return rstrdup(strings, raw);
}

struct decl *make_decl(region decls, char *name) {
    struct decl *d = ralloc(decls, sizeof(struct decl));
    d->name = name;                 /* should duplicate into decls */
    return d;
}

int main(void) {
    region strings = newregion();
    region decls = newregion();     /* no subregion relation */
    char *name = intern_name(strings, "ident");
    struct decl *d = make_decl(decls, name);
    return 0;
}
""",
    expect_consistent=False,
    expect_high=1,
    min_warnings=1,
    runtime_faults=False,  # the regions are never deleted, as in the paper
))
