"""Deterministic synthetic region-workload generator.

The paper evaluates on six real packages (37-240 KLOC of C).  Offline we
cannot analyze Apache or Subversion themselves, so this generator emits
C-subset programs that exercise the same *region usage patterns* the
paper describes for staged applications:

* a stage hierarchy (server -> connection -> request) with one region per
  stage, child stages allocating from subregions (Figure 1's shape);
* shared utility helpers called from many sites, so calling contexts and
  cloned heap objects multiply exactly as in Section 5.2;
* per-stage object graphs with safe child-to-parent pointers;
* **seeded inconsistencies** drawn from the paper's own bug taxonomy, each
  with known ground truth, so a benchmark can check the tool finds
  precisely the seeded bugs and ranks them as expected.

Generation is deterministic in its parameters (no RNG), so benchmark
numbers are reproducible run to run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from repro.interfaces import APR_HEADER, RC_HEADER
from repro.util.errors import InputError

__all__ = [
    "BUG_KINDS",
    "WorkloadSpec",
    "GeneratedWorkload",
    "generate_workload",
    "scale_to_kloc",
]


# Bug taxonomy: (kind, truly_inconsistent, expected_high_rank).
BUG_KINDS: Dict[str, Tuple[bool, bool]] = {
    # Two sibling pools cross-linked (Figure 2c): real, never-safe.
    "cross_sibling": (True, True),
    # Long-lived object points into a subregion (Figures 9/12b): real,
    # never-safe.
    "into_subregion": (True, True),
    # Ambiguous parent via aliasing (Figure 3): real, but may-safe on one
    # resolution, so it ranks low -- the heuristic's acknowledged miss.
    "ambiguous_parent": (True, False),
    # Intra-region pointer the flow-insensitive analysis cannot prove
    # (Figure 5): false positive, ranks low.
    "intra_fp": (False, False),
    # Conditional pool selection without a region-pointer field to
    # rescue precision (Section 6.2's shape): false positive, ranks HIGH.
    "conditional_pool": (False, True),
    # Object keeps a string from an unrelated region (the rcc case):
    # real, never-safe.
    "string_bug": (True, True),
}


@dataclass(frozen=True)
class WorkloadSpec:
    """Size and bug-mix parameters for one synthetic executable.

    ``modules`` is the paper-scale knob: each module is a *disjoint*
    replica of the whole stage family (its own ``m<k>_stage_*`` /
    ``m<k>_util_chain_*`` call tree rooted at ``main``).  Disjoint
    replicas scale source size and analysis cost linearly -- unlike
    ``stages``/``fanout``, which multiply calling contexts exponentially
    -- which is exactly how real packages reach 37-240 KLOC: many
    independent features, not one enormously deep call chain.

    Construction validates the structural fields (non-empty ``name``,
    ``stages >= 1``, ``fanout >= 1``, ``modules >= 1``, no negative
    counts) and raises :class:`~repro.util.errors.InputError` rather
    than emitting a degenerate or empty source.
    """

    name: str
    interface: str = "apr"  # 'apr' | 'rc'
    stages: int = 3  # depth of the region hierarchy
    fanout: int = 1  # child-stage calls per stage: contexts ~ fanout^depth
    helpers_per_stage: int = 2  # call-graph breadth per stage
    objects_per_stage: int = 3  # allocations per stage body
    utility_functions: int = 2  # shared helpers (context multiplication)
    utility_call_sites: int = 2  # calls to each utility per stage
    modules: int = 1  # disjoint stage-family replicas (linear scaling)
    bugs: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise InputError("workload spec needs a non-empty name")
        if self.interface not in ("apr", "rc"):
            raise InputError(
                f"workload {self.name!r}: unknown interface"
                f" {self.interface!r} (expected 'apr' or 'rc')"
            )
        for field_name, minimum in (
            ("stages", 1),
            ("fanout", 1),
            ("modules", 1),
            ("helpers_per_stage", 0),
            # Stage helpers always chain item_0 into the utilities, so a
            # stage body needs at least one allocation.
            ("objects_per_stage", 1),
            ("utility_functions", 0),
            ("utility_call_sites", 0),
        ):
            value = getattr(self, field_name)
            if not isinstance(value, int) or value < minimum:
                raise InputError(
                    f"workload {self.name!r}: {field_name} must be an"
                    f" integer >= {minimum}, got {value!r}"
                )
        for kind, count in self.bugs.items():
            if not isinstance(count, int) or count < 0:
                raise InputError(
                    f"workload {self.name!r}: bug count for {kind!r}"
                    f" must be an integer >= 0, got {count!r}"
                )

    def expected_high(self) -> int:
        return sum(
            count
            for kind, count in self.bugs.items()
            if BUG_KINDS[kind][1]
        )

    def expected_true_bugs(self) -> int:
        return sum(
            count
            for kind, count in self.bugs.items()
            if BUG_KINDS[kind][0]
        )

    def expected_low_minimum(self) -> int:
        return sum(
            count
            for kind, count in self.bugs.items()
            if not BUG_KINDS[kind][1]
        )


@dataclass
class GeneratedWorkload:
    spec: WorkloadSpec
    source: str

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def kloc(self) -> float:
        return len(self.source.splitlines()) / 1000.0


# ---------------------------------------------------------------------------
# Code templates
# ---------------------------------------------------------------------------

_APR_PRELUDE = """
struct payload {
    struct payload *link;
    char *label;
    int tag;
};
"""

_RC_PRELUDE = _APR_PRELUDE


class _Emitter:
    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.lines: List[str] = []
        self.is_apr = spec.interface == "apr"
        #: Symbol prefix of the module being emitted; empty for the
        #: single-module case so existing corpora stay byte-identical.
        self.prefix = ""

    # -- interface-neutral snippets --------------------------------------

    @property
    def pool_type(self) -> str:
        return "apr_pool_t *" if self.is_apr else "region "

    def create(self, var: str, parent: str) -> str:
        if self.is_apr:
            return (
                f"    apr_pool_t *{var};\n"
                f"    apr_pool_create(&{var}, {parent});"
            )
        parent_expr = (
            f"newsubregion({parent})" if parent != "NULL" else "newregion()"
        )
        return f"    region {var} = {parent_expr};"

    def alloc(self, var: str, pool: str) -> str:
        fn = "apr_palloc" if self.is_apr else "ralloc"
        return (
            f"    struct payload *{var} ="
            f" {fn}({pool}, sizeof(struct payload));"
        )

    def strdup(self, var: str, pool: str, text: str) -> str:
        fn = "apr_pstrdup" if self.is_apr else "rstrdup"
        return f'    char *{var} = {fn}({pool}, "{text}");'

    def destroy(self, pool: str) -> str:
        fn = "apr_pool_destroy" if self.is_apr else "deleteregion"
        return f"    {fn}({pool});"

    def emit(self, text: str = "") -> None:
        self.lines.append(text)

    # -- program structure -------------------------------------------------

    def utilities(self) -> None:
        """Shared helpers: linked from every stage, multiplying contexts."""
        for index in range(self.spec.utility_functions):
            self.emit(
                f"struct payload *{self.prefix}util_chain_{index}("
                f"{self.pool_type}pool, struct payload *prev) {{"
            )
            self.emit(self.alloc("node", "pool"))
            self.emit("    node->link = prev;")
            self.emit(f"    node->tag = {index};")
            self.emit("    return node;")
            self.emit("}")
            self.emit()

    def stage(self, index: int) -> None:
        spec = self.spec
        if index + 1 < spec.stages:
            next_call = "\n".join(
                f"    {self.prefix}stage_{index + 1}(pool, local);"
                for _ in range(max(spec.fanout, 1))
            )
        else:
            next_call = "    /* leaf stage */"
        # Per-stage helpers deepen call paths.
        for helper in range(spec.helpers_per_stage):
            self.emit(
                f"void {self.prefix}stage_{index}_helper_{helper}("
                f"{self.pool_type}pool, struct payload *carry) {{"
            )
            for obj in range(spec.objects_per_stage):
                self.emit(self.alloc(f"item_{obj}", "pool"))
                # Safe pointer: same-region chain plus up-pointer to carry.
                if obj:
                    self.emit(f"    item_{obj}->link = item_{obj - 1};")
                else:
                    self.emit(f"    item_{obj}->link = carry;")
            for util in range(spec.utility_functions):
                for _ in range(spec.utility_call_sites):
                    self.emit(
                        f"    {self.prefix}util_chain_{util}(pool, item_0);"
                    )
            self.emit("}")
            self.emit()

        self.emit(
            f"void {self.prefix}stage_{index}({self.pool_type}parent,"
            " struct payload *up) {"
        )
        self.emit(self.create("pool", "parent"))
        self.emit(self.alloc("local", "pool"))
        self.emit("    local->link = up;  /* child -> parent: safe */")
        for helper in range(spec.helpers_per_stage):
            self.emit(
                f"    {self.prefix}stage_{index}_helper_{helper}(pool, local);"
            )
        self.emit(next_call)
        self.emit(self.destroy("pool"))
        self.emit("}")
        self.emit()

    # -- seeded bugs ---------------------------------------------------------

    def bug_cross_sibling(self, index: int) -> None:
        self.emit(f"void bug_cross_sibling_{index}({self.pool_type}parent) {{")
        self.emit(self.create("left", "parent"))
        self.emit(self.create("right", "parent"))
        self.emit(self.alloc("holder", "left"))
        self.emit(self.alloc("victim", "right"))
        self.emit("    holder->link = victim;  /* siblings: may dangle */")
        self.emit(self.destroy("right"))
        self.emit(self.destroy("left"))
        self.emit("}")
        self.emit()

    def bug_into_subregion(self, index: int) -> None:
        self.emit(f"void bug_into_subregion_{index}({self.pool_type}parent) {{")
        self.emit(self.create("sub", "parent"))
        self.emit(self.alloc("outer", "parent"))
        self.emit(self.alloc("inner", "sub"))
        self.emit("    outer->link = inner;  /* outer outlives inner */")
        self.emit(self.destroy("sub"))
        self.emit("}")
        self.emit()

    def bug_ambiguous_parent(self, index: int) -> None:
        self.emit(f"int choose_{index};")
        self.emit(
            f"void bug_ambiguous_parent_{index}({self.pool_type}parent) {{"
        )
        self.emit(self.create("a", "parent"))
        self.emit(self.create("b", "parent"))
        self.emit(self.alloc("target", "b"))
        self.emit(f"    {self.pool_type}picked = a;")
        self.emit(f"    if (choose_{index}) picked = b;")
        if self.is_apr:
            self.emit("    apr_pool_t *child;")
            self.emit("    apr_pool_create(&child, picked);")
        else:
            self.emit("    region child = newsubregion(picked);")
        self.emit(self.alloc("holder", "child"))
        self.emit("    holder->link = target;  /* only safe when picked==b */")
        self.emit(self.destroy("a"))
        self.emit(self.destroy("b"))
        self.emit("}")
        self.emit()

    def bug_intra_fp(self, index: int) -> None:
        self.emit(f"int flip_{index};")
        self.emit(f"void bug_intra_fp_{index}(void) {{")
        self.emit(f"    {self.pool_type}p;")
        if self.is_apr:
            self.emit(f"    if (flip_{index}) apr_pool_create(&p, NULL);")
            self.emit("    else apr_pool_create(&p, NULL);")
            self.emit("    apr_pool_t *q;")
            self.emit("    apr_pool_create(&q, p);")
        else:
            self.emit(f"    if (flip_{index}) p = newregion();")
            self.emit("    else p = newregion();")
            self.emit("    region q = newsubregion(p);")
        self.emit(self.alloc("o1", "p"))
        self.emit(self.alloc("o2", "q"))
        self.emit("    o2->link = o1;  /* always safe; analysis can't tell */")
        self.emit(self.destroy("p"))
        self.emit("}")
        self.emit()

    def bug_conditional_pool(self, index: int) -> None:
        # Section 6.2's make_error_internal shape, with the owning pool
        # recovered through an *opaque* lookup the analysis cannot see
        # through -- so the (actually safe) pointer ranks HIGH, exactly
        # the false-positive class the paper found in its high bucket.
        self.emit(
            f"struct payload *bug_conditional_pool_{index}("
            "struct payload *prev) {"
        )
        self.emit(f"    {self.pool_type}pool;")
        if self.is_apr:
            self.emit("    if (prev) pool = pool_of(prev);")
            self.emit("    else apr_pool_create(&pool, NULL);")
        else:
            self.emit("    if (prev) pool = pool_of(prev);")
            self.emit("    else pool = newregion();")
        self.emit(self.alloc("next", "pool"))
        self.emit("    next->link = prev;  /* safe, but needs path info */")
        self.emit("    return next;")
        self.emit("}")
        self.emit()

    def bug_string_bug(self, index: int) -> None:
        self.emit(f"void bug_string_{index}({self.pool_type}parent) {{")
        self.emit(self.create("strings", "parent"))
        self.emit(self.create("decls", "parent"))
        self.emit(self.strdup("name", "strings", f"ident_{index}"))
        self.emit(self.alloc("decl", "decls"))
        self.emit("    decl->label = name;  /* should have been duplicated */")
        self.emit("}")
        self.emit()

    # -- driver ----------------------------------------------------------

    def conditional_pool_support(self) -> None:
        """An external prototype: the owning pool comes back through a
        lookup whose body the analysis never sees (a library registry),
        like child->pool before the analysis connects the dots."""
        self.emit(f"{self.pool_type}pool_of(struct payload *obj);")
        self.emit()

    def main(self) -> None:
        spec = self.spec
        self.emit("int main(void) {")
        if self.is_apr:
            self.emit("    apr_pool_t *top;")
            self.emit("    apr_pool_create(&top, NULL);")
        else:
            self.emit("    region top = newregion();")
        if spec.stages:
            self.emit(self.alloc("boot", "top"))
            for module in range(spec.modules):
                prefix = f"m{module}_" if spec.modules > 1 else ""
                self.emit(f"    {prefix}stage_0(top, boot);")
        for kind, count in sorted(spec.bugs.items()):
            for index in range(count):
                if kind == "intra_fp":
                    self.emit(f"    bug_intra_fp_{index}();")
                elif kind == "conditional_pool":
                    self.emit(
                        f"    struct payload *cp_{index} ="
                        f" bug_conditional_pool_{index}(NULL);"
                    )
                    self.emit(
                        f"    cp_{index} = bug_conditional_pool_{index}"
                        f"(cp_{index});"
                    )
                elif kind == "string_bug":
                    self.emit(f"    bug_string_{index}(top);")
                else:
                    self.emit(f"    bug_{kind}_{index}(top);")
        self.emit(self.destroy("top"))
        self.emit("    return 0;")
        self.emit("}")

    def build(self) -> str:
        header = APR_HEADER if self.is_apr else RC_HEADER
        self.emit(_APR_PRELUDE if self.is_apr else _RC_PRELUDE)
        if "conditional_pool" in self.spec.bugs:
            self.conditional_pool_support()
        # Each module is a self-contained stage family; bugs and main
        # stay global so the seeded ground truth is scale-invariant.
        for module in range(self.spec.modules):
            self.prefix = f"m{module}_" if self.spec.modules > 1 else ""
            self.utilities()
            # Leaf stages first so calls target already-defined functions.
            for index in reversed(range(self.spec.stages)):
                self.stage(index)
        self.prefix = ""
        for kind, count in sorted(self.spec.bugs.items()):
            emitter = getattr(self, f"bug_{kind}")
            for index in range(count):
                emitter(index)
        self.main()
        return header + "\n".join(self.lines) + "\n"


def generate_workload(spec: WorkloadSpec) -> GeneratedWorkload:
    """Emit the C source for a workload spec (deterministic)."""
    unknown = set(spec.bugs) - set(BUG_KINDS)
    if unknown:
        raise ValueError(f"unknown bug kinds: {sorted(unknown)}")
    return GeneratedWorkload(spec=spec, source=_Emitter(spec).build())


def scale_to_kloc(spec: WorkloadSpec, kloc: float) -> WorkloadSpec:
    """The spec resized (via ``modules``) to roughly ``kloc`` KLOC.

    Probes the generator at one and two modules to learn the fixed and
    per-module line counts, then solves for the module count closest to
    the target.  Deterministic -- the probe is the generator itself --
    and linear in cost downstream: modules are disjoint call trees, so
    analysis time scales with KLOC instead of exploding with context
    depth.  Never scales *down* below one module.
    """
    if kloc <= 0:
        raise InputError(
            f"workload {spec.name!r}: kloc target must be > 0, got {kloc!r}"
        )
    one = len(generate_workload(replace(spec, modules=1)).source.splitlines())
    two = len(generate_workload(replace(spec, modules=2)).source.splitlines())
    per_module = max(two - one, 1)
    fixed = one - per_module
    modules = max(1, math.ceil((kloc * 1000.0 - fixed) / per_module))
    return replace(spec, modules=modules)
