"""Workloads: paper-figure corpus and synthetic package generator."""

from repro.workloads.figures import FIGURES, FigureProgram, figure, figure_units
from repro.workloads.generator import (
    BUG_KINDS,
    GeneratedWorkload,
    WorkloadSpec,
    generate_workload,
    scale_to_kloc,
)
from repro.workloads.packages import (
    PACKAGES,
    PAPER_SCALE_KLOC,
    ExecutableModel,
    PackageModel,
    all_package_units,
    generate_package,
    package,
    package_units,
    paper_scale_units,
)

__all__ = [
    "BUG_KINDS",
    "ExecutableModel",
    "all_package_units",
    "FIGURES",
    "FigureProgram",
    "GeneratedWorkload",
    "PACKAGES",
    "PAPER_SCALE_KLOC",
    "PackageModel",
    "WorkloadSpec",
    "figure",
    "figure_units",
    "generate_package",
    "generate_workload",
    "package",
    "package_units",
    "paper_scale_units",
    "scale_to_kloc",
]
