"""RegionWiz: conditional correlation analysis for safe region-based
memory management.

A from-scratch reproduction of Wang et al., PLDI 2008.  The package is a
full stack:

* :mod:`repro.lang` -- a C-subset frontend (lexer, parser, sema);
* :mod:`repro.ir` -- the Phoenix-like three-address IR and lowering;
* :mod:`repro.bdd` / :mod:`repro.datalog` -- a ROBDD engine and a
  bddbddb-style Datalog solver (set and BDD backends);
* :mod:`repro.callgraph` -- direct/indirect/implicit call graph;
* :mod:`repro.pointer` -- Whaley-Lam context cloning and the
  context-sensitive, field-sensitive points-to analysis with heap cloning;
* :mod:`repro.core` -- the conditional correlation framework, the region
  lifetime consistency instantiation, the paper's toy language with its
  Figure 4 big-step semantics, and warning ranking;
* :mod:`repro.interfaces` -- APR pools and RC regions interface specs;
* :mod:`repro.runtime` -- an executable region runtime and C interpreter
  (the dynamic baseline);
* :mod:`repro.tool` -- the end-to-end RegionWiz pipeline and CLI;
* :mod:`repro.workloads` -- the paper-figure corpus and the synthetic
  six-package evaluation models.

Quickstart::

    from repro import run_regionwiz
    report = run_regionwiz(c_source)
    for warning in report.high_warnings:
        print(warning)
"""

from repro.pointer import AnalysisOptions
from repro.tool import (
    BatchUnit,
    RegionWizReport,
    format_report,
    run_batch,
    run_regionwiz,
)
from repro.util import BudgetExceeded, ResourceBudget

__version__ = "1.0.0"

__all__ = [
    "AnalysisOptions",
    "BatchUnit",
    "BudgetExceeded",
    "RegionWizReport",
    "ResourceBudget",
    "__version__",
    "format_report",
    "run_batch",
    "run_regionwiz",
]
