"""The Phoenix-like intermediate representation.

RegionWiz extracts "instructions of the intermediate representation" where
"each instruction consists of destination operands, opcode, and source
operands" (Section 5.1).  The paper's own example lowers::

    int week = mytime(&t)->tm_wday;

to::

    t143 = CALL _mytime, &_t
    t144 = ADD t143, 24
    _week = ASSIGN [t144]*

This module defines exactly that instruction vocabulary: ASSIGN, ADDROF,
ADD (pointer plus constant byte offset -- field-sensitivity by offset),
LOAD/STORE (the ``[...]`` memory operands), CALL, RETURN, and the minimal
label/jump set so lowered functions remain complete and printable.  Every
instruction carries a module-unique ``uid`` (the unit of the paper's
"instruction pairs" in post-processing) and a source location.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.lang.errors import SourceLocation

__all__ = [
    "Temp",
    "VarOp",
    "FuncAddr",
    "IntConst",
    "NullConst",
    "StrConst",
    "Operand",
    "Instr",
    "Assign",
    "AddrOf",
    "Add",
    "BinOp",
    "Load",
    "Store",
    "Call",
    "Return",
    "Label",
    "Jump",
    "CBranch",
]


# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Temp:
    """A compiler temporary, function-local."""

    id: int

    def __str__(self) -> str:
        return f"t{self.id}"


@dataclass(frozen=True)
class VarOp:
    """A named variable.  ``name`` is the sema-unique ``ir_name``."""

    name: str
    kind: str  # 'local' | 'param' | 'global'

    def __str__(self) -> str:
        return f"_{self.name}"


@dataclass(frozen=True)
class FuncAddr:
    """The address of a function (direct call target / fp initializer)."""

    name: str

    def __str__(self) -> str:
        return f"&{self.name}"


@dataclass(frozen=True)
class IntConst:
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class NullConst:
    def __str__(self) -> str:
        return "null"


@dataclass(frozen=True)
class StrConst:
    """A string literal; ``site`` identifies the static allocation."""

    site: int
    value: str

    def __str__(self) -> str:
        preview = self.value if len(self.value) <= 12 else self.value[:9] + "..."
        return f"str{self.site}({preview!r})"


Operand = Union[Temp, VarOp, FuncAddr, IntConst, NullConst, StrConst]
Dest = Union[Temp, VarOp]


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------


@dataclass
class Instr:
    """Base instruction; ``uid`` is assigned by the module builder."""

    loc: SourceLocation
    uid: int = field(default=-1, init=False, compare=False)

    def operands(self) -> Tuple[Operand, ...]:
        """All source operands (for generic scans)."""
        return ()


@dataclass
class Assign(Instr):
    dst: Dest
    src: Operand

    def operands(self) -> Tuple[Operand, ...]:
        return (self.src,)

    def __str__(self) -> str:
        return f"{self.dst} = ASSIGN {self.src}"


@dataclass
class AddrOf(Instr):
    """``dst = &var``: makes a variable's storage an analysis object."""

    dst: Dest
    var: VarOp

    def operands(self) -> Tuple[Operand, ...]:
        return (self.var,)

    def __str__(self) -> str:
        return f"{self.dst} = ADDROF {self.var}"


@dataclass
class Add(Instr):
    """``dst = base + offset`` in bytes; ``offset=None`` is a dynamic
    offset (array indexing by a non-constant, pointer arithmetic), which
    the analysis treats per the paper's declared unsoundness."""

    dst: Dest
    base: Operand
    offset: Optional[int]

    def operands(self) -> Tuple[Operand, ...]:
        return (self.base,)

    def __str__(self) -> str:
        offset = "?" if self.offset is None else str(self.offset)
        return f"{self.dst} = ADD {self.base}, {offset}"


@dataclass
class BinOp(Instr):
    """Scalar arithmetic/comparison; opaque to the pointer analysis
    (pointer-plus-constant is :class:`Add` instead)."""

    dst: Dest
    op: str
    left: Operand
    right: Operand

    def operands(self) -> Tuple[Operand, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{self.dst} = {self.op.upper()!s:s} {self.left}, {self.right}"


@dataclass
class Load(Instr):
    """``dst = [addr]``"""

    dst: Dest
    addr: Operand

    def operands(self) -> Tuple[Operand, ...]:
        return (self.addr,)

    def __str__(self) -> str:
        return f"{self.dst} = LOAD [{self.addr}]"


@dataclass
class Store(Instr):
    """``[addr] = src``"""

    addr: Operand
    src: Operand

    def operands(self) -> Tuple[Operand, ...]:
        return (self.addr, self.src)

    def __str__(self) -> str:
        return f"STORE [{self.addr}] = {self.src}"


@dataclass
class Call(Instr):
    """``dst = CALL callee, args...``; callee is a :class:`FuncAddr` for
    direct calls or a variable/temp for indirect calls."""

    dst: Optional[Dest]
    callee: Operand
    args: Tuple[Operand, ...]

    def operands(self) -> Tuple[Operand, ...]:
        return (self.callee, *self.args)

    @property
    def is_direct(self) -> bool:
        return isinstance(self.callee, FuncAddr)

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        prefix = f"{self.dst} = " if self.dst is not None else ""
        return f"{prefix}CALL {self.callee}{', ' if args else ''}{args}"


@dataclass
class Return(Instr):
    src: Optional[Operand]

    def operands(self) -> Tuple[Operand, ...]:
        return () if self.src is None else (self.src,)

    def __str__(self) -> str:
        return f"RETURN {self.src}" if self.src is not None else "RETURN"


@dataclass
class Label(Instr):
    lid: int

    def __str__(self) -> str:
        return f"L{self.lid}:"


@dataclass
class Jump(Instr):
    target: int

    def __str__(self) -> str:
        return f"JUMP L{self.target}"


@dataclass
class CBranch(Instr):
    cond: Operand
    true_target: int
    false_target: int

    def operands(self) -> Tuple[Operand, ...]:
        return (self.cond,)

    def __str__(self) -> str:
        return f"CBRANCH {self.cond}, L{self.true_target}, L{self.false_target}"
