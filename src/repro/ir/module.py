"""IR containers: functions and modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.ir.instr import Call, Instr
from repro.lang.errors import SourceLocation
from repro.lang.types import CType, FunctionType

__all__ = ["IRFunction", "IRModule"]


@dataclass
class IRFunction:
    """A lowered function: parameter names (ir-unique) plus linear code."""

    name: str
    params: List[str]
    ret_type: CType
    instrs: List[Instr] = field(default_factory=list)
    loc: SourceLocation = SourceLocation.UNKNOWN

    def calls(self) -> Iterator[Call]:
        for instr in self.instrs:
            if isinstance(instr, Call):
                yield instr

    def __str__(self) -> str:
        lines = [f"func {self.name}({', '.join(self.params)}):"]
        for instr in self.instrs:
            lines.append(f"  {instr}")
        return "\n".join(lines)


@dataclass
class IRModule:
    """A whole program in IR.

    ``prototypes`` keeps declared-but-undefined functions (library
    interface entry points such as ``apr_pool_create``): the analysis
    models those through region-interface specs rather than code.
    """

    functions: Dict[str, IRFunction] = field(default_factory=dict)
    prototypes: Dict[str, FunctionType] = field(default_factory=dict)
    globals: List[str] = field(default_factory=list)
    string_literals: Dict[int, str] = field(default_factory=dict)
    _instr_by_uid: Dict[int, Instr] = field(default_factory=dict, repr=False)
    _func_of_uid: Dict[int, str] = field(default_factory=dict, repr=False)

    def add_function(self, function: IRFunction) -> None:
        self.functions[function.name] = function
        for instr in function.instrs:
            self._instr_by_uid[instr.uid] = instr
            self._func_of_uid[instr.uid] = function.name

    def instr(self, uid: int) -> Instr:
        return self._instr_by_uid[uid]

    def function_of(self, uid: int) -> str:
        return self._func_of_uid[uid]

    def is_defined(self, name: str) -> bool:
        return name in self.functions

    def all_instrs(self) -> Iterator[Tuple[str, Instr]]:
        for name, function in self.functions.items():
            for instr in function.instrs:
                yield name, instr

    @property
    def num_instrs(self) -> int:
        return len(self._instr_by_uid)

    def __str__(self) -> str:
        return "\n\n".join(str(f) for f in self.functions.values())
