"""AST-to-IR lowering.

Mirrors what the paper's Phoenix plug-in sees: three-address instructions,
with struct field access lowered to ``ADD base, byte_offset`` followed by a
memory LOAD/STORE, exactly as in the Section 5.1 example.  Global variable
initializers are collected into a synthetic ``_global_init`` function that
the call-graph builder treats as reachable before ``main``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.ir.instr import (
    Add,
    AddrOf,
    Assign,
    BinOp,
    Call,
    CBranch,
    Dest,
    FuncAddr,
    Instr,
    IntConst,
    Jump,
    Label,
    Load,
    NullConst,
    Operand,
    Return,
    Store,
    StrConst,
    Temp,
    VarOp,
)
from repro.ir.module import IRFunction, IRModule
from repro.lang import nodes
from repro.lang.errors import SemaError, SourceLocation
from repro.lang.sema import SemaResult, Symbol
from repro.lang.types import ArrayType, CType, StructType, VOID as _VOID_TYPE

__all__ = ["lower", "GLOBAL_INIT"]

GLOBAL_INIT = "_global_init"


def _collect_address_taken(node, taken: set) -> None:
    """Names (ir_names) of variables whose storage is observable through
    a pointer: ``&x``, struct variables accessed by value (``v.f``), and
    arrays.  Those must live in memory, so every access goes through
    their memory object -- otherwise stores through the pointer and
    direct reads of the variable would never meet in the flow-insensitive
    analysis.  Applies to locals, params, AND globals (a global pool
    passed as ``&global_pool`` is the canonical APR idiom)."""
    demotable = ("local", "param", "global")
    if isinstance(node, nodes.Unary) and node.op == "&":
        base = node.operand
        while isinstance(base, (nodes.Member, nodes.Index, nodes.Cast)):
            if isinstance(base, nodes.Member) and base.arrow:
                base = None
                break
            base = base.operand if isinstance(base, nodes.Cast) else base.base
        if isinstance(base, nodes.Ident):
            symbol = getattr(base, "symbol", None)
            if symbol is not None and symbol.kind in demotable:
                taken.add(symbol.ir_name)
    elif isinstance(node, nodes.Member) and not node.arrow:
        base = node.base
        while isinstance(base, nodes.Member) and not base.arrow:
            base = base.base
        if isinstance(base, nodes.Ident):
            symbol = getattr(base, "symbol", None)
            if symbol is not None and symbol.kind in demotable:
                taken.add(symbol.ir_name)
    elif isinstance(node, nodes.Ident):
        symbol = getattr(node, "symbol", None)
        if (
            symbol is not None
            and symbol.kind in demotable
            and isinstance(symbol.ctype, ArrayType)
        ):
            taken.add(symbol.ir_name)
    for child_name in getattr(node, "__dataclass_fields__", {}):
        child = getattr(node, child_name)
        if isinstance(child, nodes.Node):
            _collect_address_taken(child, taken)
        elif isinstance(child, list):
            for item in child:
                if isinstance(item, nodes.Node):
                    _collect_address_taken(item, taken)


class _FunctionLowerer:
    def __init__(
        self,
        module_lowerer: "_ModuleLowerer",
        name: str,
        address_taken: Optional[set] = None,
    ) -> None:
        self._ml = module_lowerer
        self.name = name
        self.instrs: List[Instr] = []
        self._temp_counter = 0
        self._label_counter = 0
        self._break_stack: List[int] = []
        self._continue_stack: List[int] = []
        self._address_taken: set = address_taken or set()

    def _is_demoted(self, symbol: Symbol) -> bool:
        return (
            symbol.kind in ("local", "param", "global")
            and symbol.ir_name in self._address_taken
        )

    def _slot_address(self, loc: SourceLocation, symbol: Symbol) -> Temp:
        temp = self._fresh_temp()
        self._emit(AddrOf(loc, temp, VarOp(symbol.ir_name, symbol.kind)))
        return temp

    def emit_param_spills(self, params: List[Symbol]) -> None:
        """Copy address-taken parameters into their memory slots so the
        incoming argument binding and pointer accesses agree."""
        for symbol in params:
            if self._is_demoted(symbol):
                loc = SourceLocation.UNKNOWN
                slot = self._slot_address(loc, symbol)
                self._emit(
                    Store(loc, slot, VarOp(symbol.ir_name, symbol.kind))
                )

    # -- emission helpers ------------------------------------------------

    def _fresh_temp(self) -> Temp:
        self._temp_counter += 1
        return Temp(self._temp_counter)

    def _fresh_label(self) -> int:
        self._label_counter += 1
        return self._label_counter

    def _emit(self, instr: Instr) -> Instr:
        instr.uid = self._ml.next_uid()
        self.instrs.append(instr)
        return instr

    # -- statements --------------------------------------------------------

    def lower_block(self, block: nodes.Block) -> None:
        for stmt in block.stmts:
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: nodes.Stmt) -> None:
        if isinstance(stmt, nodes.Block):
            self.lower_block(stmt)
        elif isinstance(stmt, nodes.DeclStmt):
            self._lower_decl(stmt.decl)
        elif isinstance(stmt, nodes.ExprStmt):
            self.rvalue(stmt.expr)
        elif isinstance(stmt, nodes.If):
            self._lower_if(stmt)
        elif isinstance(stmt, nodes.While):
            self._lower_while(stmt)
        elif isinstance(stmt, nodes.DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, nodes.For):
            self._lower_for(stmt)
        elif isinstance(stmt, nodes.Return):
            value = None if stmt.value is None else self.rvalue(stmt.value)
            self._emit(Return(stmt.loc, value))
        elif isinstance(stmt, nodes.Break):
            if not self._break_stack:
                raise SemaError("break outside a loop", stmt.loc)
            self._emit(Jump(stmt.loc, self._break_stack[-1]))
        elif isinstance(stmt, nodes.Continue):
            if not self._continue_stack:
                raise SemaError("continue outside a loop", stmt.loc)
            self._emit(Jump(stmt.loc, self._continue_stack[-1]))
        else:
            raise SemaError(f"internal: cannot lower {type(stmt).__name__}")

    def _lower_decl(self, decl: nodes.VarDecl) -> None:
        if decl.init is None:
            return
        symbol: Symbol = decl.symbol  # type: ignore[attr-defined]
        src = self.rvalue(decl.init)
        if self._is_demoted(symbol):
            slot = self._slot_address(decl.loc, symbol)
            self._emit(Store(decl.loc, slot, src))
        else:
            self._emit(Assign(decl.loc, VarOp(symbol.ir_name, symbol.kind), src))

    def _lower_if(self, stmt: nodes.If) -> None:
        cond = self.rvalue(stmt.cond)
        then_label = self._fresh_label()
        else_label = self._fresh_label()
        end_label = self._fresh_label() if stmt.other is not None else else_label
        self._emit(CBranch(stmt.loc, cond, then_label, else_label))
        self._emit(Label(stmt.loc, then_label))
        self.lower_stmt(stmt.then)
        if stmt.other is not None:
            self._emit(Jump(stmt.loc, end_label))
            self._emit(Label(stmt.other.loc, else_label))
            self.lower_stmt(stmt.other)
        self._emit(Label(stmt.loc, end_label))

    def _lower_while(self, stmt: nodes.While) -> None:
        cond_label = self._fresh_label()
        body_label = self._fresh_label()
        end_label = self._fresh_label()
        self._emit(Label(stmt.loc, cond_label))
        cond = self.rvalue(stmt.cond)
        self._emit(CBranch(stmt.loc, cond, body_label, end_label))
        self._emit(Label(stmt.loc, body_label))
        self._break_stack.append(end_label)
        self._continue_stack.append(cond_label)
        self.lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        self._emit(Jump(stmt.loc, cond_label))
        self._emit(Label(stmt.loc, end_label))

    def _lower_do_while(self, stmt: nodes.DoWhile) -> None:
        body_label = self._fresh_label()
        cond_label = self._fresh_label()
        end_label = self._fresh_label()
        self._emit(Label(stmt.loc, body_label))
        self._break_stack.append(end_label)
        self._continue_stack.append(cond_label)
        self.lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        self._emit(Label(stmt.loc, cond_label))
        cond = self.rvalue(stmt.cond)
        self._emit(CBranch(stmt.loc, cond, body_label, end_label))
        self._emit(Label(stmt.loc, end_label))

    def _lower_for(self, stmt: nodes.For) -> None:
        if isinstance(stmt.init, nodes.VarDecl):
            self._lower_decl(stmt.init)
        elif stmt.init is not None:
            self.rvalue(stmt.init)
        cond_label = self._fresh_label()
        body_label = self._fresh_label()
        step_label = self._fresh_label()
        end_label = self._fresh_label()
        self._emit(Label(stmt.loc, cond_label))
        if stmt.cond is not None:
            cond = self.rvalue(stmt.cond)
            self._emit(CBranch(stmt.loc, cond, body_label, end_label))
        self._emit(Label(stmt.loc, body_label))
        self._break_stack.append(end_label)
        self._continue_stack.append(step_label)
        self.lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        self._emit(Label(stmt.loc, step_label))
        if stmt.step is not None:
            self.rvalue(stmt.step)
        self._emit(Jump(stmt.loc, cond_label))
        self._emit(Label(stmt.loc, end_label))

    # -- expressions -------------------------------------------------------

    def rvalue(self, expr: nodes.Expr) -> Operand:
        if isinstance(expr, nodes.IntLit):
            return IntConst(expr.value)
        if isinstance(expr, nodes.NullLit):
            return NullConst()
        if isinstance(expr, nodes.StrLit):
            return self._ml.string_const(expr.value)
        if isinstance(expr, nodes.Ident):
            symbol: Symbol = expr.symbol  # type: ignore[attr-defined]
            if symbol.kind == "func":
                return FuncAddr(symbol.name)
            if isinstance(symbol.ctype, ArrayType):
                # Arrays decay to the address of their storage.
                temp = self._fresh_temp()
                self._emit(AddrOf(expr.loc, temp, VarOp(symbol.ir_name, symbol.kind)))
                return temp
            if self._is_demoted(symbol):
                slot = self._slot_address(expr.loc, symbol)
                temp = self._fresh_temp()
                self._emit(Load(expr.loc, temp, slot))
                return temp
            return VarOp(symbol.ir_name, symbol.kind)
        if isinstance(expr, nodes.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, nodes.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, nodes.Assign):
            return self._lower_assign(expr)
        if isinstance(expr, nodes.Cond):
            return self._lower_cond(expr)
        if isinstance(expr, nodes.Call):
            return self._lower_call(expr)
        if isinstance(expr, (nodes.Member, nodes.Index)):
            addr = self._address_of(expr)
            temp = self._fresh_temp()
            self._emit(Load(expr.loc, temp, addr))
            return temp
        if isinstance(expr, nodes.Cast):
            return self.rvalue(expr.operand)
        if isinstance(expr, nodes.SizeOf):
            target = expr.target
            size_type = target if isinstance(target, CType) else target.ctype
            assert size_type is not None
            return IntConst(size_type.size())
        raise SemaError(f"internal: cannot lower {type(expr).__name__}")

    def _lower_unary(self, expr: nodes.Unary) -> Operand:
        if expr.op == "*":
            addr = self.rvalue(expr.operand)
            temp = self._fresh_temp()
            self._emit(Load(expr.loc, temp, addr))
            return temp
        if expr.op == "&":
            return self._address_of(expr.operand)
        operand = self.rvalue(expr.operand)
        temp = self._fresh_temp()
        self._emit(BinOp(expr.loc, temp, expr.op, IntConst(0), operand))
        return temp

    def _lower_binary(self, expr: nodes.Binary) -> Operand:
        if expr.op == ",":
            self.rvalue(expr.left)
            return self.rvalue(expr.right)
        left = self.rvalue(expr.left)
        right = self.rvalue(expr.right)
        assert expr.left.ctype is not None and expr.right.ctype is not None
        temp = self._fresh_temp()
        # Pointer arithmetic becomes ADD so the analysis sees offsets.
        if expr.op in ("+", "-") and expr.left.ctype.is_pointerlike:
            offset = self._scaled_offset(expr.left.ctype, expr.right, expr.op)
            self._emit(Add(expr.loc, temp, left, offset))
            return temp
        if expr.op == "+" and expr.right.ctype.is_pointerlike:
            offset = self._scaled_offset(expr.right.ctype, expr.left, expr.op)
            self._emit(Add(expr.loc, temp, right, offset))
            return temp
        self._emit(BinOp(expr.loc, temp, expr.op, left, right))
        return temp

    def _scaled_offset(
        self, pointer_type: CType, index: nodes.Expr, op: str
    ) -> Optional[int]:
        if not isinstance(index, nodes.IntLit):
            return None  # dynamic offset: declared-unsound territory
        element = pointer_type.pointee()
        try:
            size = element.size()
        except SemaError:
            size = 1
        offset = index.value * size
        return -offset if op == "-" else offset

    def _lower_assign(self, expr: nodes.Assign) -> Operand:
        src = self.rvalue(expr.value)
        kind, target = self._lvalue(expr.target)
        if kind == "var":
            assert isinstance(target, VarOp)
            self._emit(Assign(expr.loc, target, src))
        else:
            self._emit(Store(expr.loc, target, src))
        return src

    def _lower_cond(self, expr: nodes.Cond) -> Operand:
        cond = self.rvalue(expr.cond)
        then_label = self._fresh_label()
        else_label = self._fresh_label()
        end_label = self._fresh_label()
        result = self._fresh_temp()
        self._emit(CBranch(expr.loc, cond, then_label, else_label))
        self._emit(Label(expr.loc, then_label))
        then_value = self.rvalue(expr.then)
        self._emit(Assign(expr.loc, result, then_value))
        self._emit(Jump(expr.loc, end_label))
        self._emit(Label(expr.loc, else_label))
        else_value = self.rvalue(expr.other)
        self._emit(Assign(expr.loc, result, else_value))
        self._emit(Label(expr.loc, end_label))
        return result

    def _lower_call(self, expr: nodes.Call) -> Operand:
        callee: Operand
        func = expr.func
        if isinstance(func, nodes.Ident):
            symbol: Symbol = func.symbol  # type: ignore[attr-defined]
            if symbol.kind == "func":
                callee = FuncAddr(symbol.name)
            else:
                callee = VarOp(symbol.ir_name, symbol.kind)
        else:
            callee = self.rvalue(func)
        args = tuple(self.rvalue(arg) for arg in expr.args)
        assert expr.ctype is not None
        dst = None if expr.ctype.is_void else self._fresh_temp()
        self._emit(Call(expr.loc, dst, callee, args))
        return dst if dst is not None else NullConst()

    # -- lvalues and addresses ----------------------------------------------

    def _lvalue(self, expr: nodes.Expr) -> Tuple[str, Operand]:
        """``("var", VarOp)`` for register targets, ``("mem", addr)`` else."""
        if isinstance(expr, nodes.Ident):
            symbol: Symbol = expr.symbol  # type: ignore[attr-defined]
            if self._is_demoted(symbol):
                return "mem", self._slot_address(expr.loc, symbol)
            return "var", VarOp(symbol.ir_name, symbol.kind)
        if isinstance(expr, nodes.Cast):
            return self._lvalue(expr.operand)
        if isinstance(expr, nodes.Unary) and expr.op == "*":
            return "mem", self.rvalue(expr.operand)
        if isinstance(expr, (nodes.Member, nodes.Index)):
            return "mem", self._address_of(expr)
        raise SemaError("assignment target is not an lvalue", expr.loc)

    def _address_of(self, expr: nodes.Expr) -> Operand:
        if isinstance(expr, nodes.Ident):
            symbol: Symbol = expr.symbol  # type: ignore[attr-defined]
            if symbol.kind == "func":
                return FuncAddr(symbol.name)
            temp = self._fresh_temp()
            self._emit(AddrOf(expr.loc, temp, VarOp(symbol.ir_name, symbol.kind)))
            return temp
        if isinstance(expr, nodes.Unary) and expr.op == "*":
            return self.rvalue(expr.operand)
        if isinstance(expr, nodes.Member):
            if expr.arrow:
                base = self.rvalue(expr.base)
                struct = self._member_struct(expr)
            else:
                base = self._address_of(expr.base)
                struct = self._member_struct(expr)
            offset = struct.field(expr.name).offset
            temp = self._fresh_temp()
            self._emit(Add(expr.loc, temp, base, offset))
            return temp
        if isinstance(expr, nodes.Index):
            base = self.rvalue(expr.base)
            assert expr.base.ctype is not None
            offset = self._scaled_offset(expr.base.ctype, expr.index, "+")
            temp = self._fresh_temp()
            self._emit(Add(expr.loc, temp, base, offset))
            return temp
        if isinstance(expr, nodes.Cast):
            return self._address_of(expr.operand)
        raise SemaError("cannot take the address of this expression", expr.loc)

    def _member_struct(self, expr: nodes.Member) -> StructType:
        assert expr.base.ctype is not None
        base_type = expr.base.ctype
        if expr.arrow:
            base_type = base_type.pointee()
        if not isinstance(base_type, StructType):
            raise SemaError(f"member access on {base_type}", expr.loc)
        return base_type


class _ModuleLowerer:
    def __init__(self, sema: SemaResult) -> None:
        self.sema = sema
        self.module = IRModule()
        self._uid_counter = 0
        self._string_counter = 0

    def next_uid(self) -> int:
        self._uid_counter += 1
        return self._uid_counter

    def string_const(self, value: str) -> StrConst:
        self._string_counter += 1
        self.module.string_literals[self._string_counter] = value
        return StrConst(self._string_counter, value)

    def run(self) -> IRModule:
        # Module-wide pass: globals whose address escapes anywhere must be
        # demoted in *every* function.
        global_taken: set = set()
        for info in self.sema.functions.values():
            assert info.decl.body is not None
            taken: set = set()
            _collect_address_taken(info.decl.body, taken)
            global_taken |= {
                name
                for name in taken
                if name in self.sema.globals
                and self.sema.globals[name].kind == "global"
            }
        # Globals and their initializers (synthetic _global_init).
        init_lowerer = _FunctionLowerer(
            self, GLOBAL_INIT, address_taken=set(global_taken)
        )
        for decl in self.sema.unit.decls:
            if isinstance(decl, nodes.VarDecl):
                self.module.globals.append(decl.name)
                if decl.init is not None:
                    src = init_lowerer.rvalue(decl.init)
                    if decl.name in global_taken:
                        slot = init_lowerer._fresh_temp()
                        init_lowerer._emit(
                            AddrOf(decl.loc, slot, VarOp(decl.name, "global"))
                        )
                        init_lowerer._emit(Store(decl.loc, slot, src))
                    else:
                        init_lowerer._emit(
                            Assign(decl.loc, VarOp(decl.name, "global"), src)
                        )
        if init_lowerer.instrs:
            self.module.add_function(
                IRFunction(GLOBAL_INIT, [], _VOID_TYPE, init_lowerer.instrs)
            )
        # Function bodies.
        for name, info in self.sema.functions.items():
            assert info.decl.body is not None
            taken = set(global_taken)
            _collect_address_taken(info.decl.body, taken)
            lowerer = _FunctionLowerer(self, name, address_taken=taken)
            lowerer.emit_param_spills(info.params)
            lowerer.lower_block(info.decl.body)
            self.module.add_function(
                IRFunction(
                    name,
                    [p.ir_name for p in info.params],
                    info.decl.ret,
                    lowerer.instrs,
                    info.decl.loc,
                )
            )
        # Prototypes (library entry points).
        for name, decl in self.sema.prototypes.items():
            if name not in self.module.functions:
                ftype = self.sema.function_type(name)
                assert ftype is not None
                self.module.prototypes[name] = ftype
        return self.module


def lower(sema: SemaResult) -> IRModule:
    """Lower an analyzed translation unit to the Phoenix-like IR."""
    return _ModuleLowerer(sema).run()
