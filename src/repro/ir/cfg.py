"""Control-flow graphs and an IR well-formedness verifier.

The analyses in this reproduction are flow-insensitive, but a CFG earns
its keep three ways: the verifier catches lowering bugs early (every test
module's IR is verified), the dominator computation supports the
flow-sensitivity extension point Section 4.3 sketches, and block-level
statistics feed the workload reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.instr import (
    CBranch,
    Instr,
    Jump,
    Label,
    Return,
)
from repro.ir.module import IRFunction, IRModule

__all__ = ["BasicBlock", "CFG", "IRVerifyError", "build_cfg", "verify_function", "verify_module"]


class IRVerifyError(Exception):
    """Malformed IR: dangling labels, duplicate labels, bad operands."""


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run."""

    index: int
    instrs: List[Instr] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[Instr]:
        return self.instrs[-1] if self.instrs else None


@dataclass
class CFG:
    """Blocks in layout order; block 0 is the entry."""

    function: IRFunction
    blocks: List[BasicBlock]

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def reachable_blocks(self) -> Set[int]:
        seen: Set[int] = set()
        frontier = [0] if self.blocks else []
        while frontier:
            index = frontier.pop()
            if index in seen:
                continue
            seen.add(index)
            frontier.extend(self.blocks[index].successors)
        return seen

    def dominators(self) -> Dict[int, Set[int]]:
        """Classic iterative dominator sets over reachable blocks."""
        reachable = sorted(self.reachable_blocks())
        if not reachable:
            return {}
        universe = set(reachable)
        dom: Dict[int, Set[int]] = {b: set(universe) for b in reachable}
        dom[0] = {0}
        changed = True
        while changed:
            changed = False
            for index in reachable:
                if index == 0:
                    continue
                preds = [
                    p for p in self.blocks[index].predecessors
                    if p in universe
                ]
                if preds:
                    new = set(universe)
                    for pred in preds:
                        new &= dom[pred]
                else:
                    new = set()
                new.add(index)
                if new != dom[index]:
                    dom[index] = new
                    changed = True
        return dom


def build_cfg(function: IRFunction) -> CFG:
    """Split a function's linear instruction list into basic blocks."""
    # Leaders: first instruction, labels, and instructions following a
    # terminator (jump/branch/return).
    label_block: Dict[int, int] = {}
    blocks: List[BasicBlock] = []
    current: Optional[BasicBlock] = None

    def start_block() -> BasicBlock:
        block = BasicBlock(index=len(blocks))
        blocks.append(block)
        return block

    current = start_block()
    for instr in function.instrs:
        if isinstance(instr, Label):
            if current.instrs:
                current = start_block()
            label_block[instr.lid] = current.index
            current.instrs.append(instr)
            continue
        current.instrs.append(instr)
        if isinstance(instr, (Jump, CBranch, Return)):
            current = start_block()
    if not blocks[-1].instrs and len(blocks) > 1:
        blocks.pop()

    # Edges.
    for i, block in enumerate(blocks):
        terminator = block.terminator
        if isinstance(terminator, Jump):
            block.successors.append(label_block[terminator.target])
        elif isinstance(terminator, CBranch):
            block.successors.append(label_block[terminator.true_target])
            if terminator.false_target != terminator.true_target:
                block.successors.append(label_block[terminator.false_target])
        elif isinstance(terminator, Return):
            pass
        elif i + 1 < len(blocks):
            block.successors.append(i + 1)  # fallthrough
    for block in blocks:
        for succ in block.successors:
            blocks[succ].predecessors.append(block.index)
    return CFG(function, blocks)


def verify_function(function: IRFunction) -> CFG:
    """Check structural invariants; returns the CFG on success."""
    labels: Set[int] = set()
    for instr in function.instrs:
        if instr.uid < 0:
            raise IRVerifyError(
                f"{function.name}: instruction without a uid: {instr}"
            )
        if isinstance(instr, Label):
            if instr.lid in labels:
                raise IRVerifyError(
                    f"{function.name}: duplicate label L{instr.lid}"
                )
            labels.add(instr.lid)
    for instr in function.instrs:
        if isinstance(instr, Jump):
            targets = [instr.target]
        elif isinstance(instr, CBranch):
            targets = [instr.true_target, instr.false_target]
        else:
            continue
        for target in targets:
            if target not in labels:
                raise IRVerifyError(
                    f"{function.name}: jump to undefined label L{target}"
                )
    return build_cfg(function)


def verify_module(module: IRModule) -> Dict[str, CFG]:
    """Verify every function; returns the CFGs keyed by name."""
    uids: Set[int] = set()
    for _, instr in module.all_instrs():
        if instr.uid in uids:
            raise IRVerifyError(f"duplicate instruction uid {instr.uid}")
        uids.add(instr.uid)
    return {
        name: verify_function(function)
        for name, function in module.functions.items()
    }
