"""The structured error taxonomy for the analysis pipeline.

Production whole-program analyzers distinguish three failure classes and
so must we:

* :class:`InputError` -- the *user's program or invocation* is at fault
  (unreadable files, nothing to analyze).  Reported without a traceback;
  CLI exit code 2 (alongside :class:`repro.lang.errors.CompileError`,
  which predates this hierarchy and stays separate so the frontend has no
  dependency on the analysis layer).
* :class:`BudgetExceeded` -- the analysis was *cut off by a resource
  budget* (wall clock, derived tuples, contexts, abstract objects).  This
  is not a bug and not the user's fault; it is the signal the degradation
  ladder retries on, and CLI exit code 4 when even the lowest precision
  rung cannot finish.
* anything else -- an *internal invariant violation*: surfaced as a crash
  with a traceback (CLI exit code 3), never masked as an input error.

Every class carries ``exit_code`` so drivers map exceptions to the exit
contract without isinstance ladders.
"""

from __future__ import annotations

import signal as _signal
from typing import Any, Dict, Optional

__all__ = [
    "AnalysisError",
    "InputError",
    "BudgetExceeded",
    "WorkerCrash",
    "HardTimeout",
]


class AnalysisError(Exception):
    """Base class of structured analysis failures."""

    #: CLI exit code this failure class maps to (internal errors: 3).
    exit_code = 3

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable form for batch summaries and JSON reports."""
        return {
            "type": type(self).__name__,
            "exit_code": self.exit_code,
            "message": str(self),
        }


class InputError(AnalysisError):
    """The input program or invocation cannot be analyzed as given."""

    exit_code = 2


class BudgetExceeded(AnalysisError):
    """A :class:`~repro.util.budget.ResourceBudget` limit was crossed.

    ``resource`` is one of ``wall_clock``, ``derived_tuples``,
    ``contexts``, ``objects`` (or ``corrupted`` when fault injection
    poisoned the meter); ``phase`` names the pipeline phase whose
    cooperative checkpoint detected it.
    """

    exit_code = 4

    def __init__(
        self,
        resource: str,
        limit: float,
        used: float,
        phase: str = "",
    ) -> None:
        self.resource = resource
        self.limit = limit
        self.used = used
        self.phase = phase
        where = f" during {phase}" if phase else ""
        super().__init__(
            f"{resource} budget exceeded{where}:"
            f" used {used:g}, limit {limit:g}"
        )

    def to_dict(self) -> Dict[str, Any]:
        payload = super().to_dict()
        payload.update(
            resource=self.resource,
            limit=self.limit,
            used=self.used,
            phase=self.phase,
        )
        return payload


class WorkerCrash(AnalysisError):
    """A batch pool worker *process* died while analyzing a unit.

    Unlike an in-process exception, the unit never got to report
    anything: the worker was SIGKILL'd, OOM-killed, or segfaulted out
    from under it.  The batch supervisor
    (:mod:`repro.tool.supervise`) raises/records this with the dead
    worker's ``pid`` and, when the wait status is known, the ``signum``
    that ended it.  Maps to exit code 3 (internal): a vanished worker
    is indistinguishable from an analyzer bug from the caller's side.
    """

    def __init__(
        self,
        unit: str,
        pid: Optional[int] = None,
        signum: Optional[int] = None,
    ) -> None:
        self.unit = unit
        self.pid = pid
        self.signum = signum
        where = f" (worker pid {pid})" if pid is not None else ""
        how = (
            f" by {self.signal_name or f'signal {signum}'}"
            if signum is not None
            else ""
        )
        super().__init__(
            f"worker process analyzing {unit} died{how}{where}"
        )

    @property
    def signal_name(self) -> Optional[str]:
        if self.signum is None:
            return None
        try:
            return _signal.Signals(self.signum).name
        except ValueError:
            return None

    def to_dict(self) -> Dict[str, Any]:
        payload = super().to_dict()
        payload.update(
            unit=self.unit,
            pid=self.pid,
            signal=self.signum,
            signal_name=self.signal_name,
        )
        return payload


class HardTimeout(BudgetExceeded):
    """A unit blew through the supervisor's *hard* wall-clock deadline.

    Cooperative :class:`~repro.util.budget.BudgetMeter` checkpoints can
    only trip between fixpoint rounds; a worker stuck *inside* one (a
    pathological loop, a blocked syscall, an injected ``hang``) never
    reaches the next checkpoint.  The batch supervisor enforces the
    deadline externally -- SIGKILLing the worker -- and records this,
    a :class:`BudgetExceeded` subclass, so the outcome folds into the
    existing exit-4 budget contract.
    """

    def __init__(self, limit: float, used: float) -> None:
        super().__init__(
            "hard_wall_clock", limit, used, phase="supervisor"
        )
