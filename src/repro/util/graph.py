"""Small graph utilities shared by the Datalog solver and the call graph.

Both need strongly connected components (Datalog stratification; the
Whaley-Lam context-numbering step collapses call-graph cycles) and a
topological order of the condensation.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Sequence, Set

__all__ = [
    "strongly_connected_components",
    "condensation",
    "topological_order",
    "GraphCycleError",
]

Node = Hashable


class GraphCycleError(Exception):
    """Raised when a cycle appears where a DAG is required."""


def strongly_connected_components(
    successors: Mapping[Node, Iterable[Node]]
) -> List[List[Node]]:
    """Tarjan's algorithm, iterative (analysis graphs can be deep).

    Returns SCCs in *reverse* topological order (callees/dependencies
    first), which is exactly the order bottom-up analyses want.
    Nodes that appear only as successors are included.
    """
    nodes: List[Node] = list(successors)
    seen: Set[Node] = set(nodes)
    for targets in list(successors.values()):
        for target in targets:
            if target not in seen:
                seen.add(target)
                nodes.append(target)

    index: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    components: List[List[Node]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        # Iterative Tarjan: work items are (node, iterator over successors).
        work = [(root, iter(successors.get(root, ())))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succ_iter = work[-1]
            advanced = False
            for target in succ_iter:
                if target not in index:
                    index[target] = lowlink[target] = counter
                    counter += 1
                    stack.append(target)
                    on_stack.add(target)
                    work.append((target, iter(successors.get(target, ()))))
                    advanced = True
                    break
                if target in on_stack:
                    lowlink[node] = min(lowlink[node], index[target])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[Node] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def condensation(
    successors: Mapping[Node, Iterable[Node]]
) -> tuple[List[List[Node]], Dict[Node, int], Dict[int, Set[int]]]:
    """SCCs (reverse topological), node->component map, and component DAG."""
    components = strongly_connected_components(successors)
    component_of: Dict[Node, int] = {}
    for i, component in enumerate(components):
        for node in component:
            component_of[node] = i
    dag: Dict[int, Set[int]] = {i: set() for i in range(len(components))}
    for node, targets in successors.items():
        for target in targets:
            a, b = component_of[node], component_of[target]
            if a != b:
                dag[a].add(b)
    return components, component_of, dag


def topological_order(successors: Mapping[Node, Iterable[Node]]) -> List[Node]:
    """Topological order of a DAG (edges point from earlier to later).

    Raises :class:`GraphCycleError` on cycles.
    """
    components, _, _ = condensation(successors)
    for component in components:
        if len(component) > 1:
            raise GraphCycleError(f"cycle through {component}")
    # A single-node component is still a cycle if it has a self edge.
    for node, targets in successors.items():
        if node in set(targets):
            raise GraphCycleError(f"self loop at {node!r}")
    # Tarjan emits reverse topological order.
    return [component[0] for component in reversed(components)]
