"""Deterministic fault injection for robustness tests.

Saturn-style checkers prove their isolation story by *injecting* failures
rather than waiting for them.  Each pipeline phase calls
:func:`fire` at a named injection point; tests arm points with
:func:`inject` (or the :func:`injected` context manager) to deterministically
exercise the degradation and fault-isolation paths:

* ``raise`` -- throw :class:`InjectedFault` (models an internal crash);
* ``delay`` -- sleep, so wall-clock budgets trip on cue;
* ``corrupt-budget`` -- poison the active :class:`~repro.util.budget.BudgetMeter`
  so its next checkpoint raises ``BudgetExceeded``;
* ``kill`` -- SIGKILL the *current process* (models a segfault or the
  OOM killer taking out a pool worker; in serial mode this kills the
  parent itself, which is exactly what the journal-resume tests need);
* ``hang`` -- sleep ``delay_seconds`` if set, otherwise effectively
  forever (models a worker stuck between budget checkpoints; only the
  supervisor's hard-timeout SIGKILL can end it).

Injection points used by the pipeline: ``frontend``, ``call-graph``,
``context-cloning``, ``correlation``, ``post-processing`` (see
:func:`repro.tool.regionwiz.run_regionwiz`) and ``batch-unit`` (see
:func:`repro.tool.batch.run_batch`).  A spec may be scoped to one batch
unit (``unit=``) and to a firing count (``times=``), which is what lets a
test poison exactly one executable of a package sweep.

The registry is process-global and therefore test-only by design; always
pair :func:`inject` with :func:`clear` (the :func:`injected` context
manager does both).

**Worker processes.**  The parallel batch executor
(:func:`repro.tool.batch.run_batch` with ``jobs > 1``) ships a
:func:`snapshot` of the armed specs with every dispatched unit and
:func:`install`\\ s it inside the worker before analysis, so injection
works identically whether a unit runs in-process or in a pool worker.
Because each dispatch carries its own copy, a ``times=`` count without a
``unit=`` filter is scoped *per dispatch* in parallel mode (it may fire
once in every worker) rather than globally; pair ``times=`` with
``unit=`` -- the documented way to poison one executable of a sweep --
and the behaviour is exactly the serial one.

``kill`` and ``hang`` are the exception to per-dispatch scoping: the
worker that fires one never reports back, so its local ``times``
decrement is lost with the process.  The supervisor closes the loop
through :func:`set_fire_hook` -- workers journal each destructive
firing *before* it executes, and the parent decrements its master
snapshot from the journal, so a ``times=1`` kill fires exactly once
per sweep and the retried unit runs fault-free.
"""

from __future__ import annotations

import os
import signal as _signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.obs.trace import trace_instant
from repro.util.budget import BudgetMeter

__all__ = [
    "InjectedFault",
    "FaultSpec",
    "inject",
    "clear",
    "active",
    "injected",
    "fire",
    "snapshot",
    "install",
    "set_fire_hook",
]

_ACTIONS = ("raise", "delay", "corrupt-budget", "kill", "hang")

#: How long a ``hang`` with no explicit ``delay_seconds`` sleeps: long
#: enough that only an external SIGKILL plausibly ends it.
_HANG_SECONDS = 3600.0


class InjectedFault(RuntimeError):
    """The failure thrown by a ``raise`` fault (an 'internal' crash)."""


@dataclass
class FaultSpec:
    """One armed fault."""

    point: str
    action: str = "raise"
    #: Only fire for this unit name (None: any unit).
    unit: Optional[str] = None
    #: Fire at most this many times, then disarm (None: every time).
    times: Optional[int] = None
    delay_seconds: float = 0.0
    message: str = ""


_ACTIVE: Dict[str, List[FaultSpec]] = {}

#: Called with ``(spec, unit)`` just before a selected fault's action
#: executes.  The batch supervisor installs a hook inside pool workers
#: that journals ``kill``/``hang`` firings: those actions destroy the
#: worker, so the journal line is the only record the parent ever gets
#: that the armed count was consumed.
_FIRE_HOOK: Optional[Callable[[FaultSpec, Optional[str]], None]] = None


def set_fire_hook(
    hook: Optional[Callable[[FaultSpec, Optional[str]], None]],
) -> Optional[Callable[[FaultSpec, Optional[str]], None]]:
    """Install ``hook`` (or ``None`` to clear); returns the previous one."""
    global _FIRE_HOOK
    previous = _FIRE_HOOK
    _FIRE_HOOK = hook
    return previous


def inject(
    point: str,
    action: str = "raise",
    unit: Optional[str] = None,
    times: Optional[int] = None,
    delay_seconds: float = 0.0,
    message: str = "",
) -> FaultSpec:
    """Arm a fault at ``point``; returns the (mutable) spec."""
    if action not in _ACTIONS:
        raise ValueError(f"unknown fault action {action!r}; one of {_ACTIONS}")
    spec = FaultSpec(
        point=point,
        action=action,
        unit=unit,
        times=times,
        delay_seconds=delay_seconds,
        message=message,
    )
    _ACTIVE.setdefault(point, []).append(spec)
    return spec


def clear(point: Optional[str] = None) -> None:
    """Disarm every fault at ``point`` (or everywhere)."""
    if point is None:
        _ACTIVE.clear()
    else:
        _ACTIVE.pop(point, None)


def active() -> List[FaultSpec]:
    """Every currently armed spec (for assertions and diagnostics)."""
    return [spec for specs in _ACTIVE.values() for spec in specs]


def snapshot() -> List[FaultSpec]:
    """A picklable copy of every armed spec (current ``times`` included).

    The parallel batch executor sends this with each dispatched unit so
    pool workers see the same armed faults as an in-process run.
    """
    return [replace(spec) for specs in _ACTIVE.values() for spec in specs]


def install(specs: Iterable[FaultSpec]) -> None:
    """Replace the registry with copies of ``specs`` (worker-side setup)."""
    _ACTIVE.clear()
    for spec in specs:
        _ACTIVE.setdefault(spec.point, []).append(replace(spec))


@contextmanager
def injected(
    point: str,
    action: str = "raise",
    **kwargs,
) -> Iterator[FaultSpec]:
    """Arm a fault for the duration of a ``with`` block."""
    spec = inject(point, action, **kwargs)
    try:
        yield spec
    finally:
        specs = _ACTIVE.get(point)
        if specs is not None and spec in specs:
            specs.remove(spec)
            if not specs:
                del _ACTIVE[point]


def fire(
    point: str,
    unit: Optional[str] = None,
    meter: Optional[BudgetMeter] = None,
) -> None:
    """Trigger any faults armed at ``point`` for ``unit``.

    Pipeline phases call this unconditionally; with nothing armed it is a
    single dict lookup.
    """
    specs = _ACTIVE.get(point)
    if not specs:
        return
    for spec in list(specs):
        if spec.unit is not None and spec.unit != unit:
            continue
        if spec.times is not None:
            if spec.times <= 0:
                continue
            spec.times -= 1
            if spec.times == 0:
                specs.remove(spec)
        trace_instant(
            "fault", point=point, action=spec.action, unit=unit or ""
        )
        if _FIRE_HOOK is not None:
            _FIRE_HOOK(spec, unit)
        if spec.action == "raise":
            raise InjectedFault(
                spec.message or f"injected fault at {point}"
                + (f" (unit {unit})" if unit else "")
            )
        if spec.action == "delay":
            time.sleep(spec.delay_seconds)
        elif spec.action == "corrupt-budget" and meter is not None:
            meter.corrupt()
        elif spec.action == "kill":
            os.kill(os.getpid(), _signal.SIGKILL)
        elif spec.action == "hang":
            time.sleep(spec.delay_seconds or _HANG_SECONDS)
