"""Shared utilities (graph algorithms, budgets, fault injection)."""

from repro.util.budget import BudgetMeter, ResourceBudget
from repro.util.errors import AnalysisError, BudgetExceeded, InputError
from repro.util.faults import FaultSpec, InjectedFault
from repro.util.graph import (
    GraphCycleError,
    condensation,
    strongly_connected_components,
    topological_order,
)

__all__ = [
    "AnalysisError",
    "BudgetExceeded",
    "BudgetMeter",
    "FaultSpec",
    "GraphCycleError",
    "InjectedFault",
    "InputError",
    "ResourceBudget",
    "condensation",
    "strongly_connected_components",
    "topological_order",
]
