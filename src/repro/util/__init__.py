"""Shared utilities (graph algorithms, timers)."""

from repro.util.graph import (
    GraphCycleError,
    condensation,
    strongly_connected_components,
    topological_order,
)

__all__ = [
    "GraphCycleError",
    "condensation",
    "strongly_connected_components",
    "topological_order",
]
