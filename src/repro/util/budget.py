"""Resource budgets with cooperative checkpoints.

The paper analyzes 1.35 MLOC and reports runs taking hours; a production
deployment needs every fixpoint to be *interruptible*.  A
:class:`ResourceBudget` declares the limits; :meth:`ResourceBudget.start`
mints a :class:`BudgetMeter` that the call-graph builder, the context
numbering, the pointer solver, and both Datalog engines poll at loop
granularity.  Crossing a limit raises a structured
:class:`~repro.util.errors.BudgetExceeded`, which the degradation ladder
in :mod:`repro.tool.regionwiz` catches to retry at lower precision.

Checkpoints are *cooperative*: phases call :meth:`BudgetMeter.checkpoint`
(wall clock) and :meth:`BudgetMeter.charge_tuples` /
:meth:`~BudgetMeter.charge_contexts` / :meth:`~BudgetMeter.charge_objects`
(counters) at the top of their fixpoint rounds.  With no limits set every
check is a two-attribute-read no-op, so threading a meter through the hot
loops costs nothing in the common case.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.util.errors import BudgetExceeded

__all__ = ["ResourceBudget", "BudgetMeter"]


@dataclass(frozen=True)
class ResourceBudget:
    """Declarative resource limits (``None`` = unlimited)."""

    #: Wall-clock deadline for one pipeline attempt, in seconds.
    wall_clock_seconds: Optional[float] = None
    #: Cumulative cap on tuples derived by the pointer solver and any
    #: Datalog fixpoint run under the same meter.
    max_derived_tuples: Optional[int] = None
    #: Cap on the total number of calling contexts the numbering creates.
    max_contexts: Optional[int] = None
    #: Cap on abstract objects + regions the pointer analysis tracks.
    max_objects: Optional[int] = None

    @property
    def unlimited(self) -> bool:
        return (
            self.wall_clock_seconds is None
            and self.max_derived_tuples is None
            and self.max_contexts is None
            and self.max_objects is None
        )

    def start(self, clock: Callable[[], float] = time.monotonic) -> "BudgetMeter":
        """Begin one attempt: the wall clock starts ticking now."""
        return BudgetMeter(self, clock=clock)

    def hard_deadline(self, grace_factor: float) -> Optional[float]:
        """The supervisor's per-unit wall-clock ceiling, in seconds.

        Cooperative checkpoints should always trip first; the hard
        deadline is the budget's wall clock times ``grace_factor``
        (covering every degradation-ladder rung retrying under a fresh
        meter plus checkpoint latency), after which the batch
        supervisor assumes the unit is *stuck between checkpoints* and
        kills the worker outright.  ``None`` when the budget carries no
        wall-clock limit -- there is nothing to scale a grace period
        from, so only an explicit ``--hard-timeout`` can arm the
        watchdog.
        """
        if self.wall_clock_seconds is None:
            return None
        if grace_factor <= 0:
            raise ValueError(
                f"grace_factor must be > 0, got {grace_factor}"
            )
        return self.wall_clock_seconds * grace_factor

    def to_dict(self) -> Dict[str, Any]:
        return {
            "wall_clock_seconds": self.wall_clock_seconds,
            "max_derived_tuples": self.max_derived_tuples,
            "max_contexts": self.max_contexts,
            "max_objects": self.max_objects,
        }


class BudgetMeter:
    """Mutable per-attempt tracker for one :class:`ResourceBudget`.

    A fresh meter is minted for every attempt (each degradation rung gets
    a full budget: a retry with an already-expired deadline could never
    succeed).  All ``charge_*`` methods raise
    :class:`~repro.util.errors.BudgetExceeded` the moment a limit is
    crossed; :meth:`corrupt` (used by the ``corrupt-budget`` fault
    injection action) forces the next checkpoint to fail deterministically.
    """

    def __init__(
        self,
        budget: ResourceBudget,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.budget = budget
        self._clock = clock
        self._deadline: Optional[float] = None
        if budget.wall_clock_seconds is not None:
            self._deadline = clock() + budget.wall_clock_seconds
        self.tuples_used = 0
        self.contexts_used = 0
        self.objects_used = 0
        self._corrupted = False

    # ------------------------------------------------------------------

    def corrupt(self) -> None:
        """Poison the meter: every subsequent check raises."""
        self._corrupted = True

    def _trip(
        self, resource: str, limit: float, used: float, phase: str
    ) -> None:
        """Emit a ``budget.trip`` event and raise (the only raise path).

        The event log import is local: this is the cold path (budget
        exhaustion), and :mod:`repro.obs.events` layers above
        :mod:`repro.util` at import time.
        """
        from repro.obs.events import emit_event

        emit_event(
            "budget.trip",
            resource=resource,
            limit=limit,
            used=used,
            phase=phase,
        )
        raise BudgetExceeded(resource, limit, used, phase)

    def checkpoint(self, phase: str) -> None:
        """Wall-clock check; call at the top of every fixpoint round."""
        if self._corrupted:
            self._trip("corrupted", 0, 0, phase)
        if self._deadline is not None and self._clock() > self._deadline:
            assert self.budget.wall_clock_seconds is not None
            limit = self.budget.wall_clock_seconds
            used = limit + (self._clock() - self._deadline)
            self._trip("wall_clock", limit, used, phase)

    def charge_tuples(self, count: int, phase: str) -> None:
        """Add ``count`` newly derived tuples; also checks the deadline."""
        self.tuples_used += count
        limit = self.budget.max_derived_tuples
        if limit is not None and self.tuples_used > limit:
            self._trip("derived_tuples", limit, self.tuples_used, phase)
        self.checkpoint(phase)

    def charge_contexts(self, total: int, phase: str) -> None:
        """Record the running total of calling contexts."""
        self.contexts_used = max(self.contexts_used, total)
        limit = self.budget.max_contexts
        if limit is not None and self.contexts_used > limit:
            self._trip("contexts", limit, self.contexts_used, phase)
        self.checkpoint(phase)

    def charge_objects(self, total: int, phase: str) -> None:
        """Record the running total of abstract objects (incl. regions)."""
        self.objects_used = max(self.objects_used, total)
        limit = self.budget.max_objects
        if limit is not None and self.objects_used > limit:
            self._trip("objects", limit, self.objects_used, phase)
        self.checkpoint(phase)

    def usage(self) -> Dict[str, int]:
        """Counters charged so far (wall clock is not included)."""
        return {
            "derived_tuples": self.tuples_used,
            "contexts": self.contexts_used,
            "objects": self.objects_used,
        }
