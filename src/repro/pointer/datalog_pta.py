"""The points-to/effect computation as Datalog rules (Section 5.3).

The paper solves its effect computation on bddbddb; this module states
the context-insensitive core of that computation as Datalog over IR facts
and runs it on :mod:`repro.datalog`.  It covers the full instruction
vocabulary -- copies, address-of, field-offset adds, loads, stores,
call/return bindings -- plus the interface effects ``subregion``,
``ownership``, and ``access``.

It is deliberately the *context-insensitive* configuration: Datalog with
explicit context domains reproduces the cloned analysis too, but at toy
scale the value is the executable specification and the cross-check
against the native engine (``tests/pointer/test_datalog_pta.py`` requires
tuple-for-tuple agreement with ``AnalysisOptions(context_sensitive=False,
heap_cloning=False)``), not performance.

Domains: ``V`` variables, ``H`` abstract objects (allocation sites),
``N`` field offsets, ``F`` functions, ``I`` call sites, ``K`` argument
positions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.callgraph import CallGraph
from repro.interfaces import RegionInterface
from repro.ir import (
    Add,
    AddrOf,
    Assign,
    Call,
    FuncAddr,
    Load,
    NullConst,
    Operand,
    Return,
    Store,
    StrConst,
    Temp,
    VarOp,
)
from repro.datalog import Program

__all__ = ["DatalogPTA", "run_datalog_pta"]

RULES = """
# Base points-to: address-of, allocation results, region handles.
vP(v, h) :- newObj(v, h).

# Copies (both whole-object pointers and interior pointers).
vP(v2, h) :- copy(v2, v1), vP(v1, h).
loc(v2, h, n) :- copy(v2, v1), loc(v1, h, n).

# Field-offset arithmetic: locations are (object, offset) pairs; the
# offset lattice is pre-flattened into shiftTo facts per Add instruction.
loc(v, h, n) :- vP(v, h), zero(n).
loc(v2, h, n2) :- shift(v2, v1, d), loc(v1, h, n1), offAdd(n1, d, n2).

# Loads and stores through (object, offset) locations.  Silent stores
# (the interface's out-parameter writes) update the heap but are not
# program-level accesses.
hP(h1, n, h2, m) :- store(va, vs), loc(va, h1, n), loc(vs, h2, m).
hP(h1, n, h2, m) :- storeSilent(va, vs), loc(va, h1, n), loc(vs, h2, m).
loc(v, h2, m) :- load(v, va), loc(va, h1, n), hP(h1, n, h2, m).
vP(v, h) :- loc(v, h, n), zero(n).

# Interprocedural copy edges.
vP(v2, h) :- callEdge(i, f), actual(i, k, v1), formal(f, k, v2), vP(v1, h).
vP(v2, h) :- callEdge(i, f), retdst(i, v2), retsrc(f, v1), vP(v1, h).
loc(v2, h, n) :- callEdge(i, f), actual(i, k, v1), formal(f, k, v2), loc(v1, h, n).
loc(v2, h, n) :- callEdge(i, f), retdst(i, v2), retsrc(f, v1), loc(v1, h, n).

# Region effects.
subregion(r, p) :- createAt(i, r), createParentVar(i, v), vP(v, p), isRegion(p).
subregion(r, p) :- createAt(i, r), createParentRoot(i), root(p).
subregion(r, p) :- createAt(i, r), createParentVar(i, v), vP(v, q), isNull(q), root(p).
ownership(r, h) :- allocAt(i, h), allocRegionVar(i, v), vP(v, r), isRegion(r).
ownership(r, h) :- allocAt(i, h), allocRegionVar(i, v), vP(v, q), isNull(q), root(r).

# Access effect: a normal object storing a pointer to an object/region
# through a *program* store (silent interface writes excluded).
access(h1, n, h2) :-
    store(va, vs), loc(va, h1, n), loc(vs, h2, m),
    isNormal(h1), isTracked(h2).
"""


class DatalogPTA:
    """Facts + solved relations for the Datalog points-to formulation."""

    def __init__(
        self,
        graph: CallGraph,
        interface: RegionInterface,
        backend: str = "set",
    ) -> None:
        self.graph = graph
        self.module = graph.module
        self.interface = interface
        self.backend = backend
        self.objects: List[Tuple[str, int, str]] = []  # (kind, site, label)
        self._object_index: Dict[Tuple[str, int], int] = {}
        self._variables: Dict[Tuple[str, str], int] = {}
        self._offsets: Set[int] = {0}
        self._deltas: Set[int] = set()
        self.solution = None

    # -- indexing ----------------------------------------------------------

    def _object(self, kind: str, site: int, label: str) -> int:
        key = (kind, site)
        index = self._object_index.get(key)
        if index is None:
            index = len(self.objects)
            self.objects.append((kind, site, label))
            self._object_index[key] = index
        return index

    def _var(self, func: str, operand: Operand) -> Optional[int]:
        if isinstance(operand, Temp):
            key = (func, f"t{operand.id}")
        elif isinstance(operand, VarOp):
            key = ("", operand.name) if operand.kind == "global" else (
                func, operand.name
            )
        else:
            return None
        return self._variables.setdefault(key, len(self._variables))

    # -- fact extraction -----------------------------------------------------

    def solve(self):
        root = self._object("root", 0, "<root>")
        null = self._object("null", -1, "<null>")

        copies: List[Tuple[int, int]] = []
        new_objs: List[Tuple[int, int]] = []
        shifts: List[Tuple[int, int, int]] = []
        loads: List[Tuple[int, int]] = []
        stores: List[Tuple[int, int]] = []
        silent_stores: List[Tuple[int, int]] = []
        creates: List[Tuple[int, int, Optional[int], bool]] = []
        allocs: List[Tuple[int, int, Optional[int]]] = []
        call_edges: List[Tuple[int, int]] = []
        actuals: List[Tuple[int, int, int]] = []
        formals: List[Tuple[int, int, int]] = []
        retsrcs: List[Tuple[int, int]] = []
        retdsts: List[Tuple[int, int]] = []

        functions = sorted(set(self.module.functions) | set(self.module.prototypes))
        f_index = {name: i for i, name in enumerate(functions)}
        call_sites: Dict[int, int] = {}
        max_arity = 1
        stack_sites: Dict[Tuple[str, str], int] = {}

        reachable = {
            name
            for name in self.graph.reachable
            if name in self.module.functions
        }

        for fname in sorted(reachable):
            function = self.module.functions[fname]
            for instr in function.instrs:
                if isinstance(instr, Assign):
                    dst = self._var(fname, instr.dst)
                    if dst is None:
                        continue
                    if isinstance(instr.src, StrConst):
                        obj = self._object(
                            "string", instr.src.site, f"str{instr.src.site}"
                        )
                        new_objs.append((dst, obj))
                    elif isinstance(instr.src, NullConst):
                        new_objs.append((dst, null))
                    else:
                        src = self._var(fname, instr.src)
                        if src is not None:
                            copies.append((dst, src))
                elif isinstance(instr, AddrOf):
                    dst = self._var(fname, instr.dst)
                    if dst is None:
                        continue
                    var = instr.var
                    if var.kind == "global":
                        site = stack_sites.setdefault(
                            ("", var.name), instr.uid
                        )
                        obj = self._object("global", site, f"&{var.name}")
                    else:
                        site = stack_sites.setdefault(
                            (fname, var.name), instr.uid
                        )
                        obj = self._object(
                            "stack", site, f"&{fname}.{var.name}"
                        )
                    new_objs.append((dst, obj))
                elif isinstance(instr, Add):
                    dst = self._var(fname, instr.dst)
                    src = self._var(fname, instr.base)
                    if dst is None or src is None or instr.offset is None:
                        continue  # paper mode: unknown offsets dropped
                    shifts.append((dst, src, instr.offset))
                    self._deltas.add(instr.offset)
                elif isinstance(instr, Load):
                    dst = self._var(fname, instr.dst)
                    addr = self._var(fname, instr.addr)
                    if dst is not None and addr is not None:
                        loads.append((dst, addr))
                elif isinstance(instr, Store):
                    addr = self._var(fname, instr.addr)
                    src = self._var(fname, instr.src)
                    if addr is not None and src is not None:
                        stores.append((addr, src))
                elif isinstance(instr, Return):
                    if instr.src is not None:
                        src = self._var(fname, instr.src)
                        if src is not None:
                            retsrcs.append((f_index[fname], src))
                elif isinstance(instr, Call):
                    site = call_sites.setdefault(instr.uid, len(call_sites))
                    max_arity = max(max_arity, len(instr.args))
                    for target in self.graph.targets(instr.uid):
                        if target in self.interface.creates:
                            spec = self.interface.creates[target]
                            region = self._object(
                                "region", instr.uid, f"{target}@{instr.loc.line}"
                            )
                            parent_var = None
                            parent_root = spec.parent_arg is None
                            if (
                                spec.parent_arg is not None
                                and spec.parent_arg < len(instr.args)
                            ):
                                arg = instr.args[spec.parent_arg]
                                if isinstance(arg, NullConst):
                                    parent_root = True
                                else:
                                    parent_var = self._var(fname, arg)
                            creates.append(
                                (site, region, parent_var, parent_root)
                            )
                            if spec.out_arg is None and instr.dst is not None:
                                dst = self._var(fname, instr.dst)
                                if dst is not None:
                                    new_objs.append((dst, region))
                            elif (
                                spec.out_arg is not None
                                and spec.out_arg < len(instr.args)
                            ):
                                out = self._var(
                                    fname, instr.args[spec.out_arg]
                                )
                                if out is not None:
                                    # *(out) = region: a silent store of a
                                    # fresh temp holding the region.
                                    temp = self._variables.setdefault(
                                        (fname, f"__r{instr.uid}"),
                                        len(self._variables),
                                    )
                                    new_objs.append((temp, region))
                                    silent_stores.append((out, temp))
                        elif target in self.interface.allocs:
                            spec = self.interface.allocs[target]
                            obj = self._object(
                                "heap", instr.uid, f"{target}@{instr.loc.line}"
                            )
                            region_var = None
                            if spec.region_arg < len(instr.args):
                                arg = instr.args[spec.region_arg]
                                if isinstance(arg, NullConst):
                                    region_var = None
                                else:
                                    region_var = self._var(fname, arg)
                            allocs.append((site, obj, region_var))
                            if region_var is None:
                                # Null region: owned by the root.
                                temp = self._variables.setdefault(
                                    (fname, f"__n{instr.uid}"),
                                    len(self._variables),
                                )
                                new_objs.append((temp, null))
                                allocs[-1] = (site, obj, temp)
                            if instr.dst is not None:
                                dst = self._var(fname, instr.dst)
                                if dst is not None:
                                    new_objs.append((dst, obj))
                        elif target in reachable:
                            call_edges.append((site, f_index[target]))
                            callee = self.module.functions[target]
                            for k, arg in enumerate(instr.args):
                                if k >= len(callee.params):
                                    break
                                arg_id = self._var(fname, arg)
                                if arg_id is not None:
                                    actuals.append((site, k, arg_id))
                            if instr.dst is not None:
                                dst = self._var(fname, instr.dst)
                                if dst is not None:
                                    retdsts.append((site, dst))

        for fname in sorted(reachable):
            function = self.module.functions[fname]
            for k, param in enumerate(function.params):
                formals.append(
                    (
                        f_index[fname],
                        k,
                        self._variables.setdefault(
                            (fname, param), len(self._variables)
                        ),
                    )
                )
                max_arity = max(max_arity, k + 1)

        # Offset lattice: sums of shift deltas reachable from 0.  Closed
        # to a bounded chain depth -- Add chains in straight-line code are
        # short, and the magnitude clamp mirrors the native engine's
        # max_field_offset cutoff (beyond which offsets become unknown and
        # are dropped in paper mode).
        offsets: Set[int] = {0}
        bound = 1 << 12
        frontier = {0}
        for _ in range(6):  # max interior-pointer chain depth
            next_frontier: Set[int] = set()
            for base in frontier:
                for delta in self._deltas:
                    total = base + delta
                    if 0 <= total <= bound and total not in offsets:
                        offsets.add(total)
                        next_frontier.add(total)
            if not next_frontier:
                break
            frontier = next_frontier
        offset_list = sorted(offsets)
        offset_index = {offset: i for i, offset in enumerate(offset_list)}
        self.offset_list = offset_list

        program = Program(backend=self.backend)
        program.domain("V", max(len(self._variables), 1))
        program.domain("H", max(len(self.objects), 1))
        program.domain("N", max(len(offset_list), 1))
        program.domain("F", max(len(functions), 1))
        program.domain("I", max(len(call_sites), 1))
        program.domain("K", max(max_arity, 1))
        for name, domains in [
            ("newObj", ["V", "H"]), ("copy", ["V", "V"]),
            ("shift", ["V", "V", "N"]), ("offAdd", ["N", "N", "N"]),
            ("zero", ["N"]), ("load", ["V", "V"]), ("store", ["V", "V"]),
            ("storeSilent", ["V", "V"]),
            ("callEdge", ["I", "F"]), ("actual", ["I", "K", "V"]),
            ("formal", ["F", "K", "V"]), ("retsrc", ["F", "V"]),
            ("retdst", ["I", "V"]),
            ("createAt", ["I", "H"]), ("createParentVar", ["I", "V"]),
            ("createParentRoot", ["I"]),
            ("allocAt", ["I", "H"]), ("allocRegionVar", ["I", "V"]),
            ("isRegion", ["H"]), ("isNull", ["H"]), ("isNormal", ["H"]),
            ("isTracked", ["H"]), ("root", ["H"]),
            ("vP", ["V", "H"]), ("loc", ["V", "H", "N"]),
            ("hP", ["H", "N", "H", "N"]),
            ("subregion", ["H", "H"]), ("ownership", ["H", "H"]),
            ("access", ["H", "N", "H"]),
        ]:
            program.relation(name, domains)
        program.rules(RULES)

        program.fact("zero", offset_index[0])
        for n1 in offset_list:
            for delta in self._deltas:
                total = n1 + delta
                if total in offset_index:
                    program.fact(
                        "offAdd",
                        offset_index[n1],
                        offset_index[delta],
                        offset_index[total],
                    )
        for dst, src in copies:
            program.fact("copy", dst, src)
        for dst, obj in new_objs:
            program.fact("newObj", dst, obj)
        for dst, src, delta in shifts:
            program.fact("shift", dst, src, offset_index[delta])
        for dst, addr in loads:
            program.fact("load", dst, addr)
        for addr, src in stores:
            program.fact("store", addr, src)
        for addr, src in silent_stores:
            program.fact("storeSilent", addr, src)
        for site, target in call_edges:
            program.fact("callEdge", site, target)
        for site, k, var in actuals:
            program.fact("actual", site, k, var)
        for func, k, var in formals:
            program.fact("formal", func, k, var)
        for func, var in retsrcs:
            program.fact("retsrc", func, var)
        for site, var in retdsts:
            program.fact("retdst", site, var)
        for site, region, parent_var, parent_root in creates:
            program.fact("createAt", site, region)
            if parent_var is not None:
                program.fact("createParentVar", site, parent_var)
            if parent_root:
                program.fact("createParentRoot", site)
        for site, obj, region_var in allocs:
            program.fact("allocAt", site, obj)
            if region_var is not None:
                program.fact("allocRegionVar", site, region_var)
        for index, (kind, _, _) in enumerate(self.objects):
            if kind in ("region", "root"):
                program.fact("isRegion", index)
            if kind == "null":
                program.fact("isNull", index)
            if kind in ("heap", "stack", "global", "string"):
                program.fact("isNormal", index)
            if kind in ("heap", "stack", "global", "string", "region", "root"):
                program.fact("isTracked", index)
        program.fact("root", root)

        self.solution = program.solve()
        return self

    # -- result views --------------------------------------------------------

    @property
    def stats(self):
        """:class:`~repro.datalog.SolverStats` of the solve, or None."""
        return None if self.solution is None else self.solution.stats

    def _label(self, index: int) -> str:
        return self.objects[index][2]

    def subregion_labels(self) -> Set[Tuple[str, str]]:
        assert self.solution is not None
        return {
            (self._label(a), self._label(b))
            for a, b in self.solution.tuples("subregion")
            if a != b
        }

    def ownership_labels(self) -> Set[Tuple[str, str]]:
        assert self.solution is not None
        return {
            (self._label(a), self._label(b))
            for a, b in self.solution.tuples("ownership")
        }

    def access_labels(self) -> Set[Tuple[str, int, str]]:
        assert self.solution is not None
        return {
            (self._label(a), self.offset_list[n], self._label(b))
            for a, n, b in self.solution.tuples("access")
        }


def run_datalog_pta(
    graph: CallGraph, interface: RegionInterface, backend: str = "set"
) -> DatalogPTA:
    """Extract facts, solve the Section 5.3 rules, return the result."""
    return DatalogPTA(graph, interface, backend).solve()
