"""Pointer analysis: context numbering, cloned analysis, Andersen baseline."""

from repro.pointer.analysis import (
    AbstractObject,
    AnalysisOptions,
    NULL_OBJECT,
    PointerAnalysisResult,
    ROOT_REGION,
    analyze_pointers,
)
from repro.pointer.andersen import analyze_andersen, andersen_options
from repro.pointer.contexts import ContextNumbering, number_contexts
from repro.pointer.datalog_pta import DatalogPTA, run_datalog_pta

__all__ = [
    "AbstractObject",
    "AnalysisOptions",
    "ContextNumbering",
    "DatalogPTA",
    "NULL_OBJECT",
    "run_datalog_pta",
    "PointerAnalysisResult",
    "ROOT_REGION",
    "analyze_andersen",
    "analyze_pointers",
    "andersen_options",
    "number_contexts",
]
