"""Context-sensitive, field-sensitive pointer analysis with heap cloning.

The effect-computation phase of RegionWiz (Section 5.3.1): an
Andersen-style, flow-insensitive points-to analysis where

* variables are identified per calling context ``(c, v)``;
* heap objects are *cloned* per context: an allocation site reached along
  two different call paths yields two abstract objects (Nystrom et al.'s
  heap specialization, which the paper argues is necessary here);
* fields are byte offsets (``heap : C x F x N x C x F``).

While propagating, calls to the region interface generate the three
effects of the formal model: ``subregion`` (rnew), ``ownership`` (ralloc),
and ``heap``/access (stores of inter-object pointers).  Every knob the
ablation benchmarks need -- context sensitivity, heap cloning, field
sensitivity, and the paper's declared unsoundness for dynamic offsets --
is an :class:`AnalysisOptions` flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.callgraph import CallGraph
from repro.interfaces import RegionInterface
from repro.ir import (
    Add,
    AddrOf,
    Assign,
    Call,
    FuncAddr,
    IntConst,
    Load,
    NullConst,
    Operand,
    Return,
    Store,
    StrConst,
    Temp,
    VarOp,
)
from repro.obs.trace import trace_span
from repro.pointer.contexts import ContextNumbering, number_contexts
from repro.util.budget import BudgetMeter

__all__ = [
    "AbstractObject",
    "AnalysisOptions",
    "PointerAnalysisResult",
    "ROOT_REGION",
    "NULL_OBJECT",
    "analyze_pointers",
]


@dataclass(frozen=True)
class AbstractObject:
    """An abstract memory object: ``(allocation site, calling context)``.

    ``kind`` distinguishes regions from normal objects (the paper's
    ``R`` vs ``H``), plus stack/global/string/static-function storage.
    """

    kind: str  # 'region'|'heap'|'stack'|'global'|'string'|'func'|'root'|'null'
    site: int  # allocation instruction uid (0 for synthetic objects)
    ctx: int
    name: str

    def __str__(self) -> str:
        suffix = f"#{self.ctx}" if self.ctx else ""
        return f"{self.name}{suffix}"

    @property
    def is_region(self) -> bool:
        return self.kind in ("region", "root")

    @property
    def is_normal(self) -> bool:
        """A normal object in the paper's sense (H): region-allocatable
        storage plus statics/stack that can hold pointers."""
        return self.kind in ("heap", "stack", "global", "string")


ROOT_REGION = AbstractObject("root", 0, 0, "<root>")
NULL_OBJECT = AbstractObject("null", 0, 0, "<null>")

# A points-to target: an object plus a byte offset into it (None = unknown).
Location = Tuple[AbstractObject, Optional[int]]
VarKey = Tuple[str, int, str]  # (function, context, variable); globals ("",0,n)


@dataclass
class AnalysisOptions:
    """Precision knobs (each is an ablation axis)."""

    context_sensitive: bool = True
    heap_cloning: bool = True
    field_sensitive: bool = True
    max_contexts: int = 1 << 16
    # Paper mode: dynamic/overflowing offsets are ignored ("unsound for
    # more complex pointer operations such as arithmetic", Section 5.5).
    track_unknown_offsets: bool = False
    max_field_offset: int = 1 << 12


@dataclass
class PointerAnalysisResult:
    """Everything downstream phases need."""

    graph: CallGraph
    numbering: ContextNumbering
    options: AnalysisOptions
    interface: RegionInterface
    var_pts: Dict[VarKey, FrozenSet[Location]]
    heap_pts: Dict[Tuple[AbstractObject, Optional[int]], FrozenSet[Location]]
    regions: FrozenSet[AbstractObject]
    objects: FrozenSet[AbstractObject]
    subregion: FrozenSet[Tuple[AbstractObject, AbstractObject]]
    ownership: FrozenSet[Tuple[AbstractObject, AbstractObject]]
    accesses: FrozenSet[Tuple[AbstractObject, Optional[int], AbstractObject]]
    access_sites: Dict[
        Tuple[AbstractObject, Optional[int], AbstractObject], FrozenSet[int]
    ]
    cleanups: FrozenSet[Tuple[AbstractObject, str, AbstractObject]]
    iterations: int

    def points_to(self, function: str, variable: str, ctx: int = 0) -> Set[AbstractObject]:
        """Objects a variable may point to (offsets dropped), for tests."""
        key: VarKey = (function, ctx, variable)
        if (function, ctx, variable) not in self.var_pts and function == "":
            key = ("", 0, variable)
        return {obj for obj, _ in self.var_pts.get(key, frozenset())}

    def points_to_anywhere(self, function: str, variable: str) -> Set[AbstractObject]:
        """Union of a variable's points-to over all contexts."""
        result: Set[AbstractObject] = set()
        for (fn, _, var), locations in self.var_pts.items():
            if fn == function and var == variable:
                result.update(obj for obj, _ in locations)
        return result

    @property
    def num_regions(self) -> int:
        return len(self.regions)

    @property
    def num_objects(self) -> int:
        return len(self.objects)


class _Engine:
    def __init__(
        self,
        graph: CallGraph,
        interface: RegionInterface,
        options: AnalysisOptions,
        numbering: Optional[ContextNumbering] = None,
        meter: Optional[BudgetMeter] = None,
    ) -> None:
        self.graph = graph
        self.module = graph.module
        self.interface = interface
        self.options = options
        self.meter = meter
        self.numbering = numbering or number_contexts(
            graph,
            context_sensitive=options.context_sensitive,
            max_contexts=options.max_contexts,
        )
        self.var_pts: Dict[VarKey, Set[Location]] = {}
        self.heap_pts: Dict[Tuple[AbstractObject, Optional[int]], Set[Location]] = {}
        self.regions: Set[AbstractObject] = {ROOT_REGION}
        self.objects: Set[AbstractObject] = set()
        self.subregion: Set[Tuple[AbstractObject, AbstractObject]] = set()
        self.ownership: Set[Tuple[AbstractObject, AbstractObject]] = set()
        self.accesses: Set[
            Tuple[AbstractObject, Optional[int], AbstractObject]
        ] = set()
        self.access_sites: Dict[
            Tuple[AbstractObject, Optional[int], AbstractObject], Set[int]
        ] = {}
        self.cleanups: Set[Tuple[AbstractObject, str, AbstractObject]] = set()
        self._stack_sites: Dict[Tuple[str, str], int] = {}
        self._changed = False
        # Derived-fact counter for budget accounting (points-to tuples
        # plus effect tuples); charged incrementally against the meter.
        self._derived = 0
        self._charged = 0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _obj_ctx(self, ctx: int) -> int:
        return ctx if self.options.heap_cloning else 0

    def _norm_offset(self, offset: Optional[int]) -> Optional[int]:
        if not self.options.field_sensitive:
            return 0
        if offset is not None and abs(offset) > self.options.max_field_offset:
            return None
        return offset

    def _var_key(self, function: str, ctx: int, operand) -> Optional[VarKey]:
        if isinstance(operand, Temp):
            return (function, ctx, f"t{operand.id}")
        if isinstance(operand, VarOp):
            if operand.kind == "global":
                return ("", 0, operand.name)
            return (function, ctx, operand.name)
        return None

    def _value(self, function: str, ctx: int, operand: Operand) -> Set[Location]:
        if isinstance(operand, (Temp, VarOp)):
            key = self._var_key(function, ctx, operand)
            assert key is not None
            return self.var_pts.get(key, set())
        if isinstance(operand, NullConst):
            return {(NULL_OBJECT, 0)}
        if isinstance(operand, StrConst):
            obj = AbstractObject("string", operand.site, 0, f"str{operand.site}")
            if obj not in self.objects:
                self.objects.add(obj)
                self._changed = True
            return {(obj, 0)}
        if isinstance(operand, FuncAddr):
            return {(AbstractObject("func", 0, 0, f"&{operand.name}"), 0)}
        return set()  # integer constants

    def _add_var(self, key: VarKey, locations: Iterable[Location]) -> None:
        bucket = self.var_pts.setdefault(key, set())
        before = len(bucket)
        bucket.update(locations)
        if len(bucket) != before:
            self._changed = True
            self._derived += len(bucket) - before

    def _add_heap(
        self, slot: Tuple[AbstractObject, Optional[int]], locations: Iterable[Location]
    ) -> None:
        bucket = self.heap_pts.setdefault(slot, set())
        before = len(bucket)
        bucket.update(locations)
        if len(bucket) != before:
            self._changed = True
            self._derived += len(bucket) - before

    def _heap_read(
        self, obj: AbstractObject, offset: Optional[int]
    ) -> Set[Location]:
        if not self.options.track_unknown_offsets:
            if offset is None:
                return set()
            return self.heap_pts.get((obj, offset), set())
        if offset is None:
            # Unknown offset reads every field, including the unknown slot.
            result: Set[Location] = set()
            for (other, _), locations in self.heap_pts.items():
                if other == obj:
                    result.update(locations)
            return result
        return self.heap_pts.get((obj, offset), set()) | self.heap_pts.get(
            (obj, None), set()
        )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> PointerAnalysisResult:
        # Pre-index return operands per function.
        self._returns: Dict[str, List[Operand]] = {}
        for name in self.graph.reachable:
            function = self.module.functions.get(name)
            if function is None:
                continue
            for instr in function.instrs:
                if isinstance(instr, Return) and instr.src is not None:
                    self._returns.setdefault(name, []).append(instr.src)

        iterations = 0
        with trace_span("pointer.solve") as span:
            while True:
                iterations += 1
                self._changed = False
                for name in sorted(self.graph.reachable):
                    function = self.module.functions.get(name)
                    if function is None:
                        continue
                    for ctx in range(self.numbering.contexts_of(name)):
                        self._process_function(name, ctx, function)
                    if self.meter is not None:
                        self._charge_budget()
                if not self._changed:
                    break
            span.set(
                iterations=iterations,
                regions=len(self.regions),
                objects=len(self.objects),
            )

        return PointerAnalysisResult(
            graph=self.graph,
            numbering=self.numbering,
            options=self.options,
            interface=self.interface,
            var_pts={k: frozenset(v) for k, v in self.var_pts.items()},
            heap_pts={k: frozenset(v) for k, v in self.heap_pts.items()},
            regions=frozenset(self.regions),
            objects=frozenset(self.objects),
            subregion=frozenset(self.subregion),
            ownership=frozenset(self.ownership),
            accesses=frozenset(self.accesses),
            access_sites={
                k: frozenset(v) for k, v in self.access_sites.items()
            },
            cleanups=frozenset(self.cleanups),
            iterations=iterations,
        )

    def _charge_budget(self) -> None:
        """Cooperative checkpoint: runs after each function is processed."""
        assert self.meter is not None
        self.meter.charge_tuples(self._derived - self._charged, "correlation")
        self._charged = self._derived
        self.meter.charge_objects(
            len(self.objects) + len(self.regions), "correlation"
        )

    def _process_function(self, name: str, ctx: int, function) -> None:
        for instr in function.instrs:
            if isinstance(instr, Assign):
                key = self._var_key(name, ctx, instr.dst)
                if key is not None:
                    self._add_var(key, self._value(name, ctx, instr.src))
            elif isinstance(instr, AddrOf):
                self._process_addrof(name, ctx, instr)
            elif isinstance(instr, Add):
                self._process_add(name, ctx, instr)
            elif isinstance(instr, Load):
                self._process_load(name, ctx, instr)
            elif isinstance(instr, Store):
                self._process_store(name, ctx, instr)
            elif isinstance(instr, Call):
                self._process_call(name, ctx, instr)

    def _process_addrof(self, name: str, ctx: int, instr: AddrOf) -> None:
        var = instr.var
        if var.kind == "global":
            # One canonical object per global: every &g, from any
            # function, must denote the same storage.
            site = self._stack_sites.setdefault(("", var.name), instr.uid)
            obj = AbstractObject("global", site, 0, f"&{var.name}")
        else:
            site_key = (name, var.name)
            site = self._stack_sites.setdefault(site_key, instr.uid)
            obj = AbstractObject(
                "stack", site, self._obj_ctx(ctx), f"&{name}.{var.name}"
            )
        if obj not in self.objects:
            self.objects.add(obj)
        key = self._var_key(name, ctx, instr.dst)
        if key is not None:
            self._add_var(key, {(obj, 0)})

    def _process_add(self, name: str, ctx: int, instr: Add) -> None:
        key = self._var_key(name, ctx, instr.dst)
        if key is None:
            return
        shifted: Set[Location] = set()
        for obj, offset in self._value(name, ctx, instr.base):
            if instr.offset is None or offset is None:
                shifted.add((obj, self._norm_offset(None)))
            else:
                shifted.add((obj, self._norm_offset(offset + instr.offset)))
        self._add_var(key, shifted)

    def _process_load(self, name: str, ctx: int, instr: Load) -> None:
        key = self._var_key(name, ctx, instr.dst)
        if key is None:
            return
        result: Set[Location] = set()
        for obj, offset in self._value(name, ctx, instr.addr):
            if obj.kind in ("null", "func"):
                continue
            result.update(self._heap_read(obj, offset))
        self._add_var(key, result)

    def _process_store(self, name: str, ctx: int, instr: Store) -> None:
        values = self._value(name, ctx, instr.src)
        if not values:
            return
        for obj, offset in self._value(name, ctx, instr.addr):
            if obj.kind in ("null", "func"):
                continue
            if offset is None and not self.options.track_unknown_offsets:
                continue
            self._add_heap((obj, offset), values)
            # Record the access effect: a normal object holding a pointer
            # to another object or to a region (sigma in the paper).
            if obj.is_normal:
                for target, _ in values:
                    if target.kind in ("null", "func"):
                        continue
                    access = (obj, offset, target)
                    if access not in self.accesses:
                        self.accesses.add(access)
                        self._changed = True
                        self._derived += 1
                    self.access_sites.setdefault(access, set()).add(instr.uid)

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _process_call(self, name: str, ctx: int, instr: Call) -> None:
        targets = self.graph.targets(instr.uid)
        for target in targets:
            if target in self.interface.creates:
                self._interface_create(name, ctx, instr, target)
            elif target in self.interface.allocs:
                self._interface_alloc(name, ctx, instr, target)
            elif target in self.interface.cleanups:
                self._interface_cleanup(name, ctx, instr, target)
            # deletes have no static points-to effect.
            if self.module.is_defined(target):
                self._propagate_call(name, ctx, instr, target)
        self._propagate_implicit(name, ctx, instr, targets)

    def _region_args(
        self, name: str, ctx: int, operand: Operand
    ) -> Tuple[Set[AbstractObject], bool]:
        """Regions an operand may denote, plus whether it may be null."""
        regions: Set[AbstractObject] = set()
        may_be_null = isinstance(operand, NullConst)
        for obj, offset in self._value(name, ctx, operand):
            if obj.is_region and (offset == 0 or offset is None):
                regions.add(obj)
            elif obj.kind == "null":
                may_be_null = True
        return regions, may_be_null

    def _interface_create(
        self, name: str, ctx: int, instr: Call, target: str
    ) -> None:
        spec = self.interface.creates[target]
        region = AbstractObject(
            "region", instr.uid, self._obj_ctx(ctx), f"{target}@{instr.loc.line}"
        )
        if region not in self.regions:
            self.regions.add(region)
            self._changed = True
        parents: Set[AbstractObject] = set()
        if spec.parent_arg is None:
            parents.add(ROOT_REGION)
        elif spec.parent_arg < len(instr.args):
            found, may_be_null = self._region_args(
                name, ctx, instr.args[spec.parent_arg]
            )
            parents |= found
            if may_be_null:
                parents.add(ROOT_REGION)
        for parent in parents:
            if parent != region:
                edge = (region, parent)
                if edge not in self.subregion:
                    self.subregion.add(edge)
                    self._changed = True
        if spec.out_arg is None:
            if instr.dst is not None:
                key = self._var_key(name, ctx, instr.dst)
                if key is not None:
                    self._add_var(key, {(region, 0)})
        elif spec.out_arg < len(instr.args):
            for obj, offset in self._value(name, ctx, instr.args[spec.out_arg]):
                if obj.kind in ("null", "func"):
                    continue
                self._add_heap((obj, offset), {(region, 0)})

    def _interface_alloc(
        self, name: str, ctx: int, instr: Call, target: str
    ) -> None:
        spec = self.interface.allocs[target]
        obj = AbstractObject(
            "heap", instr.uid, self._obj_ctx(ctx), f"{target}@{instr.loc.line}"
        )
        if obj not in self.objects:
            self.objects.add(obj)
            self._changed = True
        owners: Set[AbstractObject] = set()
        if spec.region_arg < len(instr.args):
            found, may_be_null = self._region_args(
                name, ctx, instr.args[spec.region_arg]
            )
            owners |= found
            if may_be_null:
                owners.add(ROOT_REGION)
        for owner in owners:
            pair = (owner, obj)
            if pair not in self.ownership:
                self.ownership.add(pair)
                self._changed = True
        if instr.dst is not None:
            key = self._var_key(name, ctx, instr.dst)
            if key is not None:
                self._add_var(key, {(obj, 0)})

    def _interface_cleanup(
        self, name: str, ctx: int, instr: Call, target: str
    ) -> None:
        spec = self.interface.cleanups[target]
        regions: Set[AbstractObject] = set()
        if spec.region_arg < len(instr.args):
            regions, _ = self._region_args(name, ctx, instr.args[spec.region_arg])
        data_objs = {
            obj
            for obj, _ in self._value(name, ctx, instr.args[spec.data_arg])
            if obj.is_normal
        } if spec.data_arg < len(instr.args) else set()
        fn_names: Set[str] = set()
        for position in spec.fn_args:
            if position < len(instr.args):
                operand = instr.args[position]
                if isinstance(operand, FuncAddr):
                    fn_names.add(operand.name)
                else:
                    for obj, _ in self._value(name, ctx, operand):
                        if obj.kind == "func":
                            fn_names.add(obj.name.lstrip("&"))
        for region in regions:
            for fn_name in fn_names:
                for data in data_objs or {NULL_OBJECT}:
                    entry = (region, fn_name, data)
                    if entry not in self.cleanups:
                        self.cleanups.add(entry)
                        self._changed = True

    def _propagate_call(
        self, name: str, ctx: int, instr: Call, target: str
    ) -> None:
        callee_ctx = self.numbering.callee_context(ctx, instr.uid, target)
        if callee_ctx is None:
            return
        function = self.module.functions[target]
        for position, arg in enumerate(instr.args):
            if position >= len(function.params):
                break
            values = self._value(name, ctx, arg)
            if values:
                self._add_var(
                    (target, callee_ctx, function.params[position]), values
                )
        if instr.dst is not None and target in self._returns:
            key = self._var_key(name, ctx, instr.dst)
            if key is not None:
                for operand in self._returns[target]:
                    self._add_var(
                        key, self._value(target, callee_ctx, operand)
                    )

    def _propagate_implicit(
        self, name: str, ctx: int, instr: Call, targets: FrozenSet[str]
    ) -> None:
        registry = getattr(self.graph, "registry", None)
        # The registry travels with the call-graph builder; fall back to
        # reconstructing from implicit edges when absent.
        from repro.callgraph.implicit import default_registry

        if registry is None:
            registry = default_registry()
        for target in targets:
            for spec in registry.specs(target):
                if spec.fn_arg >= len(instr.args):
                    continue
                entry_names: Set[str] = set()
                operand = instr.args[spec.fn_arg]
                if isinstance(operand, FuncAddr):
                    entry_names.add(operand.name)
                else:
                    for obj, _ in self._value(name, ctx, operand):
                        if obj.kind == "func":
                            entry_names.add(obj.name.lstrip("&"))
                for entry in entry_names:
                    function = self.module.functions.get(entry)
                    if function is None:
                        continue
                    callee_ctx = self.numbering.callee_context(
                        ctx, instr.uid, entry
                    )
                    if callee_ctx is None:
                        callee_ctx = 0
                    for src_arg, param_idx in spec.data_flow:
                        if (
                            src_arg < len(instr.args)
                            and param_idx < len(function.params)
                        ):
                            values = self._value(name, ctx, instr.args[src_arg])
                            if values:
                                self._add_var(
                                    (
                                        entry,
                                        callee_ctx,
                                        function.params[param_idx],
                                    ),
                                    values,
                                )


def analyze_pointers(
    graph: CallGraph,
    interface: RegionInterface,
    options: Optional[AnalysisOptions] = None,
    numbering: Optional[ContextNumbering] = None,
    meter: Optional[BudgetMeter] = None,
) -> PointerAnalysisResult:
    """Run the effect-computation phase over a pruned call graph.

    ``meter`` adds cooperative budget checkpoints (wall clock, derived
    tuples, abstract objects) at per-function granularity inside the
    fixpoint, so a blowup raises ``BudgetExceeded`` promptly instead of
    running away.
    """
    if options is None:
        options = AnalysisOptions()
    return _Engine(graph, interface, options, numbering, meter).run()
