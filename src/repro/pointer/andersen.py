"""The context-insensitive Andersen baseline (Section 4.3).

"We briefly describe a standard Anderson-style analysis" -- the degenerate
configuration of the cloned engine: one context per function, no heap
cloning.  Kept as a named entry point because the paper (and our
ablations) compare against it, and because it is the scalable fallback
for very large synthetic packages.
"""

from __future__ import annotations

from typing import Optional

from repro.callgraph import CallGraph
from repro.interfaces import RegionInterface
from repro.pointer.analysis import (
    AnalysisOptions,
    PointerAnalysisResult,
    analyze_pointers,
)

__all__ = ["andersen_options", "analyze_andersen"]


def andersen_options(field_sensitive: bool = True) -> AnalysisOptions:
    """Options for the plain Andersen configuration."""
    return AnalysisOptions(
        context_sensitive=False,
        heap_cloning=False,
        field_sensitive=field_sensitive,
    )


def analyze_andersen(
    graph: CallGraph,
    interface: RegionInterface,
    field_sensitive: bool = True,
) -> PointerAnalysisResult:
    """Run the context-insensitive baseline analysis."""
    return analyze_pointers(
        graph, interface, andersen_options(field_sensitive=field_sensitive)
    )
