"""Cloning-based context numbering (Section 5.2, Whaley-Lam).

Transforms the context-insensitive call graph into a context-sensitive one
``cc : C x I x C x F`` by numbering call paths: the builder "reduces
strongly connected components in call into single nodes, finds a
topological order, and then numbers individual call paths as calling
contexts".  Each context number of a function names one call path reaching
it from the program entry; calls inside one SCC do not multiply contexts
(all members of a recursive component share their component's paths).

Because context counts are products along paths they grow exponentially;
the paper stores ``cc`` in BDD finite domains, and
:meth:`ContextNumbering.cc_relation` reproduces exactly that encoding on
our BDD engine.  A ``max_contexts`` clamp folds overflowing path numbers
modulo the cap -- merging contexts is a sound (precision-losing)
over-approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.bdd import BDD, DomainSpace
from repro.callgraph import CallGraph
from repro.obs.trace import trace_span
from repro.util.budget import BudgetMeter
from repro.util.graph import condensation

__all__ = ["ContextNumbering", "number_contexts"]


@dataclass
class ContextNumbering:
    """Per-function context counts plus the ``cc`` call-path mapping."""

    entry_functions: Tuple[str, ...]
    num_contexts: Dict[str, int] = field(default_factory=dict)
    # (call uid, callee) -> (base offset, caller function, same_scc flag)
    edge_info: Dict[Tuple[int, str], Tuple[int, str, bool]] = field(
        default_factory=dict
    )
    max_contexts: int = 1 << 16
    clamped: Set[str] = field(default_factory=set)

    def contexts_of(self, function: str) -> int:
        return self.num_contexts.get(function, 1)

    def callee_context(
        self, caller_context: int, call_uid: int, callee: str
    ) -> Optional[int]:
        """Map a caller context through a call edge (the ``cc`` relation)."""
        info = self.edge_info.get((call_uid, callee))
        if info is None:
            return None
        base, _, same_scc = info
        if same_scc:
            return caller_context
        return (base + caller_context) % self.contexts_of(callee)

    def cc_tuples(
        self, graph: CallGraph
    ) -> Iterator[Tuple[int, int, int, str]]:
        """Enumerate ``cc(c0, i, c1, f)`` tuples (can be exponential!)."""
        for (uid, callee), (base, caller, same_scc) in sorted(
            self.edge_info.items()
        ):
            for caller_context in range(self.contexts_of(caller)):
                callee_context = self.callee_context(caller_context, uid, callee)
                if callee_context is not None:
                    yield caller_context, uid, callee_context, callee

    def cc_relation(
        self, graph: CallGraph, space: Optional[DomainSpace] = None
    ):
        """Store ``cc`` in BDD finite domains, bddbddb-style.

        Returns ``(space, instances, node)`` where instances are
        ``(C0, I0, C1, F0)``.  Functions and instructions are indexed
        densely in sorted order.
        """
        functions = sorted(self.num_contexts)
        function_index = {name: i for i, name in enumerate(functions)}
        uids = sorted({uid for uid, _ in self.edge_info})
        uid_index = {uid: i for i, uid in enumerate(uids)}
        max_context = max(self.num_contexts.values(), default=1)
        if space is None:
            space = DomainSpace(BDD())
        space.declare("C", max(max_context, 1), instances=2)
        space.declare("I", max(len(uids), 1))
        space.declare("F", max(len(functions), 1))
        c0 = space.instance("C", 0)
        c1 = space.instance("C", 1)
        i0 = space.instance("I", 0)
        f0 = space.instance("F", 0)
        node = space.bdd.FALSE
        for caller_ctx, uid, callee_ctx, callee in self.cc_tuples(graph):
            cube = space.encode_tuple(
                [c0, i0, c1, f0],
                [caller_ctx, uid_index[uid], callee_ctx, function_index[callee]],
            )
            node = space.bdd.apply_or(node, cube)
        return space, (c0, i0, c1, f0), node

    @property
    def total_contexts(self) -> int:
        return sum(self.num_contexts.values())


def number_contexts(
    graph: CallGraph,
    context_sensitive: bool = True,
    max_contexts: int = 1 << 16,
    meter: Optional[BudgetMeter] = None,
) -> ContextNumbering:
    """Number call paths over the pruned call graph.

    With ``context_sensitive=False`` every function gets a single context
    and every edge maps it to 0 (the context-insensitive degenerate case,
    used by the Andersen baseline and the sensitivity ablation).

    ``meter`` charges the running context total against the budget's
    ``max_contexts`` limit: unlike the ``max_contexts`` *clamp* (which
    folds overflowing path numbers and keeps going), the budget raises a
    structured ``BudgetExceeded`` so the driver can degrade precision.
    """
    with trace_span(
        "contexts.number", sensitive=context_sensitive
    ) as span:
        numbering = _number_contexts(
            graph, context_sensitive, max_contexts, meter
        )
        span.set(
            contexts=numbering.total_contexts,
            clamped=len(numbering.clamped),
        )
        return numbering


def _number_contexts(
    graph: CallGraph,
    context_sensitive: bool,
    max_contexts: int,
    meter: Optional[BudgetMeter],
) -> ContextNumbering:
    entries = tuple(
        name
        for name in (graph.entry, "_global_init")
        if name in graph.module.functions
    ) or (graph.entry,)
    numbering = ContextNumbering(entries, max_contexts=max_contexts)

    # Call edges among reachable defined functions, with per-site callees.
    site_edges: List[Tuple[str, int, str]] = []
    for name in sorted(graph.reachable):
        function = graph.module.functions.get(name)
        if function is None:
            continue
        numbering.num_contexts[name] = 1
        for call in function.calls():
            for target in sorted(graph.targets(call.uid)):
                if (
                    target in graph.reachable
                    and graph.module.is_defined(target)
                ):
                    site_edges.append((name, call.uid, target))

    if not context_sensitive:
        for caller, uid, callee in site_edges:
            numbering.edge_info[(uid, callee)] = (0, caller, True)
        return numbering

    successors: Dict[str, Set[str]] = {
        name: set() for name in numbering.num_contexts
    }
    for caller, _, callee in site_edges:
        successors[caller].add(callee)
    components, component_of, dag = condensation(successors)

    # Components in topological order (callers before callees): Tarjan
    # emits dependencies (callees) first, so reverse.
    order = list(reversed(range(len(components))))

    # Count paths component by component; edges within a component map a
    # context to itself.
    component_contexts: Dict[int, int] = {}
    incoming: Dict[int, List[Tuple[str, int, str]]] = {
        i: [] for i in range(len(components))
    }
    for caller, uid, callee in site_edges:
        a, b = component_of[caller], component_of[callee]
        if a != b:
            incoming[b].append((caller, uid, callee))

    entry_components = {component_of[e] for e in entries if e in component_of}
    running_total = 0
    for comp in order:
        total = 0
        for caller, uid, callee in sorted(
            incoming[comp], key=lambda e: (e[1], e[2])
        ):
            base = total
            total += component_contexts[component_of[caller]]
            numbering.edge_info[(uid, callee)] = (base, caller, False)
        if comp in entry_components or total == 0:
            total += 1  # the path that starts at an entry point
        if total > numbering.max_contexts:
            numbering.clamped.update(components[comp])
            total = numbering.max_contexts
        component_contexts[comp] = total
        for member in components[comp]:
            numbering.num_contexts[member] = total
            running_total += total
            if meter is not None:
                meter.charge_contexts(running_total, "context-cloning")

    # Intra-component edges: identity context mapping.
    for caller, uid, callee in site_edges:
        if component_of[caller] == component_of[callee]:
            numbering.edge_info[(uid, callee)] = (0, caller, True)
    return numbering
