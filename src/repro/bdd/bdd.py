"""A reduced ordered binary decision diagram (ROBDD) engine.

RegionWiz stores its exponential context-sensitive relations (the call graph
``cc``, points-to sets, and the subregion/ownership/heap effects) in BDD
finite domains, following bddbddb/BuDDy.  This module is the BuDDy
substitute: a pure-Python ROBDD manager with the operations the Datalog
solver needs -- ``ite``, the binary apply operators, existential and
universal quantification, variable renaming, restriction, satisfying
assignment counting and enumeration.

Nodes are interned integers.  The terminals are ``BDD.FALSE == 0`` and
``BDD.TRUE == 1``; every other node is a triple ``(level, low, high)``
interned in a unique table, so structural equality is pointer equality and
``ite`` can be memoised by node id.

Variable *levels* are the BDD order: smaller level means nearer the root.
Callers (see :mod:`repro.bdd.domain`) decide how logical domains map onto
levels; the engine itself is order-agnostic.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Sequence, Tuple

__all__ = ["BDD", "BDDError"]


class BDDError(Exception):
    """Raised on invalid BDD operations (bad levels, foreign nodes...)."""


# Binary apply operator codes.  Using small ints keeps cache keys compact.
_OP_AND = 0
_OP_OR = 1
_OP_XOR = 2
_OP_DIFF = 3  # a and not b
_OP_IMP = 4  # not a or b
_OP_BIIMP = 5  # a xnor b

_TERMINAL_OPS: Dict[int, Callable[[int, int], int]] = {
    _OP_AND: lambda a, b: a & b,
    _OP_OR: lambda a, b: a | b,
    _OP_XOR: lambda a, b: a ^ b,
    _OP_DIFF: lambda a, b: a & (1 - b),
    _OP_IMP: lambda a, b: (1 - a) | b,
    _OP_BIIMP: lambda a, b: 1 - (a ^ b),
}


class BDD:
    """A BDD manager: owns the node store, unique table and operation caches.

    Nodes from one manager must never be mixed with another manager's nodes;
    all operations take and return plain ``int`` node handles relative to
    this manager.
    """

    FALSE = 0
    TRUE = 1

    def __init__(self, num_vars: int = 0) -> None:
        # Parallel arrays: node i is (level[i], low[i], high[i]).
        # Entries 0/1 are the terminals; their level is a sentinel larger
        # than any variable level so cofactor walks terminate naturally.
        self._level: List[int] = [2**30, 2**30]
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple[int, int, int], int] = {}
        self._quant_cache: Dict[Tuple[int, int, frozenset, int], int] = {}
        self._rename_cache: Dict[Tuple[int, Tuple[Tuple[int, int], ...]], int] = {}
        # Operation-cache telemetry: lookups/hits across all memoized
        # recursions (ite, apply, quantification, relprod, rename).
        self.op_lookups = 0
        self.op_hits = 0
        self._num_vars = 0
        self._temp_pool: List[int] = []
        if num_vars:
            self.extend(num_vars)

    # ------------------------------------------------------------------
    # Node store
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Number of variables (levels) currently declared."""
        return self._num_vars

    @property
    def num_nodes(self) -> int:
        """Total interned nodes including the two terminals."""
        return len(self._level)

    def extend(self, count: int) -> int:
        """Declare ``count`` more variables; return the first new level."""
        if count < 0:
            raise BDDError("cannot extend by a negative variable count")
        first = self._num_vars
        self._num_vars += count
        return first

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def level_of(self, node: int) -> int:
        """The root variable level of ``node`` (sentinel for terminals)."""
        return self._level[node]

    def var(self, level: int) -> int:
        """The BDD for the single variable at ``level``."""
        self._check_level(level)
        return self._mk(level, self.FALSE, self.TRUE)

    def nvar(self, level: int) -> int:
        """The BDD for the negation of the variable at ``level``."""
        self._check_level(level)
        return self._mk(level, self.TRUE, self.FALSE)

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self._num_vars:
            raise BDDError(
                f"variable level {level} out of range [0, {self._num_vars})"
            )

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h``."""
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        self.op_lookups += 1
        cached = self._ite_cache.get(key)
        if cached is not None:
            self.op_hits += 1
            return cached
        level = min(self._level[f], self._level[g], self._level[h])
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        result = self._mk(
            level, self.ite(f0, g0, h0), self.ite(f1, g1, h1)
        )
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node: int, level: int) -> Tuple[int, int]:
        if self._level[node] == level:
            return self._low[node], self._high[node]
        return node, node

    def _apply(self, op: int, a: int, b: int) -> int:
        if a <= 1 and b <= 1:
            return _TERMINAL_OPS[op](a, b)
        # Short circuits per operator.
        if op == _OP_AND:
            if a == self.FALSE or b == self.FALSE:
                return self.FALSE
            if a == self.TRUE:
                return b
            if b == self.TRUE:
                return a
            if a == b:
                return a
        elif op == _OP_OR:
            if a == self.TRUE or b == self.TRUE:
                return self.TRUE
            if a == self.FALSE:
                return b
            if b == self.FALSE:
                return a
            if a == b:
                return a
        elif op == _OP_XOR:
            if a == b:
                return self.FALSE
            if a == self.FALSE:
                return b
            if b == self.FALSE:
                return a
        elif op == _OP_DIFF:
            if a == self.FALSE or b == self.TRUE or a == b:
                return self.FALSE
            if b == self.FALSE:
                return a
        # Commutative operators get a canonical argument order.
        if op in (_OP_AND, _OP_OR, _OP_XOR, _OP_BIIMP) and a > b:
            a, b = b, a
        key = (op, a, b)
        self.op_lookups += 1
        cached = self._apply_cache.get(key)
        if cached is not None:
            self.op_hits += 1
            return cached
        level = min(self._level[a], self._level[b])
        a0, a1 = self._cofactors(a, level)
        b0, b1 = self._cofactors(b, level)
        result = self._mk(
            level, self._apply(op, a0, b0), self._apply(op, a1, b1)
        )
        self._apply_cache[key] = result
        return result

    # Convenience wrappers -------------------------------------------------

    def apply_and(self, a: int, b: int) -> int:
        return self._apply(_OP_AND, a, b)

    def apply_or(self, a: int, b: int) -> int:
        return self._apply(_OP_OR, a, b)

    def apply_xor(self, a: int, b: int) -> int:
        return self._apply(_OP_XOR, a, b)

    def apply_diff(self, a: int, b: int) -> int:
        """``a AND NOT b`` (set difference)."""
        return self._apply(_OP_DIFF, a, b)

    def apply_imp(self, a: int, b: int) -> int:
        return self._apply(_OP_IMP, a, b)

    def apply_biimp(self, a: int, b: int) -> int:
        return self._apply(_OP_BIIMP, a, b)

    def negate(self, a: int) -> int:
        return self._apply(_OP_XOR, a, self.TRUE)

    def conjoin(self, nodes: Iterable[int]) -> int:
        result = self.TRUE
        for node in nodes:
            result = self.apply_and(result, node)
            if result == self.FALSE:
                break
        return result

    def disjoin(self, nodes: Iterable[int]) -> int:
        result = self.FALSE
        for node in nodes:
            result = self.apply_or(result, node)
            if result == self.TRUE:
                break
        return result

    # ------------------------------------------------------------------
    # Quantification
    # ------------------------------------------------------------------

    def exist(self, node: int, levels: Iterable[int]) -> int:
        """Existentially quantify the variables at ``levels`` out of ``node``."""
        return self._quantify(node, frozenset(levels), _OP_OR)

    def forall(self, node: int, levels: Iterable[int]) -> int:
        """Universally quantify the variables at ``levels`` out of ``node``."""
        return self._quantify(node, frozenset(levels), _OP_AND)

    def _quantify(self, node: int, levels: frozenset, op: int) -> int:
        if node <= 1 or not levels:
            return node
        max_level = max(levels)
        return self._quant_rec(node, levels, max_level, op)

    def _quant_rec(self, node: int, levels: frozenset, max_level: int, op: int) -> int:
        if node <= 1:
            return node
        level = self._level[node]
        if level > max_level:
            return node
        key = (op, node, levels, 0)
        self.op_lookups += 1
        cached = self._quant_cache.get(key)
        if cached is not None:
            self.op_hits += 1
            return cached
        low = self._quant_rec(self._low[node], levels, max_level, op)
        high = self._quant_rec(self._high[node], levels, max_level, op)
        if level in levels:
            result = self._apply(op, low, high)
        else:
            result = self._mk(level, low, high)
        self._quant_cache[key] = result
        return result

    def rel_product(self, a: int, b: int, levels: Iterable[int]) -> int:
        """Relational product: ``exists levels . a AND b``.

        The workhorse of Datalog joins; fused so conjunction results never
        materialize variables that are immediately quantified away.
        """
        level_set = frozenset(levels)
        if not level_set:
            return self.apply_and(a, b)
        max_level = max(level_set)
        return self._relprod_rec(a, b, level_set, max_level)

    def _relprod_rec(self, a: int, b: int, levels: frozenset, max_level: int) -> int:
        if a == self.FALSE or b == self.FALSE:
            return self.FALSE
        if a == self.TRUE and b == self.TRUE:
            return self.TRUE
        if a > b:  # AND is commutative; canonicalize for the cache
            a, b = b, a
        if min(self._level[a], self._level[b]) > max_level:
            return self.apply_and(a, b)
        key = (a, b, levels, 1)
        self.op_lookups += 1
        cached = self._quant_cache.get(key)
        if cached is not None:
            self.op_hits += 1
            return cached
        level = min(self._level[a], self._level[b])
        a0, a1 = self._cofactors(a, level)
        b0, b1 = self._cofactors(b, level)
        low = self._relprod_rec(a0, b0, levels, max_level)
        if level in levels:
            if low == self.TRUE:
                result = self.TRUE
            else:
                high = self._relprod_rec(a1, b1, levels, max_level)
                result = self.apply_or(low, high)
        else:
            high = self._relprod_rec(a1, b1, levels, max_level)
            result = self._mk(level, low, high)
        self._quant_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Renaming and restriction
    # ------------------------------------------------------------------

    def rename(self, node: int, mapping: Dict[int, int]) -> int:
        """Rename variables per ``mapping`` (old level -> new level).

        Fast path: when the mapping is monotone on the node's support (the
        relative order of mapped variables is unchanged and no mapped
        variable crosses an unmapped one), a single structural walk
        suffices.  Otherwise falls back to the always-correct
        compose-with-equality construction:
        ``exists old . node AND (old1 <-> new1) AND ...``.
        """
        if node <= 1 or not mapping:
            return node
        relevant = {
            old: new for old, new in mapping.items() if old != new
        }
        if not relevant:
            return node
        support = self.support(node)
        relevant = {o: n for o, n in relevant.items() if o in support}
        if not relevant:
            return node
        for new in relevant.values():
            self._check_level(new)
        if self._rename_is_monotone(support, relevant):
            key = (node, tuple(sorted(relevant.items())))
            self.op_lookups += 1
            cached = self._rename_cache.get(key)
            if cached is not None:
                self.op_hits += 1
                return cached
            result = self._rename_walk(node, relevant, {})
            self._rename_cache[key] = result
            return result
        return self._rename_general(node, relevant)

    def _rename_is_monotone(self, support: frozenset, mapping: Dict[int, int]) -> bool:
        # Build the level permutation over the support and check it is
        # strictly increasing, and that targets don't collide with
        # unmapped support variables.
        unmapped = {lvl for lvl in support if lvl not in mapping}
        targets = set(mapping.values())
        if targets & unmapped:
            return False
        if len(targets) != len(mapping):
            return False
        image = sorted(
            (lvl, mapping.get(lvl, lvl)) for lvl in support
        )
        prev = -1
        for _, new in image:
            if new <= prev:
                return False
            prev = new
        return True

    def _rename_walk(self, node: int, mapping: Dict[int, int], memo: Dict[int, int]) -> int:
        if node <= 1:
            return node
        cached = memo.get(node)
        if cached is not None:
            return cached
        level = self._level[node]
        new_level = mapping.get(level, level)
        result = self._mk(
            new_level,
            self._rename_walk(self._low[node], mapping, memo),
            self._rename_walk(self._high[node], mapping, memo),
        )
        memo[node] = result
        return result

    def _rename_general(self, node: int, mapping: Dict[int, int]) -> int:
        sources = set(mapping)
        targets = set(mapping.values())
        support = self.support(node)
        if targets & (support - sources):
            raise BDDError(
                "rename target collides with an unmapped support variable"
            )
        if sources & targets:
            # Overlapping source/target sets (e.g. a swap): go through
            # temporary variables so each equality step is sound.  The
            # temp levels are reserved exclusively for renaming, so they
            # are always disjoint from caller variables.
            temps = self._temp_levels(len(mapping))
            ordered = sorted(mapping.items())
            to_temp = {old: temps[i] for i, (old, _) in enumerate(ordered)}
            from_temp = {temps[i]: new for i, (_, new) in enumerate(ordered)}
            staged = self._rename_equality(node, to_temp)
            return self._rename_equality(staged, from_temp)
        return self._rename_equality(node, mapping)

    def _temp_levels(self, count: int) -> List[int]:
        """Levels reserved for rename staging, grown on demand."""
        while len(self._temp_pool) < count:
            self._temp_pool.append(self.extend(1))
        return self._temp_pool[:count]

    def _rename_equality(self, node: int, mapping: Dict[int, int]) -> int:
        """``exists old . node AND (old <-> new)...`` for disjoint old/new."""
        equalities = self.TRUE
        for old, new in mapping.items():
            eq = self.apply_biimp(self.var(old), self.var(new))
            equalities = self.apply_and(equalities, eq)
        return self.rel_product(node, equalities, mapping.keys())

    def restrict(self, node: int, assignment: Dict[int, bool]) -> int:
        """Substitute constants for variables: cofactor w.r.t. ``assignment``."""
        if node <= 1 or not assignment:
            return node
        return self._restrict_rec(node, assignment, {})

    def _restrict_rec(self, node: int, assignment: Dict[int, bool], memo: Dict[int, int]) -> int:
        if node <= 1:
            return node
        cached = memo.get(node)
        if cached is not None:
            return cached
        level = self._level[node]
        if level in assignment:
            child = self._high[node] if assignment[level] else self._low[node]
            result = self._restrict_rec(child, assignment, memo)
        else:
            result = self._mk(
                level,
                self._restrict_rec(self._low[node], assignment, memo),
                self._restrict_rec(self._high[node], assignment, memo),
            )
        memo[node] = result
        return result

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def support(self, node: int) -> frozenset:
        """The set of variable levels ``node`` depends on."""
        seen = set()
        levels = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current <= 1 or current in seen:
                continue
            seen.add(current)
            levels.add(self._level[current])
            stack.append(self._low[current])
            stack.append(self._high[current])
        return frozenset(levels)

    def evaluate(self, node: int, assignment: Sequence[bool]) -> bool:
        """Evaluate under a total assignment indexed by level."""
        while node > 1:
            level = self._level[node]
            node = self._high[node] if assignment[level] else self._low[node]
        return node == self.TRUE

    def satcount(self, node: int, levels: Sequence[int]) -> int:
        """Count satisfying assignments over exactly ``levels``.

        ``levels`` must be a superset of the node's support.
        """
        level_list = sorted(set(levels))
        support = self.support(node)
        if not support <= set(level_list):
            raise BDDError("satcount levels must cover the node's support")
        index = {lvl: i for i, lvl in enumerate(level_list)}
        total = len(level_list)
        memo: Dict[int, int] = {}

        def count(n: int) -> int:
            # Number of solutions over variables at or below n's level,
            # normalized to "as if n sat at position index[level(n)]".
            if n == self.FALSE:
                return 0
            if n == self.TRUE:
                return 1
            if n in memo:
                return memo[n]
            lvl = self._level[n]
            result = 0
            for child in (self._low[n], self._high[n]):
                child_count = count(child)
                if child <= 1:
                    gap = total - index[lvl] - 1
                else:
                    gap = index[self._level[child]] - index[lvl] - 1
                result += child_count << gap
            memo[n] = result
            return result

        if node == self.FALSE:
            return 0
        if node == self.TRUE:
            return 1 << total
        return count(node) << index[self._level[node]]

    def sat_iter(self, node: int, levels: Sequence[int]) -> Iterator[Dict[int, bool]]:
        """Enumerate satisfying assignments as {level: bool} dicts.

        Unconstrained variables in ``levels`` are expanded to both values,
        so the iteration is exactly ``satcount`` assignments long.
        """
        level_list = sorted(set(levels))
        support = self.support(node)
        if not support <= set(level_list):
            raise BDDError("sat_iter levels must cover the node's support")

        def walk(n: int, idx: int, partial: Dict[int, bool]) -> Iterator[Dict[int, bool]]:
            if n == self.FALSE:
                return
            if idx == len(level_list):
                yield dict(partial)
                return
            level = level_list[idx]
            if n > 1 and self._level[n] == level:
                for value, child in ((False, self._low[n]), (True, self._high[n])):
                    partial[level] = value
                    yield from walk(child, idx + 1, partial)
                del partial[level]
            else:
                for value in (False, True):
                    partial[level] = value
                    yield from walk(n, idx + 1, partial)
                del partial[level]

        yield from walk(node, 0, {})

    def cube(self, assignment: Dict[int, bool]) -> int:
        """The conjunction of literals described by ``assignment``."""
        node = self.TRUE
        for level in sorted(assignment, reverse=True):
            self._check_level(level)
            if assignment[level]:
                node = self._mk(level, self.FALSE, node)
            else:
                node = self._mk(level, node, self.FALSE)
        return node

    def node_count(self, node: int) -> int:
        """Number of distinct internal nodes reachable from ``node``."""
        seen = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current <= 1 or current in seen:
                continue
            seen.add(current)
            stack.append(self._low[current])
            stack.append(self._high[current])
        return len(seen)

    def clear_caches(self) -> None:
        """Drop operation caches (the unique table is kept)."""
        self._ite_cache.clear()
        self._apply_cache.clear()
        self._quant_cache.clear()
        self._rename_cache.clear()
