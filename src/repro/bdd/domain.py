"""Finite domains over BDD variable blocks (BuDDy's ``fdd`` equivalent).

bddbddb-style analyses speak in *domains* (contexts ``C``, variables ``V``,
functions ``F``, heap objects ``H``, field offsets ``N``...), each with a
handful of *physical instances* (``C0``, ``C1``, ...) so a single relation
can mention the same domain type twice (e.g. the call-graph relation
``cc(C0, I0, C1, F0)``).  A :class:`DomainSpace` allocates BDD variable
blocks for instances and provides tuple encoding/decoding, equality
relations between instances, and instance-to-instance renaming maps.

Variable ordering matters enormously for BDD sizes (the paper notes
"BDD variable order can greatly affect efficiency of bddbddb"), so the
space supports two allocation policies:

* ``interleaved`` -- bit ``i`` of every instance of the same domain type is
  adjacent, which keeps equality/rename BDDs linear;
* ``sequential`` -- each instance occupies a contiguous block, the classic
  worst case for equality relations.

The ablation benchmark ``bench_ablation_bdd_order`` measures the difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.bdd.bdd import BDD, BDDError

__all__ = ["DomainType", "DomainInstance", "DomainSpace"]


@dataclass(frozen=True)
class DomainType:
    """A named domain type with a fixed size (number of encodable values)."""

    name: str
    size: int

    @property
    def bits(self) -> int:
        """Bits needed to encode values ``0..size-1`` (at least one).

        A size-1 domain deliberately gets one bit rather than zero: a
        0-bit block would make ``encode`` return TRUE (no literals to
        constrain), and TRUE-cube corner cases would then leak into every
        quantification and rename over the block.  The cost is one unused
        bit-pattern, which ``domain_constraint``/``tuples``/``count_tuples``
        already exclude as padding -- the same mechanism non-power-of-two
        sizes rely on.  Edge-case tests for sizes 1 and 2 live in
        ``tests/bdd/test_domain.py`` and ``tests/datalog/test_edge_cases.py``.
        """
        if self.size <= 1:
            return 1
        return (self.size - 1).bit_length()


@dataclass(frozen=True)
class DomainInstance:
    """A physical instance of a domain type: a concrete block of levels.

    ``levels[0]`` is the least significant bit.
    """

    type: DomainType
    index: int
    levels: Tuple[int, ...] = field(repr=False)

    @property
    def name(self) -> str:
        return f"{self.type.name}{self.index}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class DomainSpace:
    """Allocates domain instances on a :class:`BDD` and encodes tuples.

    Parameters
    ----------
    bdd:
        The manager to allocate variables on.
    ordering:
        ``"interleaved"`` (default) or ``"sequential"``; see module docs.
    """

    def __init__(self, bdd: BDD, ordering: str = "interleaved") -> None:
        if ordering not in ("interleaved", "sequential"):
            raise BDDError(f"unknown ordering policy: {ordering!r}")
        self.bdd = bdd
        self.ordering = ordering
        self._types: Dict[str, DomainType] = {}
        self._instances: Dict[Tuple[str, int], DomainInstance] = {}

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------

    def declare(self, name: str, size: int, instances: int = 1) -> DomainType:
        """Declare a domain type and allocate its physical instances."""
        if name in self._types:
            raise BDDError(f"domain type {name!r} already declared")
        if size < 1:
            raise BDDError(f"domain {name!r} must have at least one value")
        if instances < 1:
            raise BDDError(f"domain {name!r} needs at least one instance")
        dtype = DomainType(name, size)
        bits = dtype.bits
        if self.ordering == "interleaved":
            base = self.bdd.extend(bits * instances)
            for inst in range(instances):
                levels = tuple(
                    base + bit * instances + inst for bit in range(bits)
                )
                self._instances[(name, inst)] = DomainInstance(dtype, inst, levels)
        else:
            for inst in range(instances):
                base = self.bdd.extend(bits)
                levels = tuple(base + bit for bit in range(bits))
                self._instances[(name, inst)] = DomainInstance(dtype, inst, levels)
        self._types[name] = dtype
        return dtype

    def type(self, name: str) -> DomainType:
        return self._types[name]

    def instance(self, name: str, index: int = 0) -> DomainInstance:
        try:
            return self._instances[(name, index)]
        except KeyError:
            raise BDDError(f"no instance {name}{index} declared") from None

    def instances_of(self, name: str) -> List[DomainInstance]:
        return [
            inst
            for (tname, _), inst in sorted(self._instances.items())
            if tname == name
        ]

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode(self, instance: DomainInstance, value: int) -> int:
        """The cube BDD asserting ``instance == value``."""
        if not 0 <= value < instance.type.size:
            raise BDDError(
                f"value {value} out of range for domain {instance.type.name}"
                f" (size {instance.type.size})"
            )
        assignment = {
            level: bool((value >> bit) & 1)
            for bit, level in enumerate(instance.levels)
        }
        return self.bdd.cube(assignment)

    def encode_tuple(
        self, instances: Sequence[DomainInstance], values: Sequence[int]
    ) -> int:
        """The cube asserting each instance equals the paired value."""
        if len(instances) != len(values):
            raise BDDError("instance/value arity mismatch")
        assignment: Dict[int, bool] = {}
        for instance, value in zip(instances, values):
            if not 0 <= value < instance.type.size:
                raise BDDError(
                    f"value {value} out of range for {instance.name}"
                )
            for bit, level in enumerate(instance.levels):
                assignment[level] = bool((value >> bit) & 1)
        return self.bdd.cube(assignment)

    def decode(self, instance: DomainInstance, assignment: Dict[int, bool]) -> int:
        """Read an instance's value out of a total assignment."""
        value = 0
        for bit, level in enumerate(instance.levels):
            if assignment.get(level, False):
                value |= 1 << bit
        return value

    def domain_constraint(self, instance: DomainInstance) -> int:
        """BDD for ``instance < type.size`` (excludes unused bit patterns)."""
        size = instance.type.size
        if size == 1 << instance.type.bits:
            return self.bdd.TRUE
        return self.bdd.disjoin(
            self.encode(instance, value) for value in range(size)
        )

    # ------------------------------------------------------------------
    # Relations between instances
    # ------------------------------------------------------------------

    def equality(self, a: DomainInstance, b: DomainInstance) -> int:
        """BDD asserting two instances of the same type hold equal values."""
        if a.type is not b.type and a.type != b.type:
            raise BDDError(
                f"cannot equate instances of different types"
                f" ({a.type.name} vs {b.type.name})"
            )
        node = self.bdd.TRUE
        for la, lb in zip(reversed(a.levels), reversed(b.levels)):
            eq = self.bdd.apply_biimp(self.bdd.var(la), self.bdd.var(lb))
            node = self.bdd.apply_and(node, eq)
        return node

    def rename_map(
        self,
        sources: Sequence[DomainInstance],
        targets: Sequence[DomainInstance],
    ) -> Dict[int, int]:
        """A level->level map moving each source instance onto its target."""
        mapping: Dict[int, int] = {}
        if len(sources) != len(targets):
            raise BDDError("rename arity mismatch")
        for src, dst in zip(sources, targets):
            if src.type != dst.type:
                raise BDDError(
                    f"cannot rename {src.name} ({src.type.name}) onto"
                    f" {dst.name} ({dst.type.name})"
                )
            for ls, ld in zip(src.levels, dst.levels):
                mapping[ls] = ld
        return mapping

    def levels_of(self, instances: Sequence[DomainInstance]) -> List[int]:
        levels: List[int] = []
        for instance in instances:
            levels.extend(instance.levels)
        return levels

    # ------------------------------------------------------------------
    # Tuple iteration
    # ------------------------------------------------------------------

    def tuples(
        self, node: int, instances: Sequence[DomainInstance]
    ) -> Iterator[Tuple[int, ...]]:
        """Enumerate the tuples of a relation BDD over ``instances``.

        Patterns outside a domain's declared size are skipped, so callers
        need not conjoin ``domain_constraint`` first as long as the relation
        was built from encoded tuples.
        """
        levels = self.levels_of(instances)
        for assignment in self.bdd.sat_iter(node, levels):
            values = tuple(self.decode(inst, assignment) for inst in instances)
            if all(
                value < inst.type.size
                for value, inst in zip(values, instances)
            ):
                yield values

    def count_tuples(
        self, node: int, instances: Sequence[DomainInstance]
    ) -> int:
        """Count tuples of a relation BDD (exact, respecting domain sizes)."""
        constrained = node
        for instance in instances:
            constrained = self.bdd.apply_and(
                constrained, self.domain_constraint(instance)
            )
        return self.bdd.satcount(constrained, self.levels_of(instances))
