"""Pure-Python ROBDD engine and finite domains (the BuDDy substitute).

See :mod:`repro.bdd.bdd` for the node-level engine and
:mod:`repro.bdd.domain` for bddbddb-style finite domains.
"""

from repro.bdd.bdd import BDD, BDDError
from repro.bdd.domain import DomainInstance, DomainSpace, DomainType

__all__ = ["BDD", "BDDError", "DomainInstance", "DomainSpace", "DomainType"]
