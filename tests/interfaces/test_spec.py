"""Tests for region interface specifications."""

import pytest

from repro.interfaces import (
    CleanupRegister,
    RegionAlloc,
    RegionCreate,
    RegionDelete,
    RegionInterface,
    apr_pools_interface,
    rc_regions_interface,
)


class TestSpecConstruction:
    def test_add_and_query(self):
        interface = RegionInterface("custom")
        interface.add(
            RegionCreate("arena_push", parent_arg=0),
            RegionAlloc("arena_alloc", region_arg=0),
            RegionDelete("arena_pop", region_arg=0),
        )
        assert interface.is_interface_function("arena_push")
        assert interface.is_interface_function("arena_alloc")
        assert not interface.is_interface_function("malloc")
        assert set(interface.function_names()) == {
            "arena_push", "arena_alloc", "arena_pop",
        }

    def test_add_returns_self_for_chaining(self):
        interface = RegionInterface("c")
        assert interface.add(RegionAlloc("a")) is interface

    def test_unknown_spec_rejected(self):
        with pytest.raises(TypeError):
            RegionInterface("c").add(object())

    def test_create_defaults(self):
        spec = RegionCreate("newregion")
        assert spec.parent_arg is None
        assert spec.out_arg is None

    def test_cleanup_defaults(self):
        spec = CleanupRegister("reg")
        assert spec.fn_args == (2,)
        assert spec.data_arg == 1


class TestAprInterface:
    def test_create_through_out_param(self):
        interface = apr_pools_interface()
        spec = interface.creates["apr_pool_create"]
        assert spec.out_arg == 0
        assert spec.parent_arg == 1

    def test_svn_wrapper_returns_directly(self):
        spec = apr_pools_interface().creates["svn_pool_create"]
        assert spec.out_arg is None
        assert spec.parent_arg == 0

    def test_alloc_functions(self):
        interface = apr_pools_interface()
        for name in ("apr_palloc", "apr_pcalloc", "apr_pstrdup"):
            assert name in interface.allocs
            assert interface.allocs[name].region_arg == 0

    def test_clear_vs_destroy(self):
        interface = apr_pools_interface()
        assert interface.deletes["apr_pool_clear"].clears_only
        assert not interface.deletes["apr_pool_destroy"].clears_only

    def test_cleanup_register(self):
        spec = apr_pools_interface().cleanups["apr_pool_cleanup_register"]
        assert spec.fn_args == (2, 3)


class TestRcInterface:
    def test_primitives(self):
        interface = rc_regions_interface()
        assert interface.creates["newregion"].parent_arg is None
        assert interface.creates["newsubregion"].parent_arg == 0
        assert "ralloc" in interface.allocs
        assert "rstrdup" in interface.allocs
        assert "deleteregion" in interface.deletes

    def test_headers_parse(self):
        from repro.interfaces import APR_HEADER, RC_HEADER
        from repro.lang import analyze, parse

        for header in (APR_HEADER, RC_HEADER):
            analyze(parse(header))

    def test_header_covers_interface_functions(self):
        """Every core spec function has a prototype in its header, so
        corpora can call it without redeclaring."""
        from repro.interfaces import APR_HEADER
        from repro.lang import analyze, parse

        sema = analyze(parse(APR_HEADER))
        for name in (
            "apr_pool_create", "apr_palloc", "apr_pool_destroy",
            "apr_pool_cleanup_register", "svn_pool_create",
        ):
            assert sema.function_type(name) is not None
