"""Shared pipeline helpers for tests."""

import pytest

from repro.callgraph import build_call_graph
from repro.interfaces import (
    APR_HEADER,
    RC_HEADER,
    apr_pools_interface,
    rc_regions_interface,
)
from repro.ir import lower
from repro.lang import analyze, parse
from repro.pointer import AnalysisOptions, analyze_pointers


def compile_module(text, filename="<test>"):
    """C text -> IR module."""
    return lower(analyze(parse(text, filename)))


def compile_graph(text, entry="main", filename="<test>"):
    """C text -> pruned call graph."""
    return build_call_graph(compile_module(text, filename), entry=entry)


def run_pointer_analysis(
    text,
    interface=None,
    entry="main",
    options=None,
    with_apr_header=False,
    with_rc_header=False,
):
    """C text -> pointer-analysis result (APR interface by default)."""
    if with_apr_header:
        text = APR_HEADER + text
    if with_rc_header:
        text = RC_HEADER + text
    if interface is None:
        interface = apr_pools_interface()
    graph = compile_graph(text, entry=entry)
    return analyze_pointers(graph, interface, options)


@pytest.fixture
def apr():
    return apr_pools_interface()


@pytest.fixture
def rc():
    return rc_regions_interface()
