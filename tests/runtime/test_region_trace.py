"""Region event tracing: the runtime's JSONL record of one execution."""

import json

import pytest

from repro.interfaces import APR_HEADER, RC_HEADER, apr_pools_interface, rc_regions_interface
from repro.lang import analyze, parse
from repro.obs.events import EventLog
from repro.runtime import (
    RegionTracer,
    TRACE_SCHEMA_VERSION,
    load_trace,
    run_program,
)
from repro.util.errors import BudgetExceeded

BROKEN_RC = """
int main(void) {
    region r = newregion();
    struct conn { int fd; } *conn = ralloc(r, sizeof(struct conn));
    region subr = newregion();
    struct req { struct conn *connection; } *rq =
        ralloc(subr, sizeof(struct req));
    rq->connection = conn;
    deleteregion(r);
    deleteregion(subr);
    return 0;
}
"""

SERVER_APR = """
int main(void) {
    apr_pool_t *pool;
    apr_pool_create(&pool, NULL);
    int *x = apr_palloc(pool, sizeof(int));
    *x = 7;
    int got = *x;
    apr_pool_destroy(pool);
    return got;
}
"""


def traced(text, interface=None, header=APR_HEADER, **kwargs):
    tracer = RegionTracer()
    sema = analyze(parse(header + text))
    result = run_program(
        sema, interface or apr_pools_interface(), tracer=tracer, **kwargs
    )
    return result, tracer


def kinds(tracer):
    return [record["kind"] for record in tracer.records]


class TestTracerEvents:
    def test_header_carries_schema_version(self):
        tracer = RegionTracer()
        assert tracer.records[0] == {
            "kind": "trace.open",
            "schema": TRACE_SCHEMA_VERSION,
        }

    def test_lifecycle_event_vocabulary(self):
        result, tracer = traced(SERVER_APR)
        assert result.return_value == 7
        seen = set(kinds(tracer))
        assert {
            "trace.open",
            "region.create",
            "region.alloc",
            "region.access",
            "region.delete",
            "region.reclaim",
            "region.free",
            "region.dead",
            "region.reclaimed",
        } <= seen

    def test_alloc_carries_file_line_provenance(self):
        _, tracer = traced(SERVER_APR)
        allocs = [
            r
            for r in tracer.records
            if r["kind"] == "region.alloc" and not r.get("internal")
        ]
        assert allocs, "no user allocation traced"
        for record in allocs:
            filename, _, line = record["loc"].rpartition(":")
            assert filename
            assert int(line) > 0
            assert record["site"]

    def test_access_events_carry_op_and_location(self):
        _, tracer = traced(SERVER_APR)
        accesses = [r for r in tracer.records if r["kind"] == "region.access"]
        assert {r["op"] for r in accesses} == {"store", "load"}
        assert all(r.get("loc") for r in accesses)

    def test_fault_event_has_spans_matching_fault_log(self):
        result, tracer = traced(
            BROKEN_RC, interface=rc_regions_interface(), header=RC_HEADER
        )
        fault_events = [
            r for r in tracer.records if r["kind"] == "region.fault"
        ]
        assert fault_events
        logged = {f.kind for f in result.runtime.faults}
        assert {e["fault"] for e in fault_events} == logged
        created = next(
            e for e in fault_events if e["fault"] == "dangling-created"
        )
        assert created["source_span"] and created["target_span"]
        fault = next(
            f for f in result.runtime.faults if f.kind == "dangling-created"
        )
        assert fault.source_span == created["source_span"]
        assert fault.target_span == created["target_span"]
        # Satellite: the Fault repr surfaces the provenance spans.
        rendered = repr(fault)
        assert fault.source_span in rendered
        assert fault.target_span in rendered

    def test_untraced_run_is_unchanged(self):
        sema = analyze(parse(APR_HEADER + SERVER_APR))
        plain = run_program(sema, apr_pools_interface())
        traced_result, _ = traced(SERVER_APR)
        assert plain.return_value == traced_result.return_value
        assert plain.fault_kinds() == traced_result.fault_kinds()


class TestTraceFile:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "run.trace.jsonl")
        log = EventLog(path)
        tracer = RegionTracer(log=log)
        sema = analyze(parse(APR_HEADER + SERVER_APR))
        run_program(sema, apr_pools_interface(), tracer=tracer)
        log.close()

        events = load_trace(path)
        assert events[0]["kind"] == "trace.open"
        assert events[0]["schema"] == TRACE_SCHEMA_VERSION
        # The file reproduces the in-memory stream, record for record.
        assert [e["kind"] for e in events] == kinds(tracer)
        with open(path) as handle:
            for line in handle:
                json.loads(line)  # every line is valid JSON

    def test_keep_false_streams_without_accumulating(self, tmp_path):
        path = str(tmp_path / "run.trace.jsonl")
        log = EventLog(path)
        tracer = RegionTracer(log=log, keep=False)
        sema = analyze(parse(APR_HEADER + SERVER_APR))
        run_program(sema, apr_pools_interface(), tracer=tracer)
        log.close()
        assert tracer.records == []
        assert len(load_trace(path)) > 5


class TestBudgets:
    def test_step_budget_raises_structured_budget_exceeded(self):
        with pytest.raises(BudgetExceeded) as excinfo:
            traced(
                "int main(void) { while (1) {} return 0; }", max_steps=100
            )
        assert excinfo.value.resource == "interp_steps"
        assert excinfo.value.exit_code == 4

    def test_heap_budget_raises_structured_budget_exceeded(self):
        source = """
        int main(void) {
            apr_pool_t *pool;
            apr_pool_create(&pool, NULL);
            for (int i = 0; i < 1000; i++) {
                char *p = apr_palloc(pool, 1024);
            }
            apr_pool_destroy(pool);
            return 0;
        }
        """
        with pytest.raises(BudgetExceeded) as excinfo:
            traced(source, max_heap_bytes=16 * 1024)
        assert excinfo.value.resource == "interp_heap_bytes"
        assert excinfo.value.exit_code == 4

    def test_heap_budget_off_by_default(self):
        result, _ = traced(SERVER_APR)
        assert result.return_value == 7
