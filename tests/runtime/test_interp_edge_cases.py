"""Additional interpreter coverage: weak typing, strings, call depth."""

import pytest

from repro.interfaces import APR_HEADER, apr_pools_interface
from repro.lang import analyze, parse
from repro.runtime import InterpError, run_program


def execute(text, **kwargs):
    sema = analyze(parse(APR_HEADER + text))
    return run_program(sema, apr_pools_interface(), **kwargs)


class TestWeakTyping:
    def test_pointer_null_comparison(self):
        result = execute(
            """
            int main(void) {
                char *p = NULL;
                if (p == NULL) return 1;
                return 0;
            }
            """
        )
        assert result.return_value == 1

    def test_pointer_equality(self):
        result = execute(
            """
            int main(void) {
                void *a = apr_palloc(NULL, 8);
                void *b = a;
                void *c = apr_palloc(NULL, 8);
                return (a == b) * 10 + (a == c);
            }
            """
        )
        assert result.return_value == 10

    def test_null_is_falsy_nonnull_truthy(self):
        result = execute(
            """
            int main(void) {
                void *p = NULL;
                void *q = apr_palloc(NULL, 8);
                return (!p) * 10 + (q ? 1 : 0);
            }
            """
        )
        assert result.return_value == 11

    def test_cast_is_transparent(self):
        result = execute(
            """
            struct wrap { int v; };
            int main(void) {
                void *raw = apr_palloc(NULL, sizeof(struct wrap));
                struct wrap *w = (struct wrap *)raw;
                w->v = 7;
                return ((struct wrap *)raw)->v;
            }
            """
        )
        assert result.return_value == 7

    def test_null_deref_is_an_error(self):
        with pytest.raises(InterpError):
            execute("int main(void) { int *p = NULL; return *p; }")


class TestStrings:
    def test_string_characters_readable(self):
        result = execute(
            """
            int main(void) {
                char *s = "AB";
                return s[0] * 1000 + s[1] + s[2];
            }
            """
        )
        assert result.return_value == 65 * 1000 + 66 + 0

    def test_string_identity_per_literal(self):
        result = execute(
            """
            int main(void) {
                char *a = "x";
                char *b = a;
                return a == b;
            }
            """
        )
        assert result.return_value == 1


class TestCallsAndScoping:
    def test_deep_call_chain(self):
        result = execute(
            """
            int depth(int n) {
                if (n == 0) return 0;
                return 1 + depth(n - 1);
            }
            int main(void) { return depth(50); }
            """
        )
        assert result.return_value == 50

    def test_stack_frames_are_reclaimed(self):
        result = execute(
            """
            int leafy(int n) { int local = n * 2; return local; }
            int main(void) {
                int total = 0;
                for (int i = 0; i < 20; i++) total += leafy(i);
                return total;
            }
            """
        )
        # All stack regions destroyed: only main's frame and globals live.
        live = result.runtime.live_objects()
        assert all(
            obj.region.internal or obj.region is result.runtime.root
            for obj in live
        )

    def test_shadowing(self):
        result = execute(
            """
            int main(void) {
                int x = 1;
                { int x = 2; x = x + 1; }
                return x;
            }
            """
        )
        assert result.return_value == 1

    def test_argument_evaluation_order_effects(self):
        result = execute(
            """
            int g = 0;
            int bump(void) { g = g + 1; return g; }
            int pair(int a, int b) { return a * 10 + b; }
            int main(void) { return pair(bump(), bump()); }
            """
        )
        assert result.return_value == 12

    def test_void_function_returns_none(self):
        result = execute(
            """
            void noop(void) { return; }
            int main(void) { noop(); return 3; }
            """
        )
        assert result.return_value == 3


class TestRegionEdgeCases:
    def test_palloc_null_pool_goes_to_root(self):
        result = execute(
            """
            int main(void) {
                void *p = apr_palloc(NULL, 16);
                return p != NULL;
            }
            """
        )
        assert result.return_value == 1
        assert result.fault_kinds() == set()

    def test_double_destroy_is_noop(self):
        result = execute(
            """
            int main(void) {
                apr_pool_t *pool;
                apr_pool_create(&pool, NULL);
                apr_pool_destroy(pool);
                apr_pool_destroy(pool);
                return 0;
            }
            """
        )
        # _reclaim guards on liveness: the second destroy does nothing.
        assert "rc-violation" not in result.fault_kinds()

    def test_nested_destroy_order_parent_first(self):
        result = execute(
            """
            int main(void) {
                apr_pool_t *parent; apr_pool_t *child;
                apr_pool_create(&parent, NULL);
                apr_pool_create(&child, parent);
                void *obj = apr_palloc(child, 8);
                apr_pool_destroy(parent);  /* reclaims child too */
                return 0;
            }
            """
        )
        assert result.runtime.bytes_live == 0
        assert result.fault_kinds() == set()

    def test_pstrdup_allocates(self):
        result = execute(
            """
            int main(void) {
                apr_pool_t *pool;
                apr_pool_create(&pool, NULL);
                char *copy = apr_pstrdup(pool, "hello");
                apr_pool_destroy(pool);
                return copy != NULL;
            }
            """
        )
        assert result.return_value == 1
